"""Benchmark / regeneration of Table III: accuracy of pairwise tag distances."""

from __future__ import annotations

from repro.experiments import table3_semantics

from conftest import BENCH_CONCEPTS, BENCH_SCALE, BENCH_SEED, record_report


def test_bench_table3_tag_distance_accuracy(benchmark):
    report = benchmark.pedantic(
        table3_semantics.run,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "num_concepts": BENCH_CONCEPTS,
        },
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    rows = {row["Method"]: row for row in report.rows}
    assert set(rows) == {"CubeLSI", "CubeSim", "LSI"}
    # The paper's central ordering for the tensor methods: the Tucker
    # decomposition (CubeLSI) yields more accurate distances than the raw
    # tensor slices (CubeSim), on both metrics.
    assert rows["CubeLSI"]["Average JCN"] < rows["CubeSim"]["Average JCN"]
    assert rows["CubeLSI"]["Average Rank"] < rows["CubeSim"]["Average Rank"]
