"""Ablation benchmark: the Theorem 1/2 shortcut vs materialised distances.

This is not a paper table, but it quantifies the design decision the two
theorems encode: computing all pairwise purified tag distances from
``Y(2)`` and ``Σ`` versus reconstructing ``F_hat`` slices (Eq. 17).  On even
a small corpus the shortcut is orders of magnitude faster; on real corpora
the naive route is simply infeasible (Table VII).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import (
    pairwise_distances_materialized,
    pairwise_distances_shortcut,
    sigma_from_core,
)
from repro.datasets.generator import FolksonomyGenerator, GeneratorConfig
from repro.datasets.vocabulary import build_default_vocabulary
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.tensor.tucker import tucker_als

from conftest import record_report


@pytest.fixture(scope="module")
def small_decomposition():
    config = GeneratorConfig(
        num_users=40, num_resources=80, mean_posts_per_user=10, seed=5
    )
    dataset = FolksonomyGenerator(
        config, build_default_vocabulary(domains=("music",))
    ).generate()
    cleaned, _ = clean_folksonomy(dataset.folksonomy, CleaningConfig(min_assignments=3))
    return tucker_als(cleaned.to_tensor(), ranks=(6, 10, 10), seed=0)


def test_bench_theorem_shortcut(benchmark, small_decomposition):
    sigma = sigma_from_core(small_decomposition.core)
    shortcut = benchmark(
        pairwise_distances_shortcut, small_decomposition.factors[1], sigma
    )
    materialized = pairwise_distances_materialized(small_decomposition)
    assert np.allclose(shortcut, materialized, atol=1e-7)
    record_report(
        "Theorem 1/2 ablation: shortcut and materialised distances agree to "
        f"{np.max(np.abs(shortcut - materialized)):.2e} on a "
        f"{small_decomposition.input_shape} tensor"
    )


def test_bench_materialized_reference(benchmark, small_decomposition):
    materialized = benchmark.pedantic(
        pairwise_distances_materialized,
        args=(small_decomposition,),
        iterations=1,
        rounds=1,
    )
    assert materialized.shape[0] == small_decomposition.input_shape[1]
