"""Scenario gates: flash-crowd p99 headroom and chaos recovery time.

Two serving-under-incident claims from the scenario suite, measured at
bench scale and anchored in ``baseline.json``:

* **flash crowd**: when mid-trace queries collapse onto two hot keys,
  in-flight dedup and the exact-hit ``QueryCache`` must keep the query
  p99 *bounded relative to steady state* — the crowd is the cheap case,
  not a latency cliff.  Gate: crowd p99 <= ``MAX_P99_RATIO`` x the p99
  of the identical trace with the crowd window collapsed to zero
  (``crowd_fraction=0.0``: same generator, same seed, same op mix).
* **chaos**: a seeded :class:`FaultPlan` killing and stalling workers of
  a strict-reads 4-shard process pool must produce only *typed* degraded
  errors, reconverge to 1e-9 probe parity after its restores, and be
  back to fully-complete reads within ``RECOVERY_BUDGET_SECONDS``.

Both record dimensionless headroom ratios (>= 1.0 means inside budget)
so the CI baseline comparison gates portably; the hard asserts only fire
on an unloaded >= 4-core machine, mirroring the other serving gates.
"""

from __future__ import annotations

import os

from conftest import record_metric, record_report
from repro.eval.reporting import format_table
from repro.load import (
    QUERY,
    SCENARIO_CHAOS,
    SCENARIO_FLASH_CROWD,
    build_scenario,
    check_chaos,
    check_replay_parity,
    check_scenario,
    quiesced_rankings,
    run_chaos,
)
from repro.search.engine import SearchEngine
from repro.search.sharding import ShardedSearchEngine
from repro.serve.frontend import FrontendConfig
from test_bench_workload import build_corpus

NUM_SHARDS = 4
NUM_OPERATIONS = 360
NUM_WORKERS = 4
#: The crowd's p99 may not exceed this multiple of the steady-state p99
#: on the gating machine (dedup + cache should make it *cheaper*).
MAX_P99_RATIO = 3.0
#: After the fault plan's last restore, the pool must serve a
#: fully-complete read within this budget on the gating machine.
RECOVERY_BUDGET_SECONDS = 5.0
#: Quantile floor: below this the p99 is scheduler noise, not signal.
P99_FLOOR_SECONDS = 1e-4
MIN_CORES_FOR_GATE = 4


def _gated() -> bool:
    return (os.cpu_count() or 1) >= MIN_CORES_FOR_GATE and not os.environ.get(
        "CI"
    )


def _query_p99(report) -> float:
    return report.latencies[QUERY].quantile(0.99)


def test_flash_crowd_p99_bounded_vs_steady_state():
    folksonomy, model = build_corpus()

    def build_engine():
        return ShardedSearchEngine.build(
            folksonomy, model, num_shards=NUM_SHARDS, name="bench"
        )

    def replay(crowd_fraction: float):
        scenario = build_scenario(
            SCENARIO_FLASH_CROWD,
            folksonomy,
            seed=29,
            num_operations=NUM_OPERATIONS,
            crowd_fraction=crowd_fraction,
        )
        parity = check_replay_parity(
            build_engine,
            scenario.trace,
            num_workers=NUM_WORKERS,
            frontend_config=FrontendConfig(),
            allowed_error_kinds=("Overloaded",),
        )
        return scenario, parity

    _, steady = replay(crowd_fraction=0.0)
    scenario, crowd = replay(crowd_fraction=0.5)
    verdict = check_scenario(scenario, parity=crowd)
    assert verdict.ok, verdict.summary()

    steady_p99 = max(_query_p99(steady.concurrent), P99_FLOOR_SECONDS)
    crowd_p99 = max(_query_p99(crowd.concurrent), P99_FLOOR_SECONDS)
    ratio = crowd_p99 / steady_p99
    headroom = MAX_P99_RATIO * steady_p99 / crowd_p99
    record_metric("flash_crowd_p99_headroom_ratio", headroom)

    cores = os.cpu_count() or 1
    gated = _gated()
    rows = [
        {
            "Leg": leg,
            "Query p50": f"{report.latencies[QUERY].quantile(0.5) * 1e3:.2f}ms",
            "Query p99": f"{_query_p99(report) * 1e3:.2f}ms",
            "Errors": len(report.errors),
        }
        for leg, report in (
            ("steady", steady.concurrent),
            ("flash_crowd", crowd.concurrent),
        )
    ]
    record_report(
        "\n".join(
            [
                "== scenarios: flash-crowd p99 vs steady state "
                f"({NUM_SHARDS}-shard engine, {NUM_WORKERS} workers, "
                "micro-batching front-end) ==",
                format_table(rows),
                f"crowd p99 = {ratio:.2f}x steady "
                f"(budget {MAX_P99_RATIO:.1f}x, headroom {headroom:.2f}; "
                f"amortization {verdict.details['amortization']:.2f}, "
                f"shed rate {verdict.details['shed_rate']:.1%}); "
                + (
                    f"gated on {cores} cores"
                    if gated
                    else "reported only on this runner"
                ),
            ]
        )
    )
    # Parity + the scenario invariant (zero wrong answers) always hold;
    # the latency budget is only claimed on an unloaded >= 4-core box.
    assert steady.mismatched_probes == []
    assert crowd.mismatched_probes == []
    if gated:
        assert headroom >= 1.0, (
            f"flash-crowd p99 ran {ratio:.2f}x steady state on {cores} "
            f"cores (budget {MAX_P99_RATIO:.1f}x)"
        )


def test_chaos_recovery_within_budget(tmp_path):
    folksonomy, model = build_corpus()
    golden = SearchEngine.build(folksonomy, model, name="bench")
    sharded = ShardedSearchEngine.from_engine(
        golden, num_shards=NUM_SHARDS, cache_entries=None
    )
    save_dir = tmp_path / "index"
    try:
        sharded.save(save_dir, mmap_ready=True)
    finally:
        sharded.close()

    scenario = build_scenario(
        SCENARIO_CHAOS,
        folksonomy,
        seed=29,
        num_operations=160,
        num_shards=NUM_SHARDS,
        stall_seconds=1.0,
    )
    golden_rankings = quiesced_rankings(golden, scenario.trace)
    outcome = run_chaos(save_dir, scenario, num_workers=NUM_WORKERS)
    verdict = check_chaos(
        outcome,
        golden_rankings,
        max_recovery_seconds=RECOVERY_BUDGET_SECONDS * 4,
        max_wall_seconds=120.0,
    )
    assert verdict.ok, verdict.summary()

    recovery = max(outcome.recovery_seconds, 0.01)
    headroom = RECOVERY_BUDGET_SECONDS / recovery
    record_metric("chaos_recovery_headroom_ratio", headroom)
    record_metric("chaos_recovery_seconds", outcome.recovery_seconds)

    cores = os.cpu_count() or 1
    gated = _gated()
    record_report(
        "\n".join(
            [
                f"== scenarios: chaos recovery ({NUM_SHARDS}-shard "
                "strict-reads process pool) ==",
                "fault plan: " + "; ".join(outcome.fault_log),
                f"degraded reads: {len(outcome.report.errors)} "
                "(all typed ShardPoolDegraded — zero silent truncation); "
                f"replay wall {outcome.wall_seconds:.2f}s",
                f"recovery to first complete read: "
                f"{outcome.recovery_seconds:.3f}s "
                f"(budget {RECOVERY_BUDGET_SECONDS:.1f}s, headroom "
                f"{headroom:.1f}); post-revival probes 1e-9-equal to the "
                "golden engine; "
                + (
                    f"gated on {cores} cores"
                    if gated
                    else "reported only on this runner"
                ),
            ]
        )
    )
    # Typed degradation + reconvergence always hold; the wall-clock
    # recovery budget is only claimed on an unloaded >= 4-core box.
    assert set(outcome.report.error_kinds) <= {"ShardPoolDegraded"}
    assert len(outcome.report.error_kinds) == len(outcome.report.errors)
    if gated:
        assert headroom >= 1.0, (
            f"chaos recovery took {outcome.recovery_seconds:.2f}s on "
            f"{cores} cores (budget {RECOVERY_BUDGET_SECONDS:.1f}s)"
        )
