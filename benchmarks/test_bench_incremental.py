"""Incremental fold-in vs full offline refit: the streaming-update gate.

The whole point of the incremental subsystem is that a corpus change no
longer costs a Tucker-ALS refit.  This benchmark fits the full CubeLSI
pipeline once, then applies a 1% folksonomy delta (new resources, one
removal, one retag) through ``OfflineIndex.apply_delta`` — fold-in through
the frozen concept model plus the lazy idf/norm recompute paid by the next
query — and requires the update to be at least 10x faster than refitting
the pipeline from scratch.  It also re-checks the correctness bar: the
folded-in engine must match a from-scratch ``SearchEngine.build`` over the
mutated folksonomy to 1e-9 on rankings and scores.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import record_metric, record_report
from repro.core.pipeline import CubeLSIPipeline
from repro.eval.reporting import format_table
from repro.search.engine import SearchEngine
from repro.tagging.delta import FolksonomyDeltaBuilder
from repro.tagging.folksonomy import Folksonomy
from repro.utils.timing import format_duration

NUM_RESOURCES = 400
NUM_TAGS = 150
NUM_USERS = 120
NUM_CONCEPTS = 25
DELTA_FRACTION = 0.01
NUM_QUERIES = 64
TOP_K = 10
#: Locally a 1% delta must beat the full refit by >= 10x (typically ~100x);
#: shared CI runners are noisy-neighbor VMs, so there the bar only guards
#: against outright regressions rather than failing on scheduler jitter.
MIN_SPEEDUP = 3.0 if os.environ.get("CI") else 10.0


def build_corpus(seed: int = 31):
    rng = np.random.default_rng(seed)
    records = []
    for resource in range(NUM_RESOURCES):
        tags = rng.choice(NUM_TAGS, size=10, replace=False)
        for tag in tags:
            user = int(rng.integers(NUM_USERS))
            records.append((f"u{user}", f"t{int(tag):03d}", f"r{resource:04d}"))
    return Folksonomy(records, name="bench-incremental"), rng


def build_one_percent_delta(folksonomy, rng):
    """~1% of the corpus: new resources plus one removal and one retag."""
    tags = list(folksonomy.tags)
    builder = FolksonomyDeltaBuilder()
    num_new = max(1, int(folksonomy.num_resources * DELTA_FRACTION))
    for index in range(num_new):
        chosen = rng.choice(len(tags), size=8, replace=False)
        builder.add_resource(
            f"new-{index:04d}",
            {f"new-user-{index}": [tags[i] for i in chosen]},
        )
    builder.remove_resource(folksonomy, folksonomy.resources[0])
    builder.add("retagger", tags[0], folksonomy.resources[1])
    return builder.build()


def test_one_percent_delta_beats_full_refit_by_10x():
    folksonomy, rng = build_corpus()
    pipeline = CubeLSIPipeline(
        reduction_ratios=(10.0, 5.0, 10.0),
        num_concepts=NUM_CONCEPTS,
        seed=0,
        min_rank=4,
    )

    started = time.perf_counter()
    index = pipeline.fit(folksonomy)
    fit_seconds = time.perf_counter() - started

    delta = build_one_percent_delta(index.folksonomy, rng)
    queries = []
    tags = list(folksonomy.tags)
    for _ in range(NUM_QUERIES):
        chosen = rng.choice(len(tags), size=3, replace=False)
        queries.append([tags[i] for i in chosen])

    # The honest cost of an update: fold the delta in AND pay the lazy
    # refresh the next query triggers.
    started = time.perf_counter()
    report = index.apply_delta(delta)
    index.engine.refresh()
    update_seconds = time.perf_counter() - started

    # Correctness bar: the folded-in engine equals a from-scratch rebuild
    # over the mutated folksonomy (same frozen concept model) to 1e-9.
    # Resources whose scores tie at that tolerance may permute within the
    # tie group — summation-order noise between the vectorized refresh and
    # the dict-loop compile makes exact-tie ordering numerically undefined.
    rebuilt = SearchEngine.build(
        index.folksonomy, index.concept_model, name="rebuild"
    )
    incremental_results = index.engine.rank_batch(queries, top_k=TOP_K)
    rebuilt_results = rebuilt.rank_batch(queries, top_k=TOP_K)
    for got, want in zip(incremental_results, rebuilt_results):
        assert len(got) == len(want)
        position = 0
        while position < len(want):
            group_end = position
            while (
                group_end + 1 < len(want)
                and abs(want[group_end + 1].score - want[position].score) <= 1e-9
            ):
                group_end += 1
            for got_result, want_result in zip(
                got[position : group_end + 1], want[position : group_end + 1]
            ):
                assert abs(got_result.score - want_result.score) <= 1e-9
            if group_end + 1 < len(want):  # boundary tie group may differ on a top-k cut
                assert {r.resource for r in got[position : group_end + 1]} == {
                    r.resource for r in want[position : group_end + 1]
                }
            position = group_end + 1

    speedup = fit_seconds / update_seconds
    record_metric("delta_vs_refit_speedup", speedup)
    record_report(
        "== incremental: 1% delta fold-in vs full CubeLSI refit ==\n"
        + format_table(
            [
                {
                    "Path": "full CubeLSIPipeline.fit",
                    "Seconds": round(fit_seconds, 4),
                    "Human": format_duration(fit_seconds),
                },
                {
                    "Path": "apply_delta + lazy refresh",
                    "Seconds": round(update_seconds, 4),
                    "Human": format_duration(update_seconds),
                },
            ]
        )
        + f"\ncorpus: {NUM_RESOURCES} resources, {folksonomy.num_tags} tags; "
        f"delta: {len(delta)} assignments "
        f"({report.delta_fraction:.1%} of resources drifted)\n"
        f"speedup: {speedup:.1f}x (parity with rebuild verified to 1e-9; "
        f"staleness: {report.summary()})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"1% delta update only {speedup:.1f}x faster than a full refit "
        f"(required >= {MIN_SPEEDUP}x)"
    )
