"""Benchmark / regeneration of Table IV: sample tag clusters found by CubeLSI."""

from __future__ import annotations

from repro.experiments import table4_clusters

from conftest import BENCH_CONCEPTS, BENCH_SCALE, BENCH_SEED, record_report


def test_bench_table4_sample_tag_clusters(benchmark):
    report = benchmark.pedantic(
        table4_clusters.run,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "num_concepts": BENCH_CONCEPTS,
        },
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    assert report.rows, "no multi-tag clusters with identifiable correlation types"
    allowed = {
        "synonyms",
        "cognates (cross-language)",
        "inflection & derivation",
        "abbreviations",
    }
    observed = set()
    for row in report.rows:
        observed.update(str(row["Type of correlation"]).split("; "))
    assert observed <= allowed
    # The clusters should exhibit more than just plain synonyms, as in the
    # paper's Table IV.
    assert len(observed) >= 2
