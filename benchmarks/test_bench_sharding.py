"""Sharded fan-out throughput and query-cache latency: the serving gates.

Two claims back the sharded architecture, and this file gates both:

* **Fan-out scales.** A 4-shard :class:`ShardedSearchEngine` ranks a
  ``rank_batch`` workload by fanning the batch out to per-shard BLAS/scipy
  matmuls on a thread pool (the matmuls release the GIL) and heap-merging
  the per-shard top-k.  On a multi-core runner the 4-shard engine must be
  >= 2x the monolithic throughput; on fewer cores there is no parallelism
  to claim, so the gate relaxes to "no pathological slowdown" while the
  sweep still runs end to end.  Either way every sharded ranking is
  verified against the monolithic engine to 1e-9 — a fast wrong answer is
  not a result.
* **Exact hits are nearly free.** A warm :class:`QueryCache` must answer
  an exact-hit ``search`` at least 50x faster than re-scoring the query
  from scratch (the cache lookup is one dict probe against a canonical tag
  multiset, versus a fan-out matmul + merge).  The gate times per-request
  ``search`` calls — the unit a cache actually serves — not the amortized
  whole-batch matmul.
"""

from __future__ import annotations

import os
import time
from typing import List

import numpy as np

from conftest import record_metric, record_report
from repro.core.concepts import Concept, ConceptModel
from repro.eval.reporting import format_table
from repro.eval.sharding import rankings_match, sharding_sweep
from repro.search.engine import SearchEngine
from repro.search.sharding import ShardedSearchEngine
from repro.tagging.folksonomy import Folksonomy
from repro.utils.timing import format_duration

NUM_RESOURCES = 4000
NUM_TAGS = 720
NUM_USERS = 300
#: Many concepts make per-shard scoring dgemm-dominated — the GIL-releasing
#: work that actually spreads across the fan-out threads.
NUM_CONCEPTS = 240
NUM_QUERIES = 192
TOP_K = 20
SHARD_COUNTS = (1, 2, 4)
#: The parallel-speedup claim only exists on parallel hardware; below this
#: many cores the 4-shard gate degrades to a no-pathological-slowdown bar.
MIN_CORES_FOR_SPEEDUP_GATE = 4
#: On a local >= 4-core machine the 4-shard fan-out must be >= 2x the
#: monolith.  Shared CI runners get the measurement + sanity floor only:
#: they are noisy-neighbor VMs whose pip-wheel OpenBLAS already spreads the
#: *monolithic* dgemm over every core, which makes relative fan-out speedup
#: an environment artefact there rather than a code property.
MIN_FANOUT_SPEEDUP = 2.0
#: Floor for non-gated environments: fan-out overhead (thread handoff +
#: heap merge) must never make sharding pathologically slower.
MIN_FANOUT_SANITY_RATIO = 0.2
#: An exact cache hit must beat re-scoring by this factor (any core count).
MIN_CACHE_SPEEDUP = 10.0 if os.environ.get("CI") else 50.0


def build_corpus(seed: int = 97):
    """A NUM_RESOURCES-sized folksonomy plus a many-tags-per-concept model."""
    rng = np.random.default_rng(seed)
    records = []
    for resource in range(NUM_RESOURCES):
        tags = rng.choice(NUM_TAGS, size=12, replace=False)
        for tag in tags:
            user = int(rng.integers(NUM_USERS))
            records.append((f"u{user}", f"t{int(tag):03d}", f"r{resource:04d}"))
    folksonomy = Folksonomy(records, name="bench-sharding")

    groups: List[List[str]] = [[] for _ in range(NUM_CONCEPTS)]
    for tag in folksonomy.tags:
        groups[int(tag[1:]) % NUM_CONCEPTS].append(tag)
    concepts = [
        Concept(concept_id=index, tags=tuple(sorted(group)))
        for index, group in enumerate(groups)
    ]
    tag_to_concept = {
        tag: concept.concept_id for concept in concepts for tag in concept.tags
    }
    model = ConceptModel(concepts=concepts, tag_to_concept=tag_to_concept)

    queries = []
    tags = list(folksonomy.tags)
    for _ in range(NUM_QUERIES):
        size = int(rng.integers(3, 7))
        chosen = rng.choice(len(tags), size=size, replace=False)
        queries.append([tags[index] for index in chosen])
    return folksonomy, model, queries


def test_four_shard_fanout_throughput_with_exact_parity():
    folksonomy, model, queries = build_corpus()
    engine = SearchEngine.build(folksonomy, model, name="mono")
    rows = sharding_sweep(
        engine, queries, shard_counts=SHARD_COUNTS, top_k=TOP_K, repeats=3
    )

    cores = os.cpu_count() or 1
    four_shard = next(row for row in rows if row["Shards"] == 4)
    speedup = float(four_shard["Speedup"])
    gated = cores >= MIN_CORES_FOR_SPEEDUP_GATE and not os.environ.get("CI")
    if gated:
        verdict = f"gated >= {MIN_FANOUT_SPEEDUP:.1f}x"
    elif cores < MIN_CORES_FOR_SPEEDUP_GATE:
        verdict = "reported only: fewer than 4 cores, no parallelism to claim"
    else:
        verdict = "reported only: shared CI runner"
    record_metric("four_shard_fanout_speedup", speedup)
    record_report(
        "== sharding: parallel fan-out rank_batch vs monolithic engine ==\n"
        + format_table(rows)
        + f"\ncorpus: {NUM_RESOURCES} resources, {folksonomy.num_tags} tags, "
        f"{NUM_CONCEPTS} concepts; {NUM_QUERIES} queries @ top-{TOP_K}; "
        f"{cores} cores\n"
        f"4-shard speedup: {speedup:.2f}x ({verdict}; parity with the "
        "monolithic rankings verified to 1e-9 inside the sweep)"
    )
    if gated:
        assert speedup >= MIN_FANOUT_SPEEDUP, (
            f"4-shard fan-out only {speedup:.2f}x the monolithic engine on "
            f"{cores} cores (required >= {MIN_FANOUT_SPEEDUP}x)"
        )
    else:
        assert speedup >= MIN_FANOUT_SANITY_RATIO, (
            f"4-shard fan-out collapsed to {speedup:.2f}x on {cores} core(s) "
            f"— merge/thread overhead is pathological "
            f"(required >= {MIN_FANOUT_SANITY_RATIO}x)"
        )


def test_exact_hit_query_cache_is_50x_faster_than_rescoring():
    folksonomy, model, queries = build_corpus(seed=101)
    engine = SearchEngine.build(folksonomy, model, name="mono")
    cached = ShardedSearchEngine.from_engine(
        engine, num_shards=2, cache_entries=4096
    )
    uncached = ShardedSearchEngine.from_engine(
        engine, num_shards=2, cache_entries=None
    )
    try:
        cached.rank_batch(queries, top_k=TOP_K)  # warm every key
        assert cached.cache.misses == len(queries)

        rescore_seconds = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            want = [uncached.search(query, top_k=TOP_K) for query in queries]
            rescore_seconds = min(
                rescore_seconds, time.perf_counter() - started
            )

        hit_seconds = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            got = [cached.search(query, top_k=TOP_K) for query in queries]
            hit_seconds = min(hit_seconds, time.perf_counter() - started)

        assert cached.cache.hit_rate > 0.5
        for got_results, want_results in zip(got, want):
            assert rankings_match(got_results, want_results, truncated=True)

        speedup = rescore_seconds / hit_seconds
        per_hit = hit_seconds / len(queries)
        record_metric("cache_hit_vs_rescore_speedup", speedup)
        record_report(
            "== sharding: exact-hit QueryCache vs re-scoring ==\n"
            f"re-score {NUM_QUERIES} queries : {format_duration(rescore_seconds)} "
            f"({NUM_QUERIES / rescore_seconds:,.0f} q/s)\n"
            f"cache-hit same queries   : {format_duration(hit_seconds)} "
            f"({NUM_QUERIES / hit_seconds:,.0f} q/s, "
            f"{format_duration(per_hit)}/hit)\n"
            f"speedup: {speedup:.0f}x; cache stats: {cached.cache.stats()}"
        )
        assert speedup >= MIN_CACHE_SPEEDUP, (
            f"exact cache hits only {speedup:.1f}x faster than re-scoring "
            f"(required >= {MIN_CACHE_SPEEDUP}x)"
        )
    finally:
        cached.close()
        uncached.close()
