"""Benchmark / regeneration of Figure 4: NDCG@N of six rankers on three datasets."""

from __future__ import annotations

import pytest

from repro.eval.reporting import format_series
from repro.experiments import fig4_ndcg

from conftest import BENCH_CONCEPTS, BENCH_QUERIES, BENCH_SCALE, BENCH_SEED, record_report

CUTOFFS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20)


@pytest.mark.parametrize("profile", ["delicious", "bibsonomy", "lastfm"])
def test_bench_fig4_ndcg(benchmark, profile):
    evaluation = benchmark.pedantic(
        fig4_ndcg.run_single_dataset,
        args=(profile,),
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "num_queries": BENCH_QUERIES,
            "cutoffs": CUTOFFS,
            "num_concepts": BENCH_CONCEPTS,
        },
        iterations=1,
        rounds=1,
    )
    series = {
        name: method.ndcg_series(CUTOFFS)
        for name, method in evaluation.methods.items()
    }
    record_report(
        format_series(
            series,
            x_values=CUTOFFS,
            x_label="NDCG@N",
            title=f"Figure 4 ({profile}): NDCG@N per ranking method",
            digits=3,
        )
    )

    assert set(evaluation.methods) == {
        "cubelsi",
        "cubesim",
        "folkrank",
        "freq",
        "lsi",
        "bow",
    }
    for method in evaluation.methods.values():
        values = method.ndcg_series(CUTOFFS)
        assert len(values) == len(CUTOFFS)
        assert all(0.0 <= value <= 1.0 for value in values)
    # Every method must actually retrieve something for a healthy fraction
    # of queries: NDCG@20 clearly above zero.
    for name, method in evaluation.methods.items():
        assert method.ndcg_by_cutoff[20] > 0.05, name
