"""Benchmark / regeneration of Figure 5: pre-processing time vs reduction ratio."""

from __future__ import annotations

from repro.experiments import fig5_reduction_sweep

from conftest import BENCH_SCALE, BENCH_SEED, record_report

RATIOS = (2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 40.0)


def test_bench_fig5_reduction_ratio_sweep(benchmark):
    report = benchmark.pedantic(
        fig5_reduction_sweep.run,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "ratios": RATIOS,
            "num_concepts": 25,
        },
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    times = report.series["cubelsi_preprocessing_seconds"]
    assert len(times) == len(RATIOS)
    assert all(t > 0 for t in times)
    # Paper Fig. 5 shape: larger reduction ratios (smaller cores) make the
    # offline stage cheaper.  Allow timing jitter between adjacent points but
    # require the end-to-end trend to hold clearly.
    assert times[-1] < times[0]
    assert min(times[len(times) // 2 :]) <= min(times[: len(times) // 2])
