"""Serving latency under a background refit: the zero-pause gate.

The lifecycle claim (ISSUE 7): a full Tucker refit — checkpoint, fit in a
background process, journal catch-up, publish, double-buffered hot swap —
must not pause serving.  This bench measures it directly: client threads
hammer single-query reads through an :class:`EngineHandle` while a
:class:`RefitCoordinator` runs one full process-mode refit, and the
per-query p99 during the refit+swap window is gated at **2x** the
steady-state p99 (with a small absolute floor so a sub-millisecond steady
p99 does not turn scheduler jitter into a red build).  Completion
timestamps additionally prove throughput never collapses to zero inside
the refit window — the swap is a pointer move, not a stop-the-world.

Recorded scalars: the gated ``refit_p99_headroom_ratio`` (how much of the
2x budget was left; anchored conservatively at 1.0, the gate's own bar)
plus informational wall numbers — refit wall seconds, swap and drain
latency, both p99s — which land in ``BENCH_results.json`` unanchored
(absolute seconds are not portable across runners).
"""

from __future__ import annotations

import threading
import time
from typing import List

import numpy as np

from conftest import record_metric, record_report
from repro.core.pipeline import CubeLSIPipeline
from repro.core.snapshots import IndexSnapshotStore
from repro.eval.reporting import format_table
from repro.search.lifecycle import EngineHandle, RefitCoordinator
from repro.tagging.folksonomy import Folksonomy

NUM_RESOURCES = 300
NUM_TAGS = 70
NUM_USERS = 80
TAGS_PER_RESOURCE = 8
NUM_CLIENTS = 4
TOP_K = 10
STEADY_SECONDS = 0.6
#: p99 during the refit window may be at most this multiple of steady state.
MAX_P99_RATIO = 2.0
#: Guard floor: below this steady p99, the gate compares against the floor
#: (a 0.2ms p99 doubling to 0.4ms is scheduler noise, not a pause).
P99_FLOOR_SECONDS = 1e-3
#: ``max_iter`` bounds the ALS sweeps so the refit window stays a few
#: seconds — plenty to sample a during-refit p99, cheap enough for CI.
PIPELINE_KWARGS = dict(
    reduction_ratios=(10.0, 3.0, 10.0),
    num_concepts=12,
    seed=0,
    min_rank=4,
    max_iter=8,
)


def build_folksonomy() -> Folksonomy:
    rng = np.random.default_rng(317)
    records = []
    for resource in range(NUM_RESOURCES):
        tags = rng.choice(NUM_TAGS, size=TAGS_PER_RESOURCE, replace=False)
        for tag in tags:
            user = int(rng.integers(NUM_USERS))
            records.append(
                (f"u{user}", f"t{int(tag):03d}", f"r{resource:04d}")
            )
    return Folksonomy(records, name="bench-lifecycle")


def make_queries(folksonomy) -> List[List[str]]:
    rng = np.random.default_rng(23)
    tags = sorted(folksonomy.tags)
    queries = []
    for _ in range(64):
        size = int(rng.integers(1, 3))
        chosen = rng.choice(len(tags), size=size, replace=False)
        queries.append([tags[int(t)] for t in chosen])
    return queries


def _sample_window(handle, queries, seconds=None, until=None):
    """Hammer the handle from NUM_CLIENTS threads; (latencies, done_stamps).

    Runs for ``seconds``, or — when ``until`` (a ``threading.Event``) is
    given — until the event fires.
    """
    latencies: List[float] = []
    completions: List[float] = []
    stop = threading.Event()

    def client(client_id: int) -> None:
        position = client_id
        while not stop.is_set():
            query = queries[position % len(queries)]
            started = time.perf_counter()
            handle.snapshot_rank_batch([query], top_k=TOP_K)
            finished = time.perf_counter()
            latencies.append(finished - started)
            completions.append(finished)
            position += NUM_CLIENTS

    threads = [
        threading.Thread(target=client, args=(client_id,))
        for client_id in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    if until is not None:
        until.wait()
    else:
        time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join()
    return latencies, completions


def test_p99_during_refit_within_2x_steady_state(tmp_path):
    folksonomy = build_folksonomy()
    fitted = CubeLSIPipeline(**PIPELINE_KWARGS).fit(folksonomy)
    handle = EngineHandle(fitted.engine, folksonomy=fitted.folksonomy)
    coordinator = RefitCoordinator(
        handle,
        IndexSnapshotStore(tmp_path),
        pipeline_kwargs=PIPELINE_KWARGS,
        use_process=True,
    )
    queries = make_queries(folksonomy)
    # Warm the scoring path before any timing window.
    handle.snapshot_rank_batch(queries[:8], top_k=TOP_K)

    steady_lat, _ = _sample_window(handle, queries, seconds=STEADY_SECONDS)
    steady_p99 = float(np.percentile(steady_lat, 99))

    refit_done = threading.Event()
    refit_window = {}

    def run_refit() -> None:
        refit_window["start"] = time.perf_counter()
        try:
            refit_window["result"] = coordinator.refit()
        finally:
            refit_window["end"] = time.perf_counter()
            refit_done.set()

    refit_thread = threading.Thread(target=run_refit, name="bench-refit")
    refit_thread.start()
    during_lat, during_done = _sample_window(handle, queries, until=refit_done)
    refit_thread.join()

    result = refit_window["result"]
    assert result.generation == handle.generation == 1

    # Latencies of queries that *completed inside* the refit+swap window.
    window = [
        latency
        for latency, finished in zip(during_lat, during_done)
        if refit_window["start"] <= finished <= refit_window["end"]
    ]
    assert len(window) >= 50, (
        f"only {len(window)} queries completed during the refit window; "
        "the corpus is too small to measure a during-refit p99"
    )
    during_p99 = float(np.percentile(window, 99))

    # Throughput never zero: no completion gap inside the refit window may
    # approach the window's own length (a stop-the-world swap would show
    # up as one gap the size of the pause).
    stamps = sorted(
        [refit_window["start"]]
        + [s for s in during_done if s <= refit_window["end"]]
        + [refit_window["end"]]
    )
    max_gap = max(b - a for a, b in zip(stamps, stamps[1:]))
    refit_wall = refit_window["end"] - refit_window["start"]
    assert max_gap < max(0.5, 0.5 * refit_wall), (
        f"serving stalled for {max_gap * 1e3:.0f}ms during a "
        f"{refit_wall * 1e3:.0f}ms refit"
    )

    steady_eff = max(steady_p99, P99_FLOOR_SECONDS)
    budget = MAX_P99_RATIO * steady_eff
    assert during_p99 <= budget, (
        f"p99 during refit {during_p99 * 1e3:.2f}ms exceeds "
        f"{MAX_P99_RATIO}x steady-state "
        f"({steady_p99 * 1e3:.2f}ms, floor-adjusted budget "
        f"{budget * 1e3:.2f}ms)"
    )

    record_metric("refit_p99_headroom_ratio", budget / during_p99)
    record_metric("refit_wall_seconds", result.refit_wall_seconds)
    record_metric("fit_wall_seconds", result.fit_seconds)
    record_metric("swap_latency_seconds", result.swap_seconds)
    record_metric("drain_latency_seconds", result.drain_seconds)
    record_metric("steady_p99_latency_seconds", steady_p99)
    record_metric("during_refit_p99_latency_seconds", during_p99)

    record_report(
        "Lifecycle: serving latency under one background refit "
        f"({NUM_CLIENTS} clients)\n"
        + format_table(
            [
                {
                    "Phase": "steady",
                    "Queries": len(steady_lat),
                    "p99 ms": round(steady_p99 * 1e3, 3),
                },
                {
                    "Phase": "during refit",
                    "Queries": len(window),
                    "p99 ms": round(during_p99 * 1e3, 3),
                },
            ]
        )
        + f"\n{result.summary()}\n"
        f"max completion gap during refit: {max_gap * 1e3:.1f}ms "
        f"(budget p99 ratio used: {during_p99 / steady_eff:.2f}x "
        f"of {MAX_P99_RATIO}x)"
    )
