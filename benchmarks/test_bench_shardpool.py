"""Process-pool fan-out throughput and cold-start cost: the GIL-escape gate.

``test_bench_sharding.py`` records the thread-pool fan-out's 0.43x
"speedup" — scipy's sparse matmul holds the GIL, so four shard threads
serialize and sharding made serving *slower* than the monolith.  The
process pool is the fix, and this file gates it:

* **The fan-out finally scales.** A 4-shard :class:`ShardProcessPool`
  (one worker interpreter per shard, no shared GIL) must rank the same
  workload >= 2x faster than the monolithic engine on a multi-core
  non-CI runner.  On fewer cores there is no parallelism to claim and on
  shared CI runners relative speedup is an environment artefact, so the
  gate relaxes there to a no-pathological-slowdown floor — but the sweep
  still runs end to end, every pooled ranking is verified against the
  monolithic engine to 1e-9, and every fan-out must be complete (a
  degraded read fails the bench).  IPC adds per-batch overhead the
  thread pool does not pay (queries and results cross a pipe), which is
  exactly why the floor is a *sanity* bar, not a parity-of-throughput
  bar, on serial hardware.
* **mmap opens are cheap.** Workers memory-map the ``mmap_ready`` save
  layout instead of decompressing ``.npz`` archives into RAM; the bench
  records worker cold-start (array open) time for mmap vs eager loads
  into ``BENCH_results.json``.  Absolute seconds are machine-dependent,
  so they are recorded for trend-watching rather than anchored in
  ``baseline.json`` (the comparator would gate every slower runner red).
"""

from __future__ import annotations

import os

from conftest import record_metric, record_report
from repro.eval.reporting import format_table
from repro.eval.shardpool import pool_sweep
from repro.search.engine import SearchEngine
from repro.search.sharding import ShardedSearchEngine
from repro.search.shardpool import ShardPoolConfig, ShardProcessPool
from test_bench_sharding import (
    NUM_CONCEPTS,
    NUM_QUERIES,
    NUM_RESOURCES,
    TOP_K,
    build_corpus,
)

SHARD_COUNTS = (1, 2, 4)
#: The parallel-speedup claim only exists on parallel hardware; below this
#: many cores the 4-shard gate degrades to a no-pathological-slowdown bar.
MIN_CORES_FOR_SPEEDUP_GATE = 4
#: On a local >= 4-core machine the 4-process fan-out must be >= 2x the
#: monolith — the ISSUE 6 acceptance bar replacing the 0.43x thread-pool
#: regression.  Shared CI runners get the measurement + sanity floor only.
MIN_POOL_SPEEDUP = 2.0
#: Floor for non-gated environments: pipe IPC + merge overhead must never
#: make the pool pathologically slower than the monolith.  Lower than the
#: thread pool's 0.2 floor on purpose — on serial hardware the pool pays
#: for pickling queries and results across pipes, a cost the threads'
#: shared address space never sees.
MIN_POOL_SANITY_RATIO = 0.1
#: Cold starts must stay interactive on any machine (loose sanity bound).
MAX_COLD_START_SECONDS = 30.0


def test_four_shard_process_pool_speedup_with_exact_parity(tmp_path):
    folksonomy, model, queries = build_corpus(seed=103)
    engine = SearchEngine.build(folksonomy, model, name="mono")
    rows = pool_sweep(
        engine,
        queries,
        shard_counts=SHARD_COUNTS,
        top_k=TOP_K,
        repeats=3,
        mmap=True,
        directory=tmp_path,
    )

    cores = os.cpu_count() or 1
    four_shard = next(row for row in rows if row["Shards"] == 4)
    speedup = float(four_shard["Speedup"])
    gated = cores >= MIN_CORES_FOR_SPEEDUP_GATE and not os.environ.get("CI")
    if gated:
        verdict = f"gated >= {MIN_POOL_SPEEDUP:.1f}x"
    elif cores < MIN_CORES_FOR_SPEEDUP_GATE:
        verdict = "reported only: fewer than 4 cores, no parallelism to claim"
    else:
        verdict = "reported only: shared CI runner"
    record_metric("four_shard_pool_speedup", speedup)
    record_report(
        "== shardpool: process-per-shard fan-out vs monolithic engine ==\n"
        + format_table(rows)
        + f"\ncorpus: {NUM_RESOURCES} resources, {folksonomy.num_tags} tags, "
        f"{NUM_CONCEPTS} concepts; {NUM_QUERIES} queries @ top-{TOP_K}; "
        f"{cores} cores\n"
        f"4-process speedup: {speedup:.2f}x ({verdict}; parity with the "
        "monolithic rankings verified to 1e-9 inside the sweep, every "
        "fan-out complete)"
    )
    if gated:
        assert speedup >= MIN_POOL_SPEEDUP, (
            f"4-shard process pool only {speedup:.2f}x the monolithic "
            f"engine on {cores} cores (required >= {MIN_POOL_SPEEDUP}x — "
            "the whole point of escaping the GIL)"
        )
    else:
        assert speedup >= MIN_POOL_SANITY_RATIO, (
            f"4-shard process pool collapsed to {speedup:.2f}x on {cores} "
            f"core(s) — IPC/merge overhead is pathological "
            f"(required >= {MIN_POOL_SANITY_RATIO}x)"
        )


def test_pool_cold_start_mmap_vs_eager(tmp_path):
    folksonomy, model, _queries = build_corpus(seed=107)
    engine = SearchEngine.build(folksonomy, model, name="mono")
    sharded = ShardedSearchEngine.from_engine(
        engine, num_shards=4, cache_entries=None
    )
    save_dir = tmp_path / "index"
    try:
        sharded.save(save_dir, mmap_ready=True)
    finally:
        sharded.close()

    cold_starts = {}
    for label, mmap in (("mmap", True), ("eager", False)):
        best = float("inf")
        for _ in range(3):
            with ShardProcessPool(
                save_dir, ShardPoolConfig(mmap=mmap)
            ) as pool:
                # Worst worker's array-open time: process spawn cost is
                # identical between the layouts, the load is what differs.
                best = min(best, max(pool.worker_load_seconds()))
        cold_starts[label] = best
        record_metric(f"pool_cold_start_{label}_seconds", best)

    record_report(
        "== shardpool: worker cold-start, mmap vs eager load ==\n"
        f"mmap  (npy, zero-copy open) : {cold_starts['mmap'] * 1e3:.2f} ms\n"
        f"eager (arrays read into RAM): {cold_starts['eager'] * 1e3:.2f} ms\n"
        "(worst worker per pool, best of 3 pools; recorded, not anchored — "
        "absolute seconds are machine properties)"
    )
    for label, seconds in cold_starts.items():
        assert seconds < MAX_COLD_START_SECONDS, (
            f"{label} cold start took {seconds:.1f}s — a shard open must "
            "stay interactive"
        )
