"""Benchmark / regeneration of Table II: dataset statistics raw vs cleaned."""

from __future__ import annotations

from repro.experiments import table2_datasets

from conftest import BENCH_SCALE, BENCH_SEED, record_report


def test_bench_table2_dataset_statistics(benchmark):
    report = benchmark.pedantic(
        table2_datasets.run,
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    assert len(report.rows) == 6
    by_dataset = {}
    for row in report.rows:
        by_dataset.setdefault(row["Dataset"], {})[row["Variant"]] = row
    for variants in by_dataset.values():
        # Cleaning must only ever shrink the corpus (paper Table II shape).
        assert variants["cleaned"]["|Y|"] <= variants["raw"]["|Y|"]
        assert variants["cleaned"]["|T|"] <= variants["raw"]["|T|"]
        assert variants["cleaned"]["|U|"] <= variants["raw"]["|U|"]
