"""Benchmark / regeneration of Table VII: memory of F-hat vs S and Y(2)."""

from __future__ import annotations

from repro.experiments import table7_memory

from conftest import BENCH_CONCEPTS, BENCH_SCALE, BENCH_SEED, record_report


def test_bench_table7_memory_requirements(benchmark):
    report = benchmark.pedantic(
        table7_memory.run,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "num_concepts": BENCH_CONCEPTS,
        },
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    assert len(report.rows) == 3
    # Paper Table VII shape: storing the core tensor plus the tag factor is
    # orders of magnitude smaller than materialising the dense F-hat.
    for row in report.rows:
        assert row["Reduction factor"] > 10.0
