#!/usr/bin/env python
"""CI perf-regression gate: BENCH_results.json vs the committed baseline.

The benchmark session writes ``benchmarks/BENCH_results.json`` (per-bench
wall times, outcomes, and every measured scalar the benchmarks record via
``record_metric`` — speedup ratios, throughputs).  This script compares
that file against the committed ``benchmarks/baseline.json`` and exits
non-zero on any regression beyond the tolerance band, which is what makes
a perf regression a red build instead of a silently shrinking number.

Two tolerance knobs, because the two signals have different portability:

* **metrics** (default tolerance 0.25): measured *ratios* — batched vs
  dict-loop speedup, coalesced vs serial throughput — are largely
  hardware-independent, so a >25% drop is gated as a real regression;
* **wall times** (default tolerance 2.0): absolute seconds vary wildly
  across runner generations, so the default band only catches order-of-
  magnitude blowups; tighten per deployment with ``--wall-tolerance``.

Direction is inferred from the metric name (``*speedup*``/``*ratio*``/
``*per_s*`` are higher-better; ``*seconds*``/``*latency*`` lower-better;
unknown names default to higher-better, matching how the suite names its
ratios).  Benchmarks present in the baseline but missing from the results
fail the gate — a deleted gate is a regression too; new benchmarks not in
the baseline are listed as informational until the baseline is refreshed.

Usage (what the CI job runs)::

    python -m pytest benchmarks/ -q -s
    python benchmarks/compare_baseline.py

Refreshing the baseline after an intentional change::

    python benchmarks/compare_baseline.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

HERE = Path(__file__).parent
DEFAULT_RESULTS = HERE / "BENCH_results.json"
DEFAULT_BASELINE = HERE / "baseline.json"
SCHEMA_VERSION = 1

HIGHER_BETTER_HINTS = ("speedup", "ratio", "per_s", "throughput", "ops")
LOWER_BETTER_HINTS = ("seconds", "latency", "wall")
#: Metrics in absolute hardware units (queries/s, ops/s) are informational
#: in BENCH_results.json but are never snapshotted into the baseline:
#: anchoring a laptop's q/s and gating it at 25% on a slower CI runner
#: would fail every build.  Only dimensionless ratios are portable.
ABSOLUTE_UNIT_HINTS = ("per_s", "throughput", "qps")
#: Benchmarks this fast are dominated by scheduler/page-cache noise; the
#: wall gate never demands a limit below this, so a 20ms bench jittering
#: to 80ms on a shared runner is not a red build.
MIN_WALL_LIMIT_SECONDS = 0.5


def higher_is_better(name: str) -> bool:
    lowered = name.lower()
    if any(hint in lowered for hint in HIGHER_BETTER_HINTS):
        return True
    if any(hint in lowered for hint in LOWER_BETTER_HINTS):
        return False
    return True


def is_portable(name: str) -> bool:
    """Whether a metric is safe to anchor in a cross-runner baseline."""
    lowered = name.lower()
    return not any(hint in lowered for hint in ABSOLUTE_UNIT_HINTS)


def load(path: Path) -> Dict[str, dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: unsupported schema_version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return payload["benches"]


def compare(
    results: Dict[str, dict],
    baseline: Dict[str, dict],
    tolerance: float,
    wall_tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Return (failures, report_lines)."""
    failures: List[str] = []
    lines: List[str] = []
    for bench in sorted(baseline):
        base = baseline[bench]
        got = results.get(bench)
        if got is None:
            failures.append(f"{bench}: present in baseline, missing from results")
            continue
        if got.get("outcome") not in (None, "passed"):
            failures.append(f"{bench}: outcome is {got.get('outcome')!r}")
        base_wall = base.get("wall_seconds")
        got_wall = got.get("wall_seconds")
        if base_wall is not None and got_wall is not None:
            limit = max(
                base_wall * (1.0 + wall_tolerance), MIN_WALL_LIMIT_SECONDS
            )
            status = "ok" if got_wall <= limit else "REGRESSED"
            lines.append(
                f"{bench}: wall {got_wall:.2f}s vs baseline "
                f"{base_wall:.2f}s (limit {limit:.2f}s) {status}"
            )
            if got_wall > limit:
                failures.append(
                    f"{bench}: wall time {got_wall:.2f}s exceeds "
                    f"{limit:.2f}s (baseline {base_wall:.2f}s "
                    f"+{wall_tolerance:.0%})"
                )
        for name, base_value in sorted((base.get("metrics") or {}).items()):
            got_value = (got.get("metrics") or {}).get(name)
            if got_value is None:
                failures.append(
                    f"{bench}: metric {name!r} in baseline but not measured"
                )
                continue
            if higher_is_better(name):
                limit = base_value * (1.0 - tolerance)
                regressed = got_value < limit
                direction = ">="
            else:
                limit = base_value * (1.0 + tolerance)
                regressed = got_value > limit
                direction = "<="
            status = "REGRESSED" if regressed else "ok"
            lines.append(
                f"{bench}: {name} {got_value:.3f} vs baseline "
                f"{base_value:.3f} (must be {direction} {limit:.3f}) {status}"
            )
            if regressed:
                failures.append(
                    f"{bench}: {name} regressed to {got_value:.3f} "
                    f"(baseline {base_value:.3f}, tolerance "
                    f"{tolerance:.0%})"
                )
    for bench in sorted(set(results) - set(baseline)):
        lines.append(f"{bench}: not in baseline (informational)")
    return failures, lines


def write_baseline(
    results: Dict[str, dict], path: Path, wall_round: int = 2
) -> None:
    """Snapshot the results as the new committed baseline.

    Outcomes are dropped (the baseline describes expected numbers, not a
    past run), wall times are rounded — sub-centisecond noise has no
    business producing baseline diffs — and absolute-unit metrics
    (``*_per_s`` throughputs) are excluded: they describe the writing
    machine, not the code, and would gate every slower runner red.
    Review the written anchors before committing; ratios measured on an
    unloaded workstation often deserve a manual haircut so the 25% band
    does not flake on busier CI hardware.
    """
    benches = {}
    for bench, entry in sorted(results.items()):
        snapshot: Dict[str, object] = {}
        if entry.get("wall_seconds") is not None:
            snapshot["wall_seconds"] = round(entry["wall_seconds"], wall_round)
        metrics = {
            name: round(value, 3)
            for name, value in sorted((entry.get("metrics") or {}).items())
            if is_portable(name)
        }
        if metrics:
            snapshot["metrics"] = metrics
        benches[bench] = snapshot
    payload = {"schema_version": SCHEMA_VERSION, "benches": benches}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=DEFAULT_RESULTS,
        help="benchmark session output (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression for measured metrics "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=2.0,
        help="allowed fractional wall-time growth; generous by default "
        "because absolute seconds vary across runners "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot --results as the new --baseline and exit",
    )
    args = parser.parse_args()

    if not args.results.exists():
        print(f"no results at {args.results}; run the benchmarks first")
        return 2
    results = load(args.results)
    if args.write_baseline:
        write_baseline(results, args.baseline)
        print(f"wrote {len(results)} bench entries to {args.baseline}")
        return 0
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; commit one with --write-baseline")
        return 2
    baseline = load(args.baseline)

    failures, lines = compare(
        results, baseline, args.tolerance, args.wall_tolerance
    )
    print(
        f"perf gate: {len(baseline)} baseline benches, "
        f"metric tolerance {args.tolerance:.0%}, "
        f"wall tolerance {args.wall_tolerance:.0%}"
    )
    for line in lines:
        print("  " + line)
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print("  FAIL " + failure)
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
