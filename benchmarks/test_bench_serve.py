"""Micro-batching front-end throughput: the coalescing gate.

The front-end's claim: concurrent single-query clients served through the
micro-batch window must beat the same queries submitted *serially,
un-batched* (one ``rank_batch([query])`` engine call per query) — the
window turns N concurrent arrivals into one matmul over N rows, so the
per-call dispatch/locking/top-k overhead is paid once per batch instead
of once per query.

Three configurations run the same distinct-query workload on a
dgemm-dominated monolithic engine (result caches disabled — this gate
measures batching, not caching):

* **serial un-batched** — one thread, one engine call per query (the
  baseline a deployment without a front-end gets);
* **concurrent un-batched** — ``NUM_CLIENTS`` threads calling the engine
  directly (reported for context: lock traffic without amortization);
* **coalesced** — the same ``NUM_CLIENTS`` threads submitting through a
  :class:`~repro.serve.frontend.BatchingFrontend`, measured via
  :func:`repro.eval.serve.frontend_sweep`, which also re-verifies every
  response against the direct ``rank_batch`` answers to 1e-9.

On a multi-core non-CI machine the coalesced/serial ratio is gated at
>= 1.0 (with 5% scheduler-noise slack); elsewhere the gate relaxes to a
no-pathological-collapse floor while parity stays enforced either way.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List

import numpy as np

from conftest import record_metric, record_report
from repro.core.concepts import Concept, ConceptModel
from repro.eval.serve import frontend_sweep
from repro.search.engine import SearchEngine
from repro.tagging.folksonomy import Folksonomy

NUM_RESOURCES = 1500
NUM_TAGS = 600
NUM_USERS = 250
#: Many concepts keep per-query scoring matmul-dominated, so batching a
#: window of queries into one call has real fixed overhead to amortize.
NUM_CONCEPTS = 200
NUM_QUERIES = 480
NUM_CLIENTS = 8
TOP_K = 20
#: Flush on size (all clients are blocked waiters, so batches form at
#: ~NUM_CLIENTS distinct queries); the window is only a straggler backstop.
MAX_BATCH_SIZE = 8
MAX_WAIT_MS = 2.0
#: Below this many cores the concurrency half of the claim has no
#: hardware to run on; the gate degrades to the sanity floor.
MIN_CORES_FOR_GATE = 4
#: The acceptance bar: coalesced concurrent submission must not be slower
#: than serial un-batched submission, with 5% conceded to scheduler noise.
MIN_COALESCED_RATIO = 0.95
#: Everywhere else, front-end overhead must never collapse throughput.
MIN_SANITY_RATIO = 0.2


def build_engine():
    """A dgemm-dominated monolithic engine (no result cache)."""
    rng = np.random.default_rng(211)
    records = []
    for resource in range(NUM_RESOURCES):
        tags = rng.choice(NUM_TAGS, size=10, replace=False)
        for tag in tags:
            user = int(rng.integers(NUM_USERS))
            records.append((f"u{user}", f"t{int(tag):03d}", f"r{resource:04d}"))
    folksonomy = Folksonomy(records, name="bench-serve")

    groups: List[List[str]] = [[] for _ in range(NUM_CONCEPTS)]
    for tag in folksonomy.tags:
        groups[int(tag[1:]) % NUM_CONCEPTS].append(tag)
    concepts = [
        Concept(concept_id=index, tags=tuple(sorted(group)))
        for index, group in enumerate(
            group for group in groups if group
        )
    ]
    tag_to_concept = {
        tag: concept.concept_id for concept in concepts for tag in concept.tags
    }
    model = ConceptModel(concepts=concepts, tag_to_concept=tag_to_concept)
    return SearchEngine.build(folksonomy, model, name="bench-serve")


def make_queries(engine) -> List[List[str]]:
    """Distinct 1-3 tag queries (no repeats: caching must not help)."""
    rng = np.random.default_rng(97)
    tags = sorted(
        {tag for concept in engine.concept_model.concepts for tag in concept.tags}
    )
    queries = []
    seen = set()
    while len(queries) < NUM_QUERIES:
        size = int(rng.integers(1, 4))
        chosen = tuple(
            tags[i] for i in rng.choice(len(tags), size=size, replace=False)
        )
        if chosen in seen:
            continue
        seen.add(chosen)
        queries.append(list(chosen))
    return queries


def test_coalesced_concurrent_not_slower_than_serial_unbatched():
    engine = build_engine()
    queries = make_queries(engine)

    # Serial un-batched baseline: one engine call per query, one thread.
    started = time.perf_counter()
    for query in queries:
        engine.rank_batch([query], top_k=TOP_K)
    serial_seconds = time.perf_counter() - started
    serial_qps = len(queries) / serial_seconds

    # Concurrent un-batched (context row): N threads, still one call per
    # query — lock traffic and GIL churn without any amortization.
    def direct_client(client_id: int) -> None:
        for position in range(client_id, len(queries), NUM_CLIENTS):
            engine.rank_batch([queries[position]], top_k=TOP_K)

    threads = [
        threading.Thread(target=direct_client, args=(client_id,))
        for client_id in range(NUM_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    unbatched_seconds = time.perf_counter() - started
    unbatched_qps = len(queries) / unbatched_seconds

    # Coalesced: the same clients through the micro-batch window; the
    # sweep 1e-9-verifies every response against direct rank_batch.
    rows, registries = frontend_sweep(
        engine,
        queries,
        windows=((MAX_BATCH_SIZE, MAX_WAIT_MS),),
        num_clients=NUM_CLIENTS,
        top_k=TOP_K,
    )
    coalesced_qps = float(rows[0]["Queries/s"])
    sizes = registries[0].size_distribution("batch_distinct_queries")

    ratio = coalesced_qps / serial_qps
    cores = os.cpu_count() or 1
    gated = cores >= MIN_CORES_FOR_GATE and not os.environ.get("CI")
    if gated:
        verdict = f"gated >= {MIN_COALESCED_RATIO:.2f}x serial un-batched"
    elif cores < MIN_CORES_FOR_GATE:
        verdict = "reported only: fewer than 4 cores"
    else:
        verdict = "reported only: shared CI runner"

    record_metric("coalesced_vs_serial_ratio", ratio)
    record_metric("coalesced_queries_per_s", coalesced_qps)
    record_metric("serial_unbatched_queries_per_s", serial_qps)
    record_report(
        "\n".join(
            [
                "== serving front-end: coalesced concurrent vs un-batched ==",
                f"corpus: {NUM_RESOURCES} resources, {NUM_TAGS} tags, "
                f"{NUM_CONCEPTS} concepts; {len(queries)} distinct queries, "
                f"{NUM_CLIENTS} clients, top_k={TOP_K}; {cores} cores",
                f"serial un-batched      : {serial_qps:,.0f} q/s "
                f"({serial_seconds * 1e3:.0f}ms)",
                f"concurrent un-batched  : {unbatched_qps:,.0f} q/s "
                f"({unbatched_seconds * 1e3:.0f}ms)",
                f"coalesced (window {MAX_BATCH_SIZE}/{MAX_WAIT_MS}ms): "
                f"{coalesced_qps:,.0f} q/s, mean batch {sizes.mean:.1f}, "
                f"max {sizes.max}",
                f"coalesced/serial ratio : {ratio:.2f}x ({verdict}; every "
                "response 1e-9-verified against direct rank_batch)",
            ]
        )
    )

    if gated:
        assert ratio >= MIN_COALESCED_RATIO, (
            f"coalesced concurrent submission ran at {ratio:.2f}x serial "
            f"un-batched on {cores} cores "
            f"(required >= {MIN_COALESCED_RATIO}x)"
        )
    else:
        assert ratio >= MIN_SANITY_RATIO, (
            f"front-end collapsed throughput to {ratio:.2f}x serial on "
            f"{cores} core(s) (required >= {MIN_SANITY_RATIO}x)"
        )
