"""Benchmark / regeneration of Table V: pre-processing time CubeLSI vs CubeSim."""

from __future__ import annotations

from repro.experiments import table5_preprocessing

from conftest import BENCH_CONCEPTS, BENCH_SCALE, BENCH_SEED, record_report


def test_bench_table5_preprocessing_time(benchmark):
    report = benchmark.pedantic(
        table5_preprocessing.run,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "num_concepts": BENCH_CONCEPTS,
        },
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    rows = {row["Method"]: row for row in report.rows}
    assert set(rows) == {"CubeLSI", "CubeSim"}
    # Paper Table V shape: the Theorem-1/2 shortcut makes CubeLSI's offline
    # stage cheaper than CubeSim's raw slice distances on every dataset.
    for dataset in ("delicious", "bibsonomy", "lastfm"):
        assert rows["CubeLSI"][dataset] < rows["CubeSim"][dataset]
