"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper (or gates one
of the serving-stack performance claims).  The corpora are prepared once
per session, the benchmark times the interesting computation, and every
benchmark *prints* the regenerated rows/series so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation output in one go.

Two session artefacts are produced:

* ``benchmarks/last_run_reports.txt`` — the printed human-readable
  reports (gitignored; a local convenience, not a tracked file);
* ``benchmarks/BENCH_results.json`` — the machine-readable results: per
  benchmark wall time, outcome and every scalar a benchmark recorded via
  :func:`record_metric` (measured speedup ratios, throughputs).  CI
  compares this file against the committed ``benchmarks/baseline.json``
  with ``benchmarks/compare_baseline.py`` and fails the build on
  regressions beyond the tolerance band.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

#: Scale used by all benchmarks (kept small enough for a laptop session).
BENCH_SCALE = 0.5
BENCH_SEED = 7
BENCH_QUERIES = 32
BENCH_CONCEPTS = 30

#: Machine-readable session results, consumed by compare_baseline.py.
RESULTS_FILENAME = "BENCH_results.json"
RESULTS_SCHEMA_VERSION = 1

_collected_reports: List[str] = []
_bench_results: Dict[str, Dict[str, object]] = {}
_current_bench: Optional[str] = None


def _bench_key(nodeid: str) -> str:
    """Stable result key: the nodeid without the invocation-dependent
    ``benchmarks/`` prefix, so runs from the repo root and from inside
    ``benchmarks/`` produce identical keys."""
    prefix = "benchmarks/"
    return nodeid[len(prefix) :] if nodeid.startswith(prefix) else nodeid


def record_report(text: str) -> None:
    """Print a regenerated table/figure and remember it for the session dump."""
    print("\n" + text)
    _collected_reports.append(text)


def record_metric(name: str, value: float) -> None:
    """Attach one measured scalar to the currently running benchmark.

    Speedup ratios and throughputs recorded here land in
    ``BENCH_results.json`` under the benchmark's key and are what the CI
    baseline comparison gates on (wall times are collected automatically
    but vary with hardware; the measured *ratios* are the portable
    signal).
    """
    if _current_bench is None:
        raise RuntimeError(
            "record_metric() called outside a running benchmark"
        )
    entry = _bench_results.setdefault(_current_bench, {"metrics": {}})
    entry["metrics"][name] = float(value)


@pytest.fixture(autouse=True)
def _track_current_bench(request):
    """Point :func:`record_metric` at the benchmark that is running.

    An autouse fixture rather than a global hook so it scopes to this
    directory: a full-repo ``pytest`` run tracks benchmarks only.
    """
    global _current_bench
    _current_bench = _bench_key(request.node.nodeid)
    yield
    _current_bench = None


def pytest_runtest_logreport(report):
    """Collect wall time + outcome for every benchmark's call phase."""
    if report.when != "call":
        return
    key = _bench_key(report.nodeid)
    if "test_bench_" not in key:
        return
    entry = _bench_results.setdefault(key, {"metrics": {}})
    entry["wall_seconds"] = report.duration
    entry["outcome"] = report.outcome


@pytest.fixture(scope="session", autouse=True)
def _dump_artefacts_at_end():
    yield
    directory = Path(__file__).parent
    if _collected_reports:
        output = directory / "last_run_reports.txt"
        output.write_text(
            "\n\n".join(_collected_reports) + "\n", encoding="utf-8"
        )
    if _bench_results:
        payload = {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "benches": _bench_results,
        }
        (directory / RESULTS_FILENAME).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
