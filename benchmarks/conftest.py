"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  The corpora
are prepared once per session (and cached by ``prepare_corpus``), the
pytest-benchmark fixture times the interesting computation, and every
benchmark *prints* the regenerated rows/series so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation output in one go.  The printed reports are
also collected and written to ``benchmarks/last_run_reports.txt`` at the end
of the session for later inspection.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import List

import pytest

from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

#: Scale used by all benchmarks (kept small enough for a laptop session).
BENCH_SCALE = 0.5
BENCH_SEED = 7
BENCH_QUERIES = 32
BENCH_CONCEPTS = 30

_collected_reports: List[str] = []


def record_report(text: str) -> None:
    """Print a regenerated table/figure and remember it for the session dump."""
    print("\n" + text)
    _collected_reports.append(text)


@pytest.fixture(scope="session", autouse=True)
def _dump_reports_at_end():
    yield
    if not _collected_reports:
        return
    output = Path(__file__).parent / "last_run_reports.txt"
    output.write_text("\n\n".join(_collected_reports) + "\n", encoding="utf-8")
