"""Batched matrix scoring vs the per-query dict-loop reference path.

Builds a 1000-resource synthetic folksonomy whose tags collapse into a
CubeLSI-style concept space (few concepts, dense postings — the exact shape
of the paper's online workload), then ranks the same query set twice:

* one :meth:`SearchEngine.search` call per query against the dict-loop
  reference backend, and
* a single :meth:`SearchEngine.rank_batch` call against the CSR backend
  (one sparse matmul + argpartition top-k).

Asserts the rankings are identical and the batched path is at least 10x
faster, and records the measured throughput next to the paper tables.
"""

from __future__ import annotations

import os
import time
from typing import List

import numpy as np

from conftest import record_metric, record_report
from repro.core.concepts import Concept, ConceptModel
from repro.search.engine import SearchEngine
from repro.tagging.folksonomy import Folksonomy
from repro.utils.timing import format_duration

NUM_RESOURCES = 1000
NUM_TAGS = 400
NUM_USERS = 300
NUM_CONCEPTS = 50
NUM_QUERIES = 256
TOP_K = 20
#: Locally the batched path must be >= 10x faster (typically ~20x); shared
#: CI runners are noisy-neighbor VMs, so there the bar only guards against
#: outright regressions rather than failing the gate on scheduler jitter.
MIN_SPEEDUP = 3.0 if os.environ.get("CI") else 10.0


def build_corpus(seed: int = 123):
    """A 1000-resource folksonomy plus a many-tags-per-concept model."""
    rng = np.random.default_rng(seed)
    records = []
    for resource in range(NUM_RESOURCES):
        tags = rng.choice(NUM_TAGS, size=20, replace=False)
        for tag in tags:
            user = int(rng.integers(NUM_USERS))
            records.append((f"u{user}", f"t{int(tag):03d}", f"r{resource:04d}"))
    folksonomy = Folksonomy(records, name="bench-batch")

    groups: List[List[str]] = [[] for _ in range(NUM_CONCEPTS)]
    for tag in folksonomy.tags:
        groups[int(tag[1:]) % NUM_CONCEPTS].append(tag)
    concepts = [
        Concept(concept_id=index, tags=tuple(sorted(group)))
        for index, group in enumerate(groups)
    ]
    tag_to_concept = {
        tag: concept.concept_id for concept in concepts for tag in concept.tags
    }
    model = ConceptModel(concepts=concepts, tag_to_concept=tag_to_concept)

    queries = []
    tags = list(folksonomy.tags)
    for _ in range(NUM_QUERIES):
        size = int(rng.integers(3, 7))
        chosen = rng.choice(len(tags), size=size, replace=False)
        queries.append([tags[index] for index in chosen])
    return folksonomy, model, queries


def test_batched_matrix_scoring_is_10x_faster_with_identical_rankings():
    folksonomy, model, queries = build_corpus()
    matrix_engine = SearchEngine.build(folksonomy, model, name="matrix")
    dict_engine = SearchEngine.build(
        folksonomy, model, name="dict", matrix_backend=False
    )

    started = time.perf_counter()
    dict_results = [dict_engine.search(query, top_k=TOP_K) for query in queries]
    dict_seconds = time.perf_counter() - started

    batch_seconds = float("inf")
    for _ in range(3):  # best of three to shave scheduler noise
        started = time.perf_counter()
        batch_results = matrix_engine.rank_batch(queries, top_k=TOP_K)
        batch_seconds = min(batch_seconds, time.perf_counter() - started)

    for reference, batched in zip(dict_results, batch_results):
        assert [r.resource for r in reference] == [r.resource for r in batched]
        for expected, got in zip(reference, batched):
            assert abs(expected.score - got.score) <= 1e-9

    speedup = dict_seconds / batch_seconds
    record_metric("batched_vs_dict_speedup", speedup)
    record_report(
        "== query-batch: batched CSR scoring vs per-query dict loops ==\n"
        f"corpus: {NUM_RESOURCES} resources, {folksonomy.num_tags} tags, "
        f"{NUM_CONCEPTS} concepts; {NUM_QUERIES} queries @ top-{TOP_K}\n"
        f"dict loop (one search per query) : {format_duration(dict_seconds)} "
        f"({NUM_QUERIES / dict_seconds:,.0f} q/s)\n"
        f"matrix rank_batch (single call)  : {format_duration(batch_seconds)} "
        f"({NUM_QUERIES / batch_seconds:,.0f} q/s)\n"
        f"speedup: {speedup:.1f}x (identical rankings and scores)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched path only {speedup:.1f}x faster than the dict loop "
        f"(required >= {MIN_SPEEDUP}x)"
    )
