"""Benchmark / regeneration of Table VI: query time CubeLSI vs FolkRank."""

from __future__ import annotations

from repro.experiments import table6_query_time

from conftest import BENCH_CONCEPTS, BENCH_QUERIES, BENCH_SCALE, BENCH_SEED, record_report


def test_bench_table6_query_processing_time(benchmark):
    report = benchmark.pedantic(
        table6_query_time.run,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "num_queries": BENCH_QUERIES,
            "num_concepts": BENCH_CONCEPTS,
        },
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    rows = {row["Method"]: row for row in report.rows}
    assert set(rows) == {"CubeLSI", "FolkRank"}
    # Paper Table VI shape: CubeLSI's cosine lookups are far cheaper than
    # FolkRank's per-query weight propagation, on every dataset.
    for dataset in ("delicious", "bibsonomy", "lastfm"):
        assert rows["CubeLSI"][dataset] < rows["FolkRank"][dataset]
