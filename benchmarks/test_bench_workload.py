"""Sustained mixed-workload throughput: the serving-under-load gate.

Replays one deterministic 90/10 query/mutation trace (Zipf-skewed, cache-
hot repeats, refresh ticks) against a 4-shard engine — once serially (the
golden reference) and once per concurrent worker count — through
:func:`repro.eval.workload.workload_sweep`, which also enforces the full
replay invariant set (zero errors, state convergence, 1e-9 probe parity,
no epoch regressions) on every run.

The gate: with the read/write discipline in place, spreading the same
trace over 4 worker threads must not be *slower* than replaying it
serially on a multi-core machine — the per-shard matmuls release the GIL,
so concurrent queries genuinely overlap while mutations briefly serialize
the stream.  On fewer cores (or shared CI runners) there is no
parallelism to claim and the gate relaxes to a no-pathological-collapse
floor, while parity stays enforced either way.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from conftest import record_metric, record_report
from repro.core.concepts import Concept, ConceptModel
from repro.eval.reporting import format_table
from repro.eval.workload import workload_sweep
from repro.load import QUERY, WorkloadConfig, WorkloadGenerator
from repro.search.sharding import ShardedSearchEngine
from repro.tagging.folksonomy import Folksonomy

NUM_RESOURCES = 1500
NUM_TAGS = 600
NUM_USERS = 250
#: Many concepts keep per-query scoring dgemm-dominated — the GIL-releasing
#: work that lets concurrent replay workers actually overlap.
NUM_CONCEPTS = 200
NUM_SHARDS = 4
NUM_OPERATIONS = 360
WORKER_COUNTS = (1, 2, 4)
#: Below this many cores the concurrent >= serial claim has no hardware to
#: run on; the gate degrades to the sanity floor.
MIN_CORES_FOR_SPEEDUP_GATE = 4
#: On a local >= 4-core machine, 4 concurrent workers must at least match
#: the serial replay (the acceptance bar: "not slower than serial").  Both
#: sides are best-of-REPEATS, and the floor concedes 5% to scheduler
#: noise — a ratio hovering at exactly 1.0 must not flake the gate.
MIN_CONCURRENT_RATIO = 0.95
#: Best-of runs per sweep (each run replays the full trace).
REPEATS = 2
#: Everywhere else: lock/gate overhead must never collapse throughput.
MIN_SANITY_RATIO = 0.2


def build_corpus(seed: int = 113):
    """A folksonomy plus a many-tags-per-concept model (bench-sized)."""
    rng = np.random.default_rng(seed)
    records = []
    for resource in range(NUM_RESOURCES):
        tags = rng.choice(NUM_TAGS, size=10, replace=False)
        for tag in tags:
            user = int(rng.integers(NUM_USERS))
            records.append((f"u{user}", f"t{int(tag):03d}", f"r{resource:04d}"))
    folksonomy = Folksonomy(records, name="bench-workload")

    groups: List[List[str]] = [[] for _ in range(NUM_CONCEPTS)]
    for tag in folksonomy.tags:
        groups[int(tag[1:]) % NUM_CONCEPTS].append(tag)
    concepts = [
        Concept(concept_id=index, tags=tuple(sorted(group)))
        for index, group in enumerate(groups)
        if group
    ]
    concepts = [
        Concept(concept_id=index, tags=concept.tags)
        for index, concept in enumerate(concepts)
    ]
    tag_to_concept = {
        tag: concept.concept_id for concept in concepts for tag in concept.tags
    }
    model = ConceptModel(concepts=concepts, tag_to_concept=tag_to_concept)
    return folksonomy, model


def test_concurrent_replay_not_slower_than_serial():
    folksonomy, model = build_corpus()
    trace = WorkloadGenerator(
        WorkloadConfig(num_operations=NUM_OPERATIONS, seed=29, top_k=20)
    ).generate(folksonomy)

    def build_engine():
        return ShardedSearchEngine.build(
            folksonomy, model, num_shards=NUM_SHARDS, name="bench"
        )

    rows, reports = workload_sweep(
        build_engine, trace, worker_counts=WORKER_COUNTS
    )
    serial = reports[0]
    concurrent = reports[-1]
    serial_best = serial.ops_per_second
    concurrent_best = concurrent.ops_per_second
    for _ in range(REPEATS - 1):
        _rows, repeat_reports = workload_sweep(
            build_engine, trace, worker_counts=(WORKER_COUNTS[-1],)
        )
        serial_best = max(serial_best, repeat_reports[0].ops_per_second)
        concurrent_best = max(
            concurrent_best, repeat_reports[-1].ops_per_second
        )
    ratio = concurrent_best / serial_best

    cores = os.cpu_count() or 1
    gated = cores >= MIN_CORES_FOR_SPEEDUP_GATE and not os.environ.get("CI")
    if gated:
        verdict = f"gated >= {MIN_CONCURRENT_RATIO:.1f}x serial"
    elif cores < MIN_CORES_FOR_SPEEDUP_GATE:
        verdict = "reported only: fewer than 4 cores, no parallelism to claim"
    else:
        verdict = "reported only: shared CI runner"
    record_metric("concurrent_vs_serial_ratio", ratio)
    counts = trace.op_counts()
    lines = [
        "== workload: concurrent replay vs serial golden "
        f"({NUM_SHARDS}-shard engine) ==",
        format_table(rows),
        f"corpus: {NUM_RESOURCES} resources, {folksonomy.num_tags} tags, "
        f"{len(model.concepts)} concepts; trace: {len(trace)} ops "
        f"({counts.get(QUERY, 0)} queries, {trace.num_mutations} mutation "
        f"batches); {cores} cores",
        f"4-worker throughput ratio: {ratio:.2f}x serial, best of "
        f"{REPEATS} ({verdict}; "
        "zero errors + post-quiesce 1e-9 parity + epoch monotonicity "
        "enforced inside the sweep)",
        "serial query latency:      "
        + serial.latencies[QUERY].summary(),
        f"{concurrent.num_workers}-worker query latency:  "
        + concurrent.latencies[QUERY].summary(),
    ]
    record_report("\n".join(lines))

    assert serial.errors == [] and concurrent.errors == []
    if gated:
        assert ratio >= MIN_CONCURRENT_RATIO, (
            f"concurrent replay ({concurrent.num_workers} workers) ran at "
            f"{ratio:.2f}x the serial golden on {cores} cores "
            f"(required >= {MIN_CONCURRENT_RATIO}x)"
        )
    else:
        assert ratio >= MIN_SANITY_RATIO, (
            f"concurrent replay collapsed to {ratio:.2f}x serial on {cores} "
            f"core(s) — lock/gate overhead is pathological "
            f"(required >= {MIN_SANITY_RATIO}x)"
        )
