"""Benchmark / regeneration of Table I: tag pairs and their semantic relations."""

from __future__ import annotations

from repro.experiments import table1_tag_pairs

from conftest import BENCH_CONCEPTS, BENCH_SCALE, BENCH_SEED, record_report


def test_bench_table1_tag_pairs(benchmark):
    report = benchmark.pedantic(
        table1_tag_pairs.run,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "num_concepts": BENCH_CONCEPTS,
        },
        iterations=1,
        rounds=1,
    )
    record_report(report.render())
    assert report.rows, "no tag pairs survived cleaning at the benchmark scale"
    for row in report.rows:
        assert row["Human-judged"] in ("Y", "N")
        assert row["CubeLSI"] in ("Y", "N")
        assert row["LSI"] in ("Y", "N")
