"""Sharded online serving: partitioned shards, fan-out/merge, result cache.

The monolithic :class:`~repro.search.engine.SearchEngine` holds one resource
matrix, which caps corpus size and query throughput on a single core.  This
module splits the *online* half of the paper's Figure 1 into independent
workers plus a merge step (the streaming-actor decomposition):

* :class:`ShardRouter` — a stable hash (CRC-32) of the resource id places
  every resource on exactly one of N shards, identically in every process
  that ever routes for the same corpus.
* :meth:`MatrixConceptSpace.partition` — slices the compiled CSR space into
  per-shard row subsets that keep the *corpus-wide* vocabulary, idf vector
  and ``num_resources``, so each shard scores its rows bit-for-bit like the
  monolithic space does (``has_external_stats``).
* :class:`ShardedSearchEngine` — fans a query (or a whole ``rank_batch``
  batch) out to all shards on a thread pool (the underlying BLAS/scipy
  matmuls release the GIL), then :func:`merge_topk` heap-merges the
  per-shard top-k lists under the engine-wide deterministic tie-break
  (descending score, ascending resource id).
* :class:`~repro.search.cache.QueryCache` — an LRU layered in front of
  scoring, keyed on the canonical tag multiset + index epoch and cleared on
  every mutation batch.

Mutations (``add/remove/update_resource``) route each delta to the owning
shard; the engine then coordinates the refresh across shards — global
document frequencies are summed, one idf vector is derived and applied
everywhere — so folded-in rankings still match a monolithic rebuild to
1e-9 (``tests/test_sharding.py`` is the parity suite).

Queries and mutations may arrive from many serving threads concurrently:
reads (``rank_batch``/``search``/``score``) hold a
:class:`~repro.search.concurrency.ReadWriteLock` in shared mode over a
guaranteed-fresh index, while ``apply_mutations`` and the coordinated
``refresh`` hold it exclusively — a fan-out can never observe a shard
mid-refresh, and ``snapshot_rank_batch`` returns results tagged with the
exact epoch they were computed against.

Persistence uses a sharded on-disk layout: one directory per shard (the
usual arrays + JSON pair) plus a ``shard_manifest.json`` carrying the
router, the concept model and the serving metadata, so an N-process
deployment can each :meth:`ShardedSearchEngine.load_shard` one shard.
``save(..., mmap_ready=True)`` writes shards in the raw ``.npy`` layout
that :meth:`load_shard`'s ``mmap=True`` memory-maps — the zero-copy open
the process-per-shard pool (:mod:`repro.search.shardpool`) uses to start
workers near-instantly.

Note the thread-pool fan-out here shares one Python interpreter: scipy's
sparse matmul holds the GIL for most of a ``rank_batch``, so on CPython
the threads mostly serialize and multi-shard serving can come out
*slower* than the monolith (the recorded 0.43x four-shard "speedup").
For real parallel speedup, put each shard in its own process with
:class:`~repro.search.shardpool.ShardProcessPool`; this in-process
engine remains the mutation coordinator and the parity reference.
"""

from __future__ import annotations

import heapq
import json
import shutil
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.concepts import ConceptModel
from repro.search.cache import DEFAULT_MAX_ENTRIES, QueryCache
from repro.search.concurrency import FreshReadMixin, ReadWriteLock
from repro.search.engine import (
    SearchEngine,
    concept_model_from_json,
    concept_model_to_json,
    prepare_mutation_batch,
)
from repro.search.incremental import (
    RefreshPolicy,
    StalenessReport,
    aggregate_reports,
)
from repro.search.matrix_space import (
    MatrixConceptSpace,
    idf_from_document_frequency,
    validate_top_k,
)
from repro.search.vsm import RankedResult
from repro.utils.errors import ConfigurationError, NotFittedError

#: Manifest file of a sharded save directory.
SHARD_MANIFEST_FILENAME = "shard_manifest.json"

#: Bumped whenever the sharded on-disk layout changes incompatibly.
SHARD_MANIFEST_VERSION = 1


class ShardRouter:
    """Stable placement of resources onto shards.

    Routing hashes the resource id with CRC-32 — deterministic across
    Python processes and runs (unlike the salted builtin ``hash``) — so the
    shard that indexed a resource is always the shard that serves, updates
    and removes it, in every process that loads the same manifest.  CRC-32
    spreads folksonomy-style ids (short strings with numeric suffixes)
    close to uniformly, which keeps the partition balanced without any
    shared placement table.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self._num_shards = int(num_shards)

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def shard_of(self, resource: str) -> int:
        """The shard index owning ``resource`` (stable across processes)."""
        return zlib.crc32(resource.encode("utf-8")) % self._num_shards

    def assign(self, resources: Iterable[str]) -> List[List[str]]:
        """Bucket ``resources`` per shard, preserving the given order."""
        buckets: List[List[str]] = [[] for _ in range(self._num_shards)]
        for resource in resources:
            buckets[self.shard_of(resource)].append(resource)
        return buckets

    def to_json(self) -> Dict[str, object]:
        return {"algorithm": "crc32", "num_shards": self._num_shards}

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "ShardRouter":
        algorithm = payload.get("algorithm")
        if algorithm != "crc32":
            raise ConfigurationError(
                f"unsupported shard routing algorithm {algorithm!r}"
            )
        return cls(int(payload["num_shards"]))

    def __repr__(self) -> str:
        return f"ShardRouter(num_shards={self._num_shards})"


def merge_topk(
    shard_results: Sequence[Sequence[RankedResult]],
    top_k: Optional[int] = None,
) -> List[RankedResult]:
    """Heap-merge per-shard ranked lists into one global top-k.

    Every input list must already be sorted by the engine-wide total order
    — descending score, ties by ascending resource id — which is exactly
    what :func:`~repro.search.matrix_space.select_top_k` produces.  Because
    that order is *strict* (resource ids are globally unique) the k-way
    heap merge reproduces the monolithic ranking exactly, including when
    scores tie at the rank-k boundary: each shard already widened its own
    boundary tie group through
    :func:`~repro.search.matrix_space.boundary_tie_candidates` and kept its
    lowest-id members, so the global cut below keeps the globally lowest
    ids of the tie.  Ranks are renumbered to the merged positions.
    """
    validate_top_k(top_k)
    lists = [results for results in shard_results if results]
    if not lists:
        return []
    if len(lists) == 1:
        sliced = lists[0] if top_k is None else lists[0][:top_k]
        return [
            RankedResult(result.resource, result.score, position)
            for position, result in enumerate(sliced, start=1)
        ]
    out: List[RankedResult] = []
    ordered = heapq.merge(
        *lists, key=lambda result: (-result.score, result.resource)
    )
    for result in ordered:
        if top_k is not None and len(out) >= top_k:
            break
        out.append(RankedResult(result.resource, result.score, len(out) + 1))
    return out


class ShardedSearchEngine(FreshReadMixin):
    """Online query processing over N partitioned concept-space shards.

    Mirrors the :class:`~repro.search.engine.SearchEngine` query and
    mutation API (so :class:`~repro.core.pipeline.OfflineIndex` and the
    snapshot store work unchanged), but scores each query on all shards in
    parallel and heap-merges the per-shard top-k.  Shards carry corpus-wide
    statistics; this engine is their coordinator — it is the only writer
    allowed to refresh them (see the coordinator protocol on
    :class:`~repro.search.matrix_space.MatrixConceptSpace`).

    The engine owns a lazily created :class:`ThreadPoolExecutor` (one
    worker per shard).  Call :meth:`close` — or use the engine as a context
    manager — to release the threads in long-lived processes.
    """

    def __init__(
        self,
        concept_model: ConceptModel,
        shards: Sequence[MatrixConceptSpace],
        router: ShardRouter,
        name: str = "cubelsi",
        refresh_policy: Optional[RefreshPolicy] = None,
        epoch: int = 0,
        cache: Optional[QueryCache] = None,
        baseline_resources: Optional[int] = None,
        mutation_counts: Optional[Mapping[str, int]] = None,
        shard_baselines: Optional[Sequence[int]] = None,
        shard_mutation_counts: Optional[
            Sequence[Mapping[str, int]]
        ] = None,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ConfigurationError("a sharded engine needs >= 1 shard")
        if router.num_shards != len(shards):
            raise ConfigurationError(
                f"router places onto {router.num_shards} shards but "
                f"{len(shards)} shard spaces were given"
            )
        for index, shard in enumerate(shards):
            for doc_id in shard.doc_ids:
                if router.shard_of(doc_id) != index:
                    raise ConfigurationError(
                        f"document {doc_id!r} sits on shard {index} but the "
                        f"router places it on shard {router.shard_of(doc_id)}"
                    )
        self.concept_model = concept_model
        self.shards: Tuple[MatrixConceptSpace, ...] = tuple(shards)
        self.router = router
        self.name = name
        self.refresh_policy = refresh_policy or RefreshPolicy()
        self.epoch = int(epoch)
        self.cache = cache
        mutation_counts = dict(mutation_counts or {})
        self._baseline_resources = baseline_resources
        self._resources_added = int(mutation_counts.get("added", 0))
        self._resources_removed = int(mutation_counts.get("removed", 0))
        self._resources_updated = int(mutation_counts.get("updated", 0))
        if shard_baselines is None:
            shard_baselines = [
                shard.pending_num_documents for shard in self.shards
            ]
        self._shard_baselines = [int(count) for count in shard_baselines]
        shard_mutation_counts = list(
            shard_mutation_counts
            or [{} for _ in self.shards]
        )
        self._shard_added = [
            int(counts.get("added", 0)) for counts in shard_mutation_counts
        ]
        self._shard_removed = [
            int(counts.get("removed", 0)) for counts in shard_mutation_counts
        ]
        self._shard_updated = [
            int(counts.get("updated", 0)) for counts in shard_mutation_counts
        ]
        if not (
            len(self._shard_baselines)
            == len(self._shard_added)
            == len(self.shards)
        ):
            raise ConfigurationError(
                "per-shard baselines/counters do not match the shard count"
            )
        self._stats_stale = False
        self._pending_batches = 0
        self._rw = ReadWriteLock()
        self._pool_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_engine(
        cls,
        engine: SearchEngine,
        num_shards: Optional[int] = None,
        router: Optional[ShardRouter] = None,
        cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    ) -> "ShardedSearchEngine":
        """Partition a fitted monolithic engine into a sharded one.

        The engine's compiled matrix backend is sliced row-wise along the
        router's placement; epoch, staleness counters and refresh policy
        carry over, so the sharded engine reports the same drift the
        monolithic one would.  ``cache_entries`` sizes the query result
        cache (``0``/``None`` disables it).
        """
        if engine.matrix_space is None:
            raise ConfigurationError(
                "sharding requires the compiled matrix backend; build the "
                "engine with matrix_backend=True"
            )
        if router is None:
            if num_shards is None:
                raise ConfigurationError(
                    "from_engine needs num_shards or an explicit router"
                )
            router = ShardRouter(num_shards)
        elif num_shards is not None and router.num_shards != num_shards:
            raise ConfigurationError(
                f"router places onto {router.num_shards} shards but "
                f"num_shards={num_shards} was requested"
            )
        shards = engine.matrix_space.partition(
            router.num_shards, router.shard_of
        )
        report = engine.staleness()
        return cls(
            concept_model=engine.concept_model,
            shards=shards,
            router=router,
            name=engine.name,
            refresh_policy=engine.refresh_policy,
            epoch=engine.epoch,
            cache=QueryCache(cache_entries) if cache_entries else None,
            baseline_resources=report.baseline_resources,
            mutation_counts={
                "added": report.resources_added,
                "removed": report.resources_removed,
                "updated": report.resources_updated,
            },
        )

    @classmethod
    def build(
        cls,
        folksonomy,
        concept_model: ConceptModel,
        num_shards: int,
        smooth_idf: bool = False,
        name: str = "cubelsi",
        refresh_policy: Optional[RefreshPolicy] = None,
        cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    ) -> "ShardedSearchEngine":
        """Index ``folksonomy`` and partition the result into shards."""
        engine = SearchEngine.build(
            folksonomy,
            concept_model,
            smooth_idf=smooth_idf,
            name=name,
            refresh_policy=refresh_policy,
        )
        return cls.from_engine(
            engine, num_shards=num_shards, cache_entries=cache_entries
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_sizes(self) -> List[int]:
        """Documents per shard, pending mutations included."""
        return [shard.pending_num_documents for shard in self.shards]

    def close(self) -> None:
        """Shut down the fan-out thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedSearchEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            # Double-checked under a dedicated lock: two serving threads
            # racing the first query must not each build (and one leak) a
            # ThreadPoolExecutor.  A plain mutex (not the engine's
            # read/write lock) because _pool() is reached while holding
            # read access and the ReadWriteLock is not reentrant.
            with self._pool_lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=len(self.shards),
                        thread_name_prefix=f"{self.name}-shard",
                    )
        return self._executor

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def query_concepts(self, query_tags: Sequence[str]) -> Dict[int, float]:
        """The query's bag of concepts (same mapping as the monolith)."""
        if not query_tags:
            return {}
        return self.concept_model.concept_bag_from_tags(query_tags)

    def search(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[RankedResult]:
        """Rank all resources against a tag query (fan-out + merge)."""
        return self.rank_batch([list(query_tags)], top_k=top_k)[0]

    def rank_batch(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int] = None,
    ) -> List[List[RankedResult]]:
        """Rank a batch of tag queries across every shard in parallel.

        Cache hits (canonical tag multiset + ``top_k`` + epoch) are served
        without touching the shards; misses — deduplicated within the
        batch — are scored with one fan-out and fill the cache.  The i-th
        result list corresponds to the i-th query; empty and all-unknown
        queries yield well-typed empty lists, and an empty batch yields
        ``[]``, mirroring the hardened monolithic ``rank_batch``.
        """
        validate_top_k(top_k)
        queries = [list(tags) for tags in queries]
        if not queries:
            return []
        with self._read_fresh():
            return self._rank_batch_in_lock(queries, top_k)

    def _rank_batch_in_lock(
        self,
        queries: List[List[str]],
        top_k: Optional[int],
    ) -> List[List[RankedResult]]:
        """The :meth:`rank_batch` body; caller holds the read lock."""
        bags = [self.query_concepts(tags) for tags in queries]
        results: List[List[RankedResult]] = [[] for _ in queries]

        if self.cache is None:
            scorable = [
                (position, bag) for position, bag in enumerate(bags) if bag
            ]
            if scorable:
                ranked = self._rank_bags([bag for _, bag in scorable], top_k)
                for (position, _), result in zip(scorable, ranked):
                    results[position] = result
            return results

        miss_positions: Dict[Hashable, List[int]] = {}
        miss_bags: Dict[Hashable, Mapping[int, float]] = {}
        for position, (tags, bag) in enumerate(zip(queries, bags)):
            if not bag:
                continue
            key = QueryCache.canonical_key(tags, top_k, self.epoch)
            if key in miss_positions:  # duplicate within this batch
                miss_positions[key].append(position)
                continue
            hit = self.cache.get(key)
            if hit is not None:
                results[position] = hit
                continue
            miss_positions[key] = [position]
            miss_bags[key] = bag
        if miss_positions:
            ranked = self._rank_bags(
                [miss_bags[key] for key in miss_positions], top_k
            )
            for key, result in zip(miss_positions, ranked):
                self.cache.put(key, result)
                for position in miss_positions[key]:
                    results[position] = list(result)
        return results

    def ranked_resources(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[str]:
        """Just the resource ids of :meth:`search`, in rank order."""
        return [result.resource for result in self.search(query_tags, top_k=top_k)]

    def score(self, query_tags: Sequence[str], resource: str) -> float:
        """Cosine similarity via the single shard owning ``resource``."""
        with self._read_fresh():
            concept_bag = self.query_concepts(query_tags)
            if not concept_bag:
                return 0.0
            shard = self.shards[self.router.shard_of(resource)]
            return shard.cosine(concept_bag, resource)

    def _needs_refresh(self) -> bool:
        """Whether any shard (or the global statistics) awaits a refresh."""
        return self._stats_stale or any(
            shard.is_stale for shard in self.shards
        )

    def _rank_bags(
        self,
        bags: Sequence[Mapping[int, float]],
        top_k: Optional[int],
    ) -> List[List[RankedResult]]:
        """Fan concept bags out to every shard; caller holds the read lock."""
        if len(self.shards) == 1:
            per_shard = [self.shards[0].rank_batch(bags, top_k)]
        else:
            futures = [
                self._pool().submit(shard.rank_batch, bags, top_k)
                for shard in self.shards
            ]
            per_shard = [future.result() for future in futures]
        return [
            merge_topk(
                [shard_lists[position] for shard_lists in per_shard], top_k
            )
            for position in range(len(bags))
        ]

    # ------------------------------------------------------------------ #
    # Incremental updates (deltas routed to the owning shard)
    # ------------------------------------------------------------------ #
    @property
    def is_mutable(self) -> bool:
        """Whether every shard carries the raw counts mutation needs."""
        return all(shard.is_mutable for shard in self.shards)

    def has_resource(self, resource: str) -> bool:
        """Whether ``resource`` is indexed (pending ops included)."""
        return self.shards[self.router.shard_of(resource)].has_document(
            resource
        )

    @property
    def num_indexed_resources(self) -> int:
        """Resources across all shards, pending mutations included (O(1))."""
        return sum(shard.pending_num_documents for shard in self.shards)

    def apply_mutations(
        self,
        added: Optional[Mapping[str, Mapping[str, float]]] = None,
        updated: Optional[Mapping[str, Mapping[str, float]]] = None,
        removed: Optional[Iterable[str]] = None,
    ) -> StalenessReport:
        """Apply one batch of resource mutations; bumps the epoch once.

        Validation and fold-in semantics mirror
        :meth:`SearchEngine.apply_mutations` exactly; the only difference
        is placement — every delta lands on the shard the router owns it
        to, and the query cache is invalidated.  A shard may legally drain
        empty as long as the corpus keeps at least one resource.
        """
        if not self.is_mutable:
            raise ConfigurationError(
                "this engine's matrix backend carries no raw concept counts "
                "(pre-v2 artefact) and cannot be mutated; rebuild the engine "
                "or re-save the index with the current format"
            )
        with self._rw.write():
            batch = prepare_mutation_batch(self, added, updated, removed)
            if batch is None:
                return self.staleness()
            added_bags, updated_bags, removed = batch
            shard_added: List[Dict[str, Dict[int, float]]] = [
                {} for _ in self.shards
            ]
            shard_updated: List[Dict[str, Dict[int, float]]] = [
                {} for _ in self.shards
            ]
            shard_removed: List[List[str]] = [[] for _ in self.shards]
            for resource, bag in added_bags.items():
                shard_added[self.router.shard_of(resource)][resource] = bag
            for resource, bag in updated_bags.items():
                shard_updated[self.router.shard_of(resource)][resource] = bag
            for resource in removed:
                shard_removed[self.router.shard_of(resource)].append(resource)

            for index, shard in enumerate(self.shards):
                if shard_added[index]:
                    shard.add_documents(shard_added[index])
                for resource, bag in shard_updated[index].items():
                    shard.update_document(resource, bag)
                if shard_removed[index]:
                    shard.remove_documents(
                        shard_removed[index], allow_empty=True
                    )
                self._shard_added[index] += len(shard_added[index])
                self._shard_updated[index] += len(shard_updated[index])
                self._shard_removed[index] += len(shard_removed[index])

            self.epoch += 1
            self._resources_added += len(added_bags)
            self._resources_updated += len(updated_bags)
            self._resources_removed += len(removed)
            self._stats_stale = True
            self._pending_batches += 1
            if self.cache is not None:
                self.cache.clear()
            return self.staleness()

    def add_resources(
        self, tag_bags: Mapping[str, Mapping[str, float]]
    ) -> StalenessReport:
        """Fold new resources into their owning shards (no offline refit)."""
        return self.apply_mutations(added=tag_bags)

    def remove_resources(self, resources: Iterable[str]) -> StalenessReport:
        """Drop resources from their owning shards (lazily refreshed)."""
        return self.apply_mutations(removed=resources)

    def update_resource(
        self, resource: str, tag_bag: Mapping[str, float]
    ) -> StalenessReport:
        """Replace one resource's tag bag on its owning shard."""
        return self.apply_mutations(updated={resource: tag_bag})

    def refresh(self) -> bool:
        """Coordinated refresh across every shard; True if work was done.

        Each shard folds its pending count mutations over a vocabulary
        extension shared by all shards (columns stay aligned), then global
        document frequencies are summed, globally dead terms are pruned
        everywhere, and one corpus-wide idf vector is derived and applied
        to every shard — exactly the statistics a monolithic refresh over
        the whole corpus computes.  Runs under the exclusive side of the
        engine's read/write lock, so no concurrent fan-out can observe a
        shard mid-refresh; readers arriving while mutations are pending
        drive this refresh themselves before scoring.
        """
        if not self._needs_refresh():
            return False
        with self._rw.write():
            return self._refresh_in_write_lock()

    def _refresh_in_write_lock(self) -> bool:
        if not self._needs_refresh():  # another writer refreshed meanwhile
            return False
        extra: Dict[Hashable, None] = {}
        for shard in self.shards:
            for term in shard.pending_new_terms():
                extra.setdefault(term)
        vocabulary: Optional[Tuple[Hashable, ...]] = None
        for shard in self.shards:
            folded = shard.fold_pending_counts(tuple(extra))
            if vocabulary is None:
                vocabulary = folded
            elif folded != vocabulary:
                raise ConfigurationError(
                    "shard vocabularies drifted out of alignment; the index "
                    "is corrupt — rebuild it from the offline pipeline"
                )
        document_frequency = self.shards[0].column_document_frequency()
        for shard in self.shards[1:]:
            document_frequency = (
                document_frequency + shard.column_document_frequency()
            )
        alive = document_frequency > 0
        if not bool(alive.all()):
            for shard in self.shards:
                shard.drop_columns(alive)
            document_frequency = document_frequency[alive]
        num_documents = self.num_indexed_resources
        idf = idf_from_document_frequency(
            document_frequency, num_documents, self.shards[0].smooth_idf
        )
        for shard in self.shards:
            shard.apply_statistics(idf, num_documents)
        self._stats_stale = False
        self._pending_batches = 0
        return True

    def staleness(self) -> StalenessReport:
        """Corpus-level drift since the last full offline fit (O(1))."""
        current = self.num_indexed_resources
        baseline = (
            self._baseline_resources
            if self._baseline_resources is not None
            else current
        )
        delta_ops = (
            self._resources_added
            + self._resources_removed
            + self._resources_updated
        )
        return StalenessReport(
            epoch=self.epoch,
            resources_added=self._resources_added,
            resources_removed=self._resources_removed,
            resources_updated=self._resources_updated,
            baseline_resources=baseline,
            current_resources=current,
            refit_due=self.refresh_policy.refit_due(delta_ops, baseline),
            fold_in_due=self.refresh_policy.fold_in_due(self._pending_batches),
        )

    def health(self) -> Dict[str, object]:
        """Operational snapshot: identity, epoch and both drift verdicts."""
        return {
            "name": self.name,
            "epoch": self.epoch,
            "num_shards": len(self.shards),
            "staleness": self.staleness().as_dict(),
        }

    def shard_staleness(self) -> List[StalenessReport]:
        """Per-shard drift since this engine was sharded.

        Each report applies the engine's refresh policy to one shard's own
        counters and baseline; :func:`aggregate_reports` rolls them back up
        to the corpus level (tested to agree with :meth:`staleness` for an
        engine sharded from an un-drifted fit).
        """
        reports = []
        for index, shard in enumerate(self.shards):
            delta_ops = (
                self._shard_added[index]
                + self._shard_removed[index]
                + self._shard_updated[index]
            )
            reports.append(
                StalenessReport(
                    epoch=self.epoch,
                    resources_added=self._shard_added[index],
                    resources_removed=self._shard_removed[index],
                    resources_updated=self._shard_updated[index],
                    baseline_resources=self._shard_baselines[index],
                    current_resources=shard.pending_num_documents,
                    refit_due=self.refresh_policy.refit_due(
                        delta_ops, self._shard_baselines[index]
                    ),
                    # Refresh is an engine-wide cycle, so every shard shares
                    # the engine-level pending-batch verdict.
                    fold_in_due=self.refresh_policy.fold_in_due(
                        self._pending_batches
                    ),
                )
            )
        return reports

    def aggregated_shard_staleness(self) -> StalenessReport:
        """The per-shard reports rolled up with the engine's policy."""
        return aggregate_reports(self.shard_staleness(), self.refresh_policy)

    # ------------------------------------------------------------------ #
    # Persistence (per-shard .npz + one manifest)
    # ------------------------------------------------------------------ #
    def save(
        self, directory: Union[str, Path], mmap_ready: bool = False
    ) -> Path:
        """Persist the sharded layout: per-shard dirs + a manifest.

        Each shard saves its arrays + JSON pair under ``shard-NNNN/``;
        ``shard_manifest.json`` records the router, the concept model
        (dynamic concepts included, as in the monolithic save) and the
        serving metadata.  A deployment can then restore the whole engine
        (:meth:`load`) or one shard per process (:meth:`load_shard`).

        ``mmap_ready=True`` writes each shard in the raw ``.npy`` layout
        (see :meth:`MatrixConceptSpace.save`) so ``load_shard``'s
        ``mmap=True`` — and hence the process pool's near-instant worker
        start — is available; the default keeps the compact ``.npz``.
        """
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        with self._read_fresh():
            shard_entries = []
            for index, shard in enumerate(self.shards):
                shard_dir = f"shard-{index:04d}"
                shard.save(path / shard_dir, mmap_ready=mmap_ready)
                shard_entries.append(
                    {
                        "directory": shard_dir,
                        "num_documents": shard.pending_num_documents,
                        "baseline_resources": self._shard_baselines[index],
                        "mutations": {
                            "added": self._shard_added[index],
                            "removed": self._shard_removed[index],
                            "updated": self._shard_updated[index],
                        },
                    }
                )
            payload = {
                "format_version": SHARD_MANIFEST_VERSION,
                "name": self.name,
                "router": self.router.to_json(),
                "shards": shard_entries,
                "concept_model": concept_model_to_json(self.concept_model),
                "epoch": self.epoch,
                "baseline_resources": self._baseline_resources,
                "mutations": {
                    "added": self._resources_added,
                    "removed": self._resources_removed,
                    "updated": self._resources_updated,
                },
                "refresh_policy": {
                    "max_delta_fraction": self.refresh_policy.max_delta_fraction,
                    "max_delta_ops": self.refresh_policy.max_delta_ops,
                    "max_pending_batches": (
                        self.refresh_policy.max_pending_batches
                    ),
                },
                "cache_entries": (
                    self.cache.max_entries if self.cache is not None else 0
                ),
            }
        (path / SHARD_MANIFEST_FILENAME).write_text(
            json.dumps(payload), encoding="utf-8"
        )
        # Overwriting a directory previously saved with more shards must
        # not leave the extra shard-NNNN dirs behind: anything enumerating
        # shard dirs instead of the manifest would see dead arrays.
        for stale_dir in path.glob("shard-[0-9]*"):
            if not stale_dir.is_dir():
                continue
            try:
                index = int(stale_dir.name.split("-", 1)[1])
            except ValueError:
                continue
            if index >= len(self.shards):
                shutil.rmtree(stale_dir)
        return path

    @classmethod
    def _read_manifest(cls, directory: Union[str, Path]) -> Dict[str, object]:
        path = Path(directory)
        manifest_path = path / SHARD_MANIFEST_FILENAME
        if not manifest_path.exists():
            raise NotFittedError(f"no sharded engine manifest under {path}")
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        version = payload.get("format_version")
        if version != SHARD_MANIFEST_VERSION:
            raise ConfigurationError(
                f"unsupported shard manifest version {version!r}"
            )
        return payload

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "ShardedSearchEngine":
        """Restore a whole sharded engine saved by :meth:`save`."""
        path = Path(directory)
        payload = cls._read_manifest(path)
        router = ShardRouter.from_json(payload["router"])
        shard_entries = payload["shards"]
        if len(shard_entries) != router.num_shards:
            raise ConfigurationError(
                f"manifest lists {len(shard_entries)} shards but the router "
                f"expects {router.num_shards}"
            )
        shards = [
            MatrixConceptSpace.load(path / entry["directory"])
            for entry in shard_entries
        ]
        policy_payload = payload.get("refresh_policy") or {}
        cache_entries = int(payload.get("cache_entries") or 0)
        return cls(
            concept_model=concept_model_from_json(payload["concept_model"]),
            shards=shards,
            router=router,
            name=payload["name"],
            refresh_policy=RefreshPolicy(
                max_delta_fraction=float(
                    policy_payload.get("max_delta_fraction", 0.1)
                ),
                max_delta_ops=policy_payload.get("max_delta_ops"),
                max_pending_batches=int(
                    policy_payload.get("max_pending_batches", 1)
                ),
            ),
            epoch=int(payload.get("epoch", 0)),
            cache=QueryCache(cache_entries) if cache_entries else None,
            baseline_resources=payload.get("baseline_resources"),
            mutation_counts=payload.get("mutations") or {},
            shard_baselines=[
                entry["baseline_resources"] for entry in shard_entries
            ],
            shard_mutation_counts=[
                entry.get("mutations") or {} for entry in shard_entries
            ],
        )

    @classmethod
    def load_shard(
        cls, directory: Union[str, Path], shard_id: int, mmap: bool = False
    ) -> SearchEngine:
        """Load one shard as a standalone read-only serving engine.

        The returned :class:`SearchEngine` ranks only the shard's
        resources, but with the corpus-wide statistics persisted in the
        shard's arrays — its scores equal the full engine's scores for
        those resources, so an N-process deployment (e.g.
        :class:`~repro.search.shardpool.ShardProcessPool`, one worker
        process per shard) can serve one shard per process behind any
        top-k merging frontend.  ``mmap=True`` memory-maps the shard's
        arrays instead of reading them into RAM — requires a save made
        with ``mmap_ready=True``.  Mutations are rejected (statistics are
        corpus-wide); route them through a coordinator that holds every
        shard.
        """
        path = Path(directory)
        payload = cls._read_manifest(path)
        shard_entries = payload["shards"]
        if not 0 <= shard_id < len(shard_entries):
            raise ConfigurationError(
                f"shard_id {shard_id} outside [0, {len(shard_entries)})"
            )
        policy_payload = payload.get("refresh_policy") or {}
        return SearchEngine(
            concept_model=concept_model_from_json(payload["concept_model"]),
            vector_space=None,
            name=f"{payload['name']}-shard{shard_id}",
            matrix_space=MatrixConceptSpace.load(
                path / shard_entries[shard_id]["directory"], mmap=mmap
            ),
            refresh_policy=RefreshPolicy(
                max_delta_fraction=float(
                    policy_payload.get("max_delta_fraction", 0.1)
                ),
                max_delta_ops=policy_payload.get("max_delta_ops"),
                max_pending_batches=int(
                    policy_payload.get("max_pending_batches", 1)
                ),
            ),
            epoch=int(payload.get("epoch", 0)),
        )

    def __repr__(self) -> str:
        return (
            f"ShardedSearchEngine(name={self.name!r}, "
            f"num_shards={len(self.shards)}, "
            f"resources={self.num_indexed_resources}, epoch={self.epoch})"
        )
