"""Staleness accounting for incrementally updated engines.

Fold-in updates keep online serving cheap: new resources are mapped through
the *frozen* concept model without re-running the offline tensor analysis.
The trade-off (well known from the LSI fold-in literature) is that the
latent model itself slowly drifts away from the corpus it was fitted on.
This module quantifies that drift:

* every mutation of a :class:`~repro.search.engine.SearchEngine` bumps its
  *epoch* and a set of staleness counters,
* a :class:`RefreshPolicy` turns those counters into a *refit due* signal,
* :class:`StalenessReport` is the snapshot handed to operators (and to the
  versioned snapshot store, which records the epoch it checkpointed),
* :class:`EpochObservationLog` records the epochs concurrent readers
  actually observed (via the engines' ``snapshot_rank_batch``), so the
  workload replay suite can assert that epoch-consistent reads never run
  backwards under mixed read/write traffic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class RefreshPolicy:
    """When is maintenance warranted — and *which kind*?

    Two distinct verdicts come out of one policy, because the two costs
    differ by orders of magnitude:

    * :meth:`fold_in_due` — the cheap lazy statistics refresh (idf/norm
      recompute over pending fold-in batches).  Milliseconds; safe to run
      inline on the serving path.
    * :meth:`refit_due` — the full offline Tucker re-fit.  The latent
      model itself has drifted too far from the corpus; a
      :class:`~repro.search.lifecycle.RefitCoordinator` should rebuild it
      in the background and hot-swap.

    Earlier revisions conflated the two behind one threshold; operators
    tuning refresh cadence were silently also tuning refit alarms.

    Parameters
    ----------
    max_delta_fraction:
        Refit once the resources added/removed/updated since the last full
        fit exceed this fraction of the corpus size at fit time (default
        10%, the usual fold-in rule of thumb).
    max_delta_ops:
        Optional absolute cap on mutated resources regardless of corpus
        size; ``None`` disables it.
    max_pending_batches:
        Fold-in refresh is due once this many mutation batches have been
        applied since the last refresh (default 1: any pending batch makes
        the lazy statistics stale).
    """

    max_delta_fraction: float = 0.1
    max_delta_ops: Optional[int] = None
    max_pending_batches: int = 1

    def __post_init__(self) -> None:
        if self.max_delta_fraction <= 0.0:
            raise ConfigurationError(
                f"max_delta_fraction must be positive, got {self.max_delta_fraction}"
            )
        if self.max_delta_ops is not None and self.max_delta_ops < 1:
            raise ConfigurationError(
                f"max_delta_ops must be >= 1 when given, got {self.max_delta_ops}"
            )
        if self.max_pending_batches < 1:
            raise ConfigurationError(
                f"max_pending_batches must be >= 1, got {self.max_pending_batches}"
            )

    def refit_due(self, delta_ops: int, baseline_resources: int) -> bool:
        """Whether the accumulated drift warrants a full Tucker refit."""
        if self.max_delta_ops is not None and delta_ops >= self.max_delta_ops:
            return True
        if baseline_resources <= 0:
            return delta_ops > 0
        return delta_ops / baseline_resources >= self.max_delta_fraction

    def fold_in_due(self, pending_batches: int) -> bool:
        """Whether the cheap lazy statistics refresh is warranted."""
        return pending_batches >= self.max_pending_batches


@dataclass(frozen=True)
class StalenessReport:
    """A snapshot of how far an engine has drifted from its last full fit.

    Attributes
    ----------
    epoch:
        Monotone mutation counter; bumped once per successful mutation
        batch, persisted with the engine.
    resources_added / resources_removed / resources_updated:
        Resource-level mutation counts since the last full fit.
    baseline_resources:
        Corpus size when the concept model was last fitted.
    current_resources:
        Corpus size now.
    refit_due:
        The attached :class:`RefreshPolicy`'s full-refit verdict.
    fold_in_due:
        The policy's cheap-refresh verdict: mutation batches are pending
        past ``max_pending_batches`` and the lazy idf/norm statistics are
        stale.  Distinct from ``refit_due`` — clearing it costs
        milliseconds, not a Tucker fit.
    """

    epoch: int
    resources_added: int
    resources_removed: int
    resources_updated: int
    baseline_resources: int
    current_resources: int
    refit_due: bool
    fold_in_due: bool = False

    @property
    def delta_ops(self) -> int:
        """Total mutated resources since the last full fit."""
        return self.resources_added + self.resources_removed + self.resources_updated

    @property
    def delta_fraction(self) -> float:
        """Mutated resources relative to the fit-time corpus size."""
        if self.baseline_resources <= 0:
            return float(self.delta_ops > 0)
        return self.delta_ops / self.baseline_resources

    def as_dict(self) -> Dict[str, object]:
        """Plain dict view (used by persistence and reports)."""
        return {
            "epoch": self.epoch,
            "resources_added": self.resources_added,
            "resources_removed": self.resources_removed,
            "resources_updated": self.resources_updated,
            "baseline_resources": self.baseline_resources,
            "current_resources": self.current_resources,
            "delta_fraction": self.delta_fraction,
            "refit_due": self.refit_due,
            "fold_in_due": self.fold_in_due,
        }

    def summary(self) -> str:
        """One line for logs: epoch, drift and both maintenance verdicts."""
        return (
            f"epoch {self.epoch}: +{self.resources_added} "
            f"-{self.resources_removed} ~{self.resources_updated} resources "
            f"({self.delta_fraction:.1%} of the {self.baseline_resources} "
            f"fitted) -> refit {'DUE' if self.refit_due else 'not due'}, "
            f"fold-in {'DUE' if self.fold_in_due else 'not due'}"
        )


class EpochObservationLog:
    """A thread-safe log of the index epochs observed by snapshot reads.

    Workload replay workers record ``(reader, epoch)`` after every
    epoch-consistent query (``snapshot_rank_batch``).  Because an engine's
    epoch is a monotone mutation counter and each worker issues its reads
    sequentially, any *decrease* within one reader's observation stream
    proves a torn read — a query that scored against state older than one
    it had already seen — which is exactly the anomaly the serving layer's
    read/write discipline must rule out.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._observations: List[Tuple[Hashable, int]] = []

    def record(self, reader: Hashable, epoch: int) -> None:
        """Append one observation for ``reader`` (any hashable worker id)."""
        with self._lock:
            self._observations.append((reader, int(epoch)))

    def observations(self) -> List[Tuple[Hashable, int]]:
        """All observations in arrival order (a copy)."""
        with self._lock:
            return list(self._observations)

    def __len__(self) -> int:
        with self._lock:
            return len(self._observations)

    @property
    def max_epoch(self) -> int:
        """The newest epoch any reader observed (-1 with no observations)."""
        with self._lock:
            if not self._observations:
                return -1
            return max(epoch for _, epoch in self._observations)

    def regressions(self) -> List[Tuple[Hashable, int, int]]:
        """Per-reader monotonicity violations: ``(reader, seen, then)``.

        Empty means every reader observed a non-decreasing epoch sequence —
        the pass verdict for the concurrent-replay invariant suite.
        """
        last_seen: Dict[Hashable, int] = {}
        violations: List[Tuple[Hashable, int, int]] = []
        for reader, epoch in self.observations():
            previous = last_seen.get(reader)
            if previous is not None and epoch < previous:
                violations.append((reader, previous, epoch))
            last_seen[reader] = epoch
        return violations


def aggregate_reports(
    reports: Sequence[StalenessReport], policy: RefreshPolicy
) -> StalenessReport:
    """Roll per-shard staleness reports up into one corpus-level report.

    Counters, baselines and current sizes sum across shards; the epoch is
    the newest one seen (shards of one engine share a single mutation
    counter, so this is normally every report's epoch); ``refit_due`` is
    ``policy``'s verdict on the *aggregate* drift — a corpus-level policy
    deliberately ignores that one small shard may have churned heavily.
    """
    if not reports:
        raise ConfigurationError("cannot aggregate zero staleness reports")
    added = sum(report.resources_added for report in reports)
    removed = sum(report.resources_removed for report in reports)
    updated = sum(report.resources_updated for report in reports)
    baseline = sum(report.baseline_resources for report in reports)
    return StalenessReport(
        epoch=max(report.epoch for report in reports),
        resources_added=added,
        resources_removed=removed,
        resources_updated=updated,
        baseline_resources=baseline,
        current_resources=sum(report.current_resources for report in reports),
        refit_due=policy.refit_due(added + removed + updated, baseline),
        # Shards of one engine share a single refresh cycle, so any shard
        # with stale lazy statistics makes the whole engine fold-in-due.
        fold_in_due=any(report.fold_in_due for report in reports),
    )
