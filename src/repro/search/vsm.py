"""The concept vector-space model: tf-idf weighting and cosine ranking.

Implements Section III of the paper:

* Eq. 2 — ``tf(l, r)`` is the occurrence count of concept ``l`` in resource
  ``r`` normalised by the total concept occurrences of ``r``,
* Eq. 1 — ``w(l, r) = tf(l, r) * log(N / n_l)`` with ``N`` the number of
  resources and ``n_l`` the number of resources containing ``l``,
* Eq. 4 — resources are ranked by cosine similarity between their weight
  vector and the query's weight vector.

The model is generic over the "term" type: the CubeLSI pipeline feeds it
concept ids, while the BOW baseline feeds it raw tags; both go through the
exact same code path, which keeps the comparison fair.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, NamedTuple, Optional, Tuple

from repro.search.inverted_index import InvertedIndex
from repro.utils.errors import ConfigurationError, NotFittedError


class RankedResult(NamedTuple):
    """One entry of a ranked result list.

    A ``NamedTuple`` rather than a dataclass: result lists are built in the
    innermost loop of batched ranking, where tuple construction is several
    times cheaper than a frozen-dataclass ``__init__``.
    """

    resource: str
    score: float
    rank: int


class ConceptVectorSpace:
    """tf-idf weighted vector space over concept (or tag) bags.

    Parameters
    ----------
    smooth_idf:
        If ``True`` uses ``log((N + 1) / (n_l + 1)) + 1`` which never
        becomes zero or negative; if ``False`` (default) uses the paper's
        plain ``log(N / n_l)``.
    """

    def __init__(self, smooth_idf: bool = False) -> None:
        self._smooth_idf = smooth_idf
        self._index: Optional[InvertedIndex] = None
        self._idf: Dict[Hashable, float] = {}
        self._num_resources = 0
        self._bags: Dict[str, Dict[Hashable, float]] = {}
        self._stale = False

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, resource_bags: Mapping[str, Mapping[Hashable, float]]) -> "ConceptVectorSpace":
        """Build the index from ``resource -> {term -> occurrence count}``."""
        if not resource_bags:
            raise ConfigurationError("cannot fit a vector space on zero resources")
        self._bags = {
            resource: {term: float(c) for term, c in bag.items() if c > 0}
            for resource, bag in resource_bags.items()
        }
        self._rebuild()
        return self

    def _rebuild(self) -> None:
        """(Re)derive idf and the inverted index from the stored raw bags."""
        self._num_resources = len(self._bags)

        document_frequency: Dict[Hashable, int] = {}
        for bag in self._bags.values():
            for term in bag:
                document_frequency[term] = document_frequency.get(term, 0) + 1

        self._idf = {
            term: self._idf_value(df) for term, df in document_frequency.items()
        }

        index = InvertedIndex()
        for resource, bag in self._bags.items():
            index.add_document(resource, self._weight_vector(bag))
        self._index = index
        self._stale = False

    # ------------------------------------------------------------------ #
    # Incremental updates (reference mirror of the matrix backend)
    # ------------------------------------------------------------------ #
    def add_resources(
        self, resource_bags: Mapping[str, Mapping[Hashable, float]]
    ) -> None:
        """Index new resources; idf and weights refresh lazily on next read.

        The dict-loop space is the auditability mirror, so its refresh is a
        deliberate full re-derivation from the stored raw bags — bit-for-bit
        what a fresh :meth:`fit` over the mutated corpus would produce.
        """
        self._require_fitted_state()
        for resource in resource_bags:
            if resource in self._bags:
                raise ConfigurationError(
                    f"resource {resource!r} is already indexed; use update_resource"
                )
        for resource, bag in resource_bags.items():
            self._bags[resource] = {
                term: float(c) for term, c in bag.items() if c > 0
            }
        self._stale = True

    def remove_resources(self, resources: List[str]) -> None:
        """Drop resources from the index (lazily refreshed)."""
        self._require_fitted_state()
        resources = list(resources)
        for resource in resources:
            if resource not in self._bags:
                raise ConfigurationError(f"resource {resource!r} is not indexed")
        if len(set(resources)) >= len(self._bags):
            raise ConfigurationError(
                "cannot remove every resource; refit the space instead"
            )
        for resource in resources:
            self._bags.pop(resource, None)
        self._stale = True

    def update_resource(
        self, resource: str, bag: Mapping[Hashable, float]
    ) -> None:
        """Replace one resource's bag (lazily refreshed)."""
        self._require_fitted_state()
        if resource not in self._bags:
            raise ConfigurationError(f"resource {resource!r} is not indexed")
        self._bags[resource] = {term: float(c) for term, c in bag.items() if c > 0}
        self._stale = True

    def resource_bags(self) -> Dict[str, Dict[Hashable, float]]:
        """The raw ``resource -> {term -> count}`` bags backing the space."""
        return {resource: dict(bag) for resource, bag in self._bags.items()}

    def has_resource(self, resource: str) -> bool:
        """Whether ``resource`` is indexed (mutations included, no refresh)."""
        return resource in self._bags

    @property
    def pending_num_resources(self) -> int:
        """Resource count including pending mutations, *without* refreshing."""
        return len(self._bags)

    @property
    def is_stale(self) -> bool:
        """Whether mutations are pending a lazy refresh."""
        return self._stale

    def refresh(self) -> bool:
        """Apply pending mutations now; returns True if a rebuild ran."""
        if not self._stale:
            return False
        self._rebuild()
        return True

    @property
    def num_resources(self) -> int:
        if self._stale:
            self._rebuild()
        return self._num_resources

    @property
    def vocabulary_size(self) -> int:
        if self._stale:
            self._rebuild()
        return len(self._idf)

    @property
    def smooth_idf(self) -> bool:
        return self._smooth_idf

    def terms(self) -> Tuple[Hashable, ...]:
        """The corpus vocabulary in a stable (fit-time) order."""
        if self._stale:
            self._rebuild()
        return tuple(self._idf)

    def documents(self) -> List[str]:
        """Ids of all indexed resources."""
        self._require_fitted()
        assert self._index is not None
        return list(self._index.documents())

    def idf(self, term: Hashable) -> float:
        """The idf of ``term`` (0 for unseen terms)."""
        if self._stale:
            self._rebuild()
        return self._idf.get(term, 0.0)

    def resource_vector(self, resource: str) -> Dict[Hashable, float]:
        """The stored tf-idf vector of a resource."""
        self._require_fitted()
        assert self._index is not None
        return self._index.document_vector(resource)

    # ------------------------------------------------------------------ #
    # Query processing
    # ------------------------------------------------------------------ #
    def query_vector(self, query_bag: Mapping[Hashable, float]) -> Dict[Hashable, float]:
        """tf-idf weight vector of a query bag (same weighting as resources)."""
        self._require_fitted()
        return self._weight_vector(query_bag)

    def rank(
        self,
        query_bag: Mapping[Hashable, float],
        top_k: Optional[int] = None,
    ) -> List[RankedResult]:
        """Rank resources by cosine similarity with the query (Eq. 4)."""
        self._require_fitted()
        assert self._index is not None
        vector = self.query_vector(query_bag)
        scored = self._index.cosine_scores(vector, top_k=top_k)
        return [
            RankedResult(resource=resource, score=score, rank=position + 1)
            for position, (resource, score) in enumerate(scored)
        ]

    def cosine(self, query_bag: Mapping[Hashable, float], resource: str) -> float:
        """Cosine similarity between a query bag and one resource."""
        self._require_fitted()
        assert self._index is not None
        vector = self.query_vector(query_bag)
        document = self._index.document_vector(resource)
        if not vector or not document:
            return 0.0
        dot = sum(weight * document.get(term, 0.0) for term, weight in vector.items())
        query_norm = math.sqrt(sum(w * w for w in vector.values()))
        doc_norm = self._index.document_norm(resource)
        if query_norm == 0.0 or doc_norm == 0.0:
            return 0.0
        return dot / (query_norm * doc_norm)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _idf_value(self, document_frequency: int) -> float:
        if self._smooth_idf:
            return math.log((self._num_resources + 1) / (document_frequency + 1)) + 1.0
        if document_frequency <= 0:
            return 0.0
        return math.log(self._num_resources / document_frequency)

    def _weight_vector(self, bag: Mapping[Hashable, float]) -> Dict[Hashable, float]:
        """Apply Eq. 1-2: normalised term frequency times idf."""
        total = float(sum(count for count in bag.values() if count > 0))
        if total <= 0.0:
            return {}
        weights: Dict[Hashable, float] = {}
        for term, count in bag.items():
            if count <= 0:
                continue
            tf = float(count) / total
            idf = self._idf.get(term)
            if idf is None:
                # Terms never seen in the corpus cannot help ranking under
                # plain idf; with smoothing they get the maximum idf.
                idf = self._idf_value(0) if self._smooth_idf else 0.0
            weight = tf * idf
            if weight != 0.0:
                weights[term] = weight
        return weights

    def _require_fitted_state(self) -> None:
        if self._index is None:
            raise NotFittedError("ConceptVectorSpace.fit() has not been called")

    def _require_fitted(self) -> None:
        self._require_fitted_state()
        if self._stale:
            self._rebuild()
