"""Concept-space information retrieval engine (Section III).

Resources and queries are represented as sparse tf-idf vectors over the set
of distilled concepts and ranked by cosine similarity.  The engine is
deliberately a classical VSM stack — the paper's point is that once concept
distillation has been done offline, online query processing is just cheap
dot products (Table VI).

* :mod:`repro.search.vsm` — tf-idf weighting (Eq. 1-3) and cosine (Eq. 4).
* :mod:`repro.search.inverted_index` — the postings-list index behind the
  dot products.
* :mod:`repro.search.engine` — the user-facing query interface combining a
  concept model, the index and the ranking.
"""

from repro.search.vsm import ConceptVectorSpace, RankedResult
from repro.search.inverted_index import InvertedIndex
from repro.search.engine import SearchEngine

__all__ = [
    "ConceptVectorSpace",
    "RankedResult",
    "InvertedIndex",
    "SearchEngine",
]
