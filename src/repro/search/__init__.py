"""Concept-space information retrieval engine (Section III).

Resources and queries are represented as sparse tf-idf vectors over the set
of distilled concepts and ranked by cosine similarity.  The engine is
deliberately a classical VSM stack — the paper's point is that once concept
distillation has been done offline, online query processing is just cheap
dot products (Table VI).

* :mod:`repro.search.vsm` — tf-idf weighting (Eq. 1-3) and cosine (Eq. 4);
  the dict-loop reference implementation.
* :mod:`repro.search.inverted_index` — the postings-list index behind the
  reference dot products.
* :mod:`repro.search.matrix_space` — the compiled CSR backend: batched
  top-k scoring with one sparse matmul, plus ``.npz``/JSON persistence.
* :mod:`repro.search.engine` — the user-facing query interface combining a
  concept model, the backends and the ranking.
* :mod:`repro.search.incremental` — staleness accounting for incrementally
  updated engines (epochs, refresh policy, fold-in drift reports).
* :mod:`repro.search.sharding` — the sharded serving architecture: router,
  per-shard concept-space slices, parallel fan-out with heap-merged top-k,
  and the sharded on-disk layout.
* :mod:`repro.search.shardpool` — the process-per-shard serving pool:
  one worker process per shard (memory-mapped arrays, pipe IPC, typed
  failure handling), true parallel fan-out that escapes the GIL.
* :mod:`repro.search.cache` — the LRU query result cache layered in front
  of scoring.
* :mod:`repro.search.concurrency` — the reader/writer lock behind the
  engines' query-vs-mutation discipline.
* :mod:`repro.search.lifecycle` — engine lifecycle management: the
  swappable :class:`~repro.search.lifecycle.EngineHandle`, the replayable
  :class:`~repro.search.lifecycle.DeltaJournal`, and the
  :class:`~repro.search.lifecycle.RefitCoordinator` running background
  Tucker refits with double-buffered hot swaps.
"""

from repro.search.vsm import ConceptVectorSpace, RankedResult
from repro.search.inverted_index import InvertedIndex
from repro.search.concurrency import ReadWriteLock
from repro.search.matrix_space import (
    MatrixConceptSpace,
    boundary_tie_candidates,
    select_top_k,
)
from repro.search.incremental import (
    EpochObservationLog,
    RefreshPolicy,
    StalenessReport,
    aggregate_reports,
)
from repro.search.engine import SearchEngine
from repro.search.cache import QueryCache
from repro.search.sharding import (
    ShardRouter,
    ShardedSearchEngine,
    merge_topk,
)
from repro.search.shardpool import (
    PoolResult,
    ShardFailure,
    ShardPoolConfig,
    ShardPoolDegraded,
    ShardPoolError,
    ShardProcessPool,
)
from repro.search.lifecycle import (
    BackgroundRefit,
    DeltaJournal,
    EngineHandle,
    JournalEntry,
    RefitCoordinator,
    RefitResult,
    SwapReport,
    fold_mutations_into_folksonomy,
    replay_entries,
)

__all__ = [
    "ConceptVectorSpace",
    "RankedResult",
    "InvertedIndex",
    "ReadWriteLock",
    "MatrixConceptSpace",
    "boundary_tie_candidates",
    "select_top_k",
    "EpochObservationLog",
    "RefreshPolicy",
    "StalenessReport",
    "aggregate_reports",
    "SearchEngine",
    "QueryCache",
    "ShardRouter",
    "ShardedSearchEngine",
    "merge_topk",
    "PoolResult",
    "ShardFailure",
    "ShardPoolConfig",
    "ShardPoolDegraded",
    "ShardPoolError",
    "ShardProcessPool",
    "BackgroundRefit",
    "DeltaJournal",
    "EngineHandle",
    "JournalEntry",
    "RefitCoordinator",
    "RefitResult",
    "SwapReport",
    "fold_mutations_into_folksonomy",
    "replay_entries",
]
