"""Process-per-shard serving pool: parallel fan-out that escapes the GIL.

The thread-pool fan-out in :class:`~repro.search.sharding.ShardedSearchEngine`
shares one CPython interpreter, and scipy's sparse matmul holds the GIL for
most of a ``rank_batch`` — measured as the 0.43x four-shard "speedup" in
``benchmarks/BENCH_results.json``, sharding made serving *slower* than the
monolith.  This module moves each shard into its own worker process:

* :func:`_shard_worker_main` — the worker entry point.  Each worker loads
  exactly one shard from the standard sharded save layout
  (``shard_manifest.json`` + ``shard-NNNN/`` directories) via
  :meth:`ShardedSearchEngine.load_shard`, memory-mapping the CSR arrays
  when the save is ``mmap_ready`` (zero-copy open, near-instant start),
  then answers ranking requests over a pipe.
* :class:`ShardProcessPool` — the coordinator.  It fans
  ``snapshot_rank_batch`` batches out to all workers over a lightweight
  pickle-over-pipe protocol (request ids, typed error frames, per-worker
  heartbeat and timeouts) and heap-merges the per-shard top-k lists with
  :func:`~repro.search.sharding.merge_topk` under the engine-wide
  tie-break, so pool rankings equal the monolithic engine's to 1e-9.

A stalled or dead worker never hangs a read: the fan-out runs against a
deadline, failures come back as typed :class:`ShardFailure` entries on a
:class:`PoolResult` (or as a :class:`ShardPoolDegraded` exception when
``strict_reads`` is set), and :meth:`ShardProcessPool.restart_worker`
brings a shard back online without touching the rest of the pool.

The pool is **read-only**: every response carries the shard's epoch, the
coordinator asserts all shards agree with the manifest epoch, and
mutations are rejected — route writes through a
:class:`~repro.search.sharding.ShardedSearchEngine` coordinator, re-save,
and restart the pool.  The read surface (``snapshot_rank_batch`` +
``epoch`` + ``refresh`` + ``num_indexed_resources``) matches the in-process
engines, so :class:`~repro.serve.frontend.BatchingFrontend` and the
workload replay subsystem sit in front of a pool unchanged.

Wire protocol (pickled tuples; first element is the frame kind):

====================================  =======================================
coordinator → worker                  worker → coordinator
====================================  =======================================
``("rank", req_id, queries, top_k)``  ``("ok", req_id, epoch, results)`` or
                                      ``("error", req_id, detail)``
``("ping", req_id)``                  ``("pong", req_id)``
``("sleep", req_id, seconds)``        ``("pong", req_id)`` after the stall
``("stop",)``                         —
—                                     ``("ready", shard_id, epoch,
                                      num_docs, load_seconds)`` at startup,
                                      ``("fatal", detail)`` before dying
====================================  =======================================

Responses are matched by request id, so late frames from a worker that
recovered after a timeout are discarded instead of being misattributed to
the current request.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.search.matrix_space import (
    STORAGE_NPY,
    saved_storage,
    validate_top_k,
)
from repro.search.sharding import ShardedSearchEngine, merge_topk
from repro.search.vsm import RankedResult
from repro.utils.errors import ConfigurationError, ReproError

__all__ = [
    "PoolResult",
    "ShardFailure",
    "ShardPoolConfig",
    "ShardPoolDegraded",
    "ShardPoolError",
    "ShardProcessPool",
]

#: Worker states reported by :meth:`ShardProcessPool.health`.
WORKER_READY = "ready"
WORKER_STALLED = "stalled"
WORKER_DEAD = "dead"

#: Failure kinds a :class:`ShardFailure` can carry.
FAILURE_KINDS = ("dead", "timeout", "stalled", "error", "unavailable")


class ShardPoolError(ReproError):
    """Raised when the pool cannot be started or operated at all."""


@dataclass(frozen=True)
class ShardFailure:
    """One shard's typed failure during a fan-out.

    ``kind`` is one of :data:`FAILURE_KINDS`:

    * ``dead`` — the worker process exited (or its pipe closed).
    * ``timeout`` — the worker was alive but did not answer within the
      request deadline; it is marked stalled for subsequent reads.
    * ``stalled`` — the worker was already marked stalled and failed the
      pre-read heartbeat, so the read skipped it without waiting.
    * ``error`` — the worker answered with a typed error frame (or an
      epoch that contradicts the manifest).
    * ``unavailable`` — the worker never reached the ready state.
    """

    shard_id: int
    kind: str
    detail: str

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"unknown shard failure kind {self.kind!r}"
            )


class ShardPoolDegraded(ShardPoolError):
    """A strict read observed shard failures instead of full coverage."""

    def __init__(self, failures: Sequence[ShardFailure]) -> None:
        self.failures: Tuple[ShardFailure, ...] = tuple(failures)
        detail = "; ".join(
            f"shard {f.shard_id}: {f.kind} ({f.detail})" for f in self.failures
        )
        super().__init__(f"degraded pool read: {detail}")


@dataclass(frozen=True)
class PoolResult:
    """A fan-out's full outcome: merged rankings plus per-shard status.

    ``results`` holds one merged ranking per query, covering every shard
    in ``shard_epochs``; shards listed in ``failures`` contributed
    nothing.  ``complete`` distinguishes a trustworthy global ranking
    from a degraded one.
    """

    epoch: int
    results: List[List[RankedResult]]
    shard_epochs: Dict[int, int]
    failures: Tuple[ShardFailure, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class ShardPoolConfig:
    """Tuning knobs for :class:`ShardProcessPool`.

    ``mmap=None`` auto-detects: memory-map when the save is in the
    ``mmap_ready`` (``.npy``) layout, load eagerly otherwise; ``True``
    demands mapping (raising on a compressed save), ``False`` forces an
    eager load.  ``start_method=None`` prefers ``fork`` where the OS
    offers it (fastest start; the worker re-opens the arrays from disk
    either way) and falls back to the platform default.  All timeouts
    are in seconds: ``request_timeout`` bounds one fan-out,
    ``startup_timeout`` bounds one worker's load-and-ready handshake,
    and ``heartbeat_timeout`` bounds the ping that probes a previously
    stalled worker before a read.  With ``strict_reads`` a degraded
    fan-out raises :class:`ShardPoolDegraded` instead of returning the
    surviving shards' merge.
    """

    mmap: Optional[bool] = None
    start_method: Optional[str] = None
    request_timeout: float = 30.0
    startup_timeout: float = 60.0
    heartbeat_timeout: float = 1.0
    strict_reads: bool = False

    def __post_init__(self) -> None:
        for name in ("request_timeout", "startup_timeout", "heartbeat_timeout"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigurationError(f"{name} must be > 0, got {value!r}")
        if self.start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if self.start_method not in available:
                raise ConfigurationError(
                    f"start_method {self.start_method!r} not available here "
                    f"(have {available})"
                )


def _try_send(conn, frame) -> None:
    """Best-effort send: a coordinator that vanished is not our problem."""
    try:
        conn.send(frame)
    except (BrokenPipeError, OSError):
        pass


def _shard_worker_main(directory, shard_id, mmap, conn) -> None:
    """Worker entry point: load one shard, answer frames until ``stop``.

    Module-level (not a closure) so ``spawn`` start methods can pickle
    it.  All request handling is wrapped: a per-request exception yields
    a typed ``error`` frame and the worker keeps serving; only a failure
    to load the shard (or a lost pipe) ends the process, announced with
    a ``fatal`` frame when the pipe still works.
    """
    try:
        started = time.perf_counter()
        engine = ShardedSearchEngine.load_shard(directory, shard_id, mmap=mmap)
        load_seconds = time.perf_counter() - started
        conn.send(
            (
                "ready",
                shard_id,
                engine.epoch,
                engine.num_indexed_resources,
                load_seconds,
            )
        )
    except BaseException as exc:  # noqa: BLE001 - must report, then die
        _try_send(conn, ("fatal", f"{type(exc).__name__}: {exc}"))
        return
    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return
        kind = frame[0]
        if kind == "stop":
            return
        if kind == "ping":
            _try_send(conn, ("pong", frame[1]))
        elif kind == "sleep":
            # Fault-injection hook: emulate a stalled worker (GC pause,
            # page-fault storm) without patching the engine.
            time.sleep(float(frame[2]))
            _try_send(conn, ("pong", frame[1]))
        elif kind == "rank":
            req_id, queries, top_k = frame[1], frame[2], frame[3]
            try:
                epoch, results = engine.snapshot_rank_batch(queries, top_k)
            except Exception as exc:  # noqa: BLE001 - typed error frame
                _try_send(
                    conn, ("error", req_id, f"{type(exc).__name__}: {exc}")
                )
            else:
                _try_send(conn, ("ok", req_id, epoch, results))
        else:
            req_id = frame[1] if len(frame) > 1 else None
            _try_send(conn, ("error", req_id, f"unknown frame kind {kind!r}"))


class _WorkerHandle:
    """Coordinator-side bookkeeping for one worker process."""

    __slots__ = (
        "shard_id",
        "process",
        "conn",
        "state",
        "epoch",
        "num_documents",
        "load_seconds",
        "restarts",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.process = None
        self.conn = None
        self.state = WORKER_DEAD
        self.epoch: Optional[int] = None
        self.num_documents = 0
        self.load_seconds: Optional[float] = None
        self.restarts = -1  # first spawn brings this to 0


class ShardProcessPool:
    """Serve a saved sharded index with one OS process per shard.

    Opens the directory written by :meth:`ShardedSearchEngine.save`,
    spawns ``num_shards`` workers (each loading exactly one shard, via
    mmap when the save layout allows), and exposes the same epoch-tagged
    read surface as the in-process engines::

        with ShardProcessPool(save_dir) as pool:
            epoch, results = pool.snapshot_rank_batch(queries, top_k=10)

    Because the heavy scoring happens in separate interpreters, the
    shards genuinely run in parallel — unlike the thread-pool fan-out,
    which the GIL serializes.  :meth:`rank_batch_detailed` returns the
    typed :class:`PoolResult` (merged rankings plus per-shard failures);
    :meth:`snapshot_rank_batch` flattens that to ``(epoch, results)``
    for drop-in use behind :class:`~repro.serve.frontend.BatchingFrontend`
    or the workload replay runner, counting degraded reads in
    :meth:`health`.  The pool holds no query cache of its own, so a
    frontend layered on top owns caching (keyed on the pool's epoch).

    Thread-safe: concurrent reads are serialized over the pipes by an
    internal lock (the workers themselves are the parallelism).  Always
    :meth:`close` the pool (or use it as a context manager) — worker
    processes are not daemons of the calling code's lifecycle.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        config: Optional[ShardPoolConfig] = None,
    ) -> None:
        self._directory = Path(directory)
        self._config = config or ShardPoolConfig()
        manifest = ShardedSearchEngine._read_manifest(self._directory)
        self.name = str(manifest["name"])
        self._shard_dirs = [
            self._directory / entry["directory"]
            for entry in manifest["shards"]
        ]
        if not self._shard_dirs:
            raise ShardPoolError("manifest lists no shards")
        self._epoch = int(manifest.get("epoch", 0))
        self._mmap = self._resolve_mmap()
        self._ctx = self._resolve_context()
        self._lock = threading.Lock()
        self._req_ids = itertools.count(1)
        self._degraded_reads = 0
        self._closed = False
        self._workers = [
            _WorkerHandle(shard_id)
            for shard_id in range(len(self._shard_dirs))
        ]
        try:
            for worker in self._workers:
                self._spawn(worker)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Startup / lifecycle
    # ------------------------------------------------------------------ #
    def _resolve_mmap(self) -> bool:
        if self._config.mmap is not None:
            return bool(self._config.mmap)
        return saved_storage(self._shard_dirs[0]) == STORAGE_NPY

    def _resolve_context(self):
        method = self._config.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else available[0]
        return multiprocessing.get_context(method)

    def _spawn(self, worker: _WorkerHandle) -> None:
        """(Re)start one worker and wait for its ready handshake."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(self._directory, worker.shard_id, self._mmap, child_conn),
            name=f"{self.name}-shard{worker.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.restarts += 1
        deadline = time.monotonic() + self._config.startup_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not parent_conn.poll(max(remaining, 0)):
                self._mark_dead(worker)
                raise ShardPoolError(
                    f"shard {worker.shard_id} worker not ready within "
                    f"{self._config.startup_timeout}s"
                )
            try:
                frame = parent_conn.recv()
            except (EOFError, OSError):
                self._mark_dead(worker)
                raise ShardPoolError(
                    f"shard {worker.shard_id} worker died during startup"
                )
            if frame[0] == "fatal":
                self._mark_dead(worker)
                raise ShardPoolError(
                    f"shard {worker.shard_id} worker failed to load: "
                    f"{frame[1]}"
                )
            if frame[0] == "ready":
                _, shard_id, epoch, num_documents, load_seconds = frame
                if epoch != self._epoch:
                    self._mark_dead(worker)
                    raise ShardPoolError(
                        f"shard {shard_id} loaded epoch {epoch} but the "
                        f"manifest says {self._epoch}; the save is torn — "
                        "re-save the engine"
                    )
                worker.state = WORKER_READY
                worker.epoch = epoch
                worker.num_documents = int(num_documents)
                worker.load_seconds = float(load_seconds)
                return
            # Anything else at startup is a stale frame from a previous
            # incarnation's pipe; impossible on a fresh Pipe, drop it.

    def _mark_dead(self, worker: _WorkerHandle) -> None:
        worker.state = WORKER_DEAD
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        if worker.process is not None and worker.process.is_alive():
            worker.process.terminate()

    def restart_worker(self, shard_id: int) -> None:
        """Respawn one shard's worker (after a kill, crash, or stall).

        The fresh worker re-loads the shard from disk and must hand back
        the manifest epoch, so a successful restart restores exact-parity
        serving for that shard; the rest of the pool is untouched.
        """
        worker = self._worker(shard_id)
        with self._lock:
            self._mark_dead(worker)
            if worker.process is not None:
                worker.process.join(timeout=self._config.startup_timeout)
            self._spawn(worker)

    def close(self) -> None:
        """Stop every worker (idempotent); the save directory is untouched."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.conn is not None:
                _try_send(worker.conn, ("stop",))
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass
                worker.conn = None
            worker.state = WORKER_DEAD

    def __enter__(self) -> "ShardProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """The manifest epoch every response is validated against."""
        return self._epoch

    @property
    def num_shards(self) -> int:
        return len(self._workers)

    @property
    def num_indexed_resources(self) -> int:
        """Resources across all shards (from the workers' handshakes)."""
        return sum(worker.num_documents for worker in self._workers)

    @property
    def uses_mmap(self) -> bool:
        """Whether workers memory-map their arrays (vs eager load)."""
        return self._mmap

    def refresh(self) -> bool:
        """The pool is read-only; there is never anything to refresh."""
        return False

    def health(self) -> Dict[str, object]:
        """Pool-level and per-worker status for dashboards and tests."""
        return {
            "epoch": self._epoch,
            "num_shards": self.num_shards,
            "mmap": self._mmap,
            "degraded_reads": self._degraded_reads,
            "workers": [
                {
                    "shard_id": worker.shard_id,
                    "state": worker.state,
                    "num_documents": worker.num_documents,
                    "load_seconds": worker.load_seconds,
                    "restarts": max(worker.restarts, 0),
                }
                for worker in self._workers
            ],
        }

    def worker_load_seconds(self) -> List[float]:
        """Per-shard cold-start load times (benchmark instrumentation)."""
        return [worker.load_seconds or 0.0 for worker in self._workers]

    def _worker(self, shard_id: int) -> _WorkerHandle:
        if not 0 <= shard_id < len(self._workers):
            raise ConfigurationError(
                f"shard_id {shard_id} outside [0, {len(self._workers)})"
            )
        return self._workers[shard_id]

    # ------------------------------------------------------------------ #
    # Fault injection (testing / failure drills)
    # ------------------------------------------------------------------ #
    def inject_stall(self, shard_id: int, seconds: float) -> None:
        """Make one worker sleep — a failure drill for the timeout path.

        The worker processes frames serially, so the next read's request
        queues behind the sleep and times out, exactly like a real stall
        (GC pause, page-fault storm).  Used by the worker-failure tests;
        never call it in production serving.
        """
        worker = self._worker(shard_id)
        with self._lock:
            if worker.conn is None:
                raise ShardPoolError(f"shard {shard_id} worker is dead")
            worker.conn.send(("sleep", next(self._req_ids), float(seconds)))

    def kill_worker(self, shard_id: int) -> None:
        """Kill one worker process outright — a failure drill for crashes.

        SIGKILL, not a clean stop: the handle is deliberately left in its
        current state so the *read path* discovers the death (the closed
        pipe surfaces as a typed ``"dead"`` :class:`ShardFailure` on the
        next fan-out), exactly as a real OOM-kill or segfault would be
        discovered.  Recover with :meth:`restart_worker`.  Used by the
        chaos scenario; never call it in production serving.
        """
        worker = self._worker(shard_id)
        with self._lock:
            if worker.process is None or not worker.process.is_alive():
                raise ShardPoolError(
                    f"shard {shard_id} worker is not running; nothing to kill"
                )
            worker.process.kill()
            worker.process.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def snapshot_rank_batch(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int] = None,
    ) -> Tuple[int, List[List[RankedResult]]]:
        """Epoch-consistent batched ranking: ``(epoch, results)``.

        The drop-in surface :class:`~repro.serve.frontend.BatchingFrontend`
        and the replay runner expect.  The pool is immutable, so every
        read is trivially epoch-consistent; shard failures degrade the
        result (missing shards contribute no candidates) unless
        ``strict_reads`` is set, in which case they raise
        :class:`ShardPoolDegraded`.  Use :meth:`rank_batch_detailed` when
        the caller needs the failure list itself.
        """
        outcome = self.rank_batch_detailed(queries, top_k)
        return outcome.epoch, outcome.results

    def rank_batch(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int] = None,
    ) -> List[List[RankedResult]]:
        """Just the merged rankings of :meth:`snapshot_rank_batch`."""
        return self.snapshot_rank_batch(queries, top_k)[1]

    def search(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[RankedResult]:
        """Rank all resources against one tag query (fan-out + merge)."""
        return self.rank_batch([list(query_tags)], top_k=top_k)[0]

    def rank_batch_detailed(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int] = None,
    ) -> PoolResult:
        """Fan a batch out to every live worker; return the typed outcome.

        Never hangs: the whole fan-out runs against
        ``config.request_timeout``, a worker that misses the deadline is
        marked stalled (and heartbeat-probed before the next read), and
        a dead pipe is detected immediately.  With ``strict_reads`` any
        failure raises :class:`ShardPoolDegraded`; otherwise the
        surviving shards' lists are merged and the failures ride along
        on the :class:`PoolResult`.
        """
        if self._closed:
            raise ShardPoolError("pool is closed")
        validate_top_k(top_k)
        queries = [list(tags) for tags in queries]
        if not queries:
            return PoolResult(self._epoch, [], {}, ())
        with self._lock:
            outcome = self._fan_out(queries, top_k)
        if outcome.failures:
            self._degraded_reads += 1
            if self._config.strict_reads:
                raise ShardPoolDegraded(outcome.failures)
        return outcome

    def _fan_out(self, queries, top_k) -> PoolResult:
        """One locked fan-out/merge round; caller holds ``_lock``."""
        req_id = next(self._req_ids)
        failures: List[ShardFailure] = []
        pending: Dict[object, _WorkerHandle] = {}
        for worker in self._workers:
            if worker.state == WORKER_DEAD or worker.conn is None:
                failures.append(
                    ShardFailure(
                        worker.shard_id,
                        "dead" if worker.epoch is not None else "unavailable",
                        "worker process is down; call restart_worker()",
                    )
                )
                continue
            if worker.state == WORKER_STALLED and not self._revive(worker):
                if worker.state == WORKER_DEAD:
                    failures.append(
                        ShardFailure(
                            worker.shard_id,
                            "dead",
                            "worker died while stalled",
                        )
                    )
                else:
                    failures.append(
                        ShardFailure(
                            worker.shard_id,
                            "stalled",
                            "worker missed the heartbeat; skipped",
                        )
                    )
                continue
            try:
                worker.conn.send(("rank", req_id, queries, top_k))
            except (BrokenPipeError, OSError):
                self._mark_dead(worker)
                failures.append(
                    ShardFailure(
                        worker.shard_id, "dead", "pipe closed on send"
                    )
                )
                continue
            pending[worker.conn] = worker

        shard_results: Dict[int, List[List[RankedResult]]] = {}
        shard_epochs: Dict[int, int] = {}
        deadline = time.monotonic() + self._config.request_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            ready = mp_connection.wait(list(pending), timeout=remaining)
            if not ready:
                break
            for conn in ready:
                worker = pending[conn]
                try:
                    frame = conn.recv()
                except (EOFError, OSError):
                    self._mark_dead(worker)
                    failures.append(
                        ShardFailure(
                            worker.shard_id,
                            "dead",
                            "pipe closed mid-request (worker killed?)",
                        )
                    )
                    del pending[conn]
                    continue
                kind = frame[0]
                if kind == "fatal":
                    self._mark_dead(worker)
                    failures.append(
                        ShardFailure(worker.shard_id, "dead", str(frame[1]))
                    )
                    del pending[conn]
                elif kind == "ok":
                    if frame[1] != req_id:
                        continue  # stale reply from before a timeout
                    _, _, epoch, results = frame
                    if epoch != self._epoch:
                        failures.append(
                            ShardFailure(
                                worker.shard_id,
                                "error",
                                f"worker epoch {epoch} contradicts pool "
                                f"epoch {self._epoch}",
                            )
                        )
                    else:
                        shard_results[worker.shard_id] = results
                        shard_epochs[worker.shard_id] = epoch
                    del pending[conn]
                elif kind == "error":
                    if frame[1] is not None and frame[1] != req_id:
                        continue
                    failures.append(
                        ShardFailure(worker.shard_id, "error", str(frame[2]))
                    )
                    del pending[conn]
                # pong or other stale frames: drop, keep waiting

        for conn, worker in list(pending.items()):
            if worker.process is not None and not worker.process.is_alive():
                self._mark_dead(worker)
                failures.append(
                    ShardFailure(
                        worker.shard_id, "dead", "worker process exited"
                    )
                )
            else:
                worker.state = WORKER_STALLED
                failures.append(
                    ShardFailure(
                        worker.shard_id,
                        "timeout",
                        f"no reply within {self._config.request_timeout}s; "
                        "marked stalled",
                    )
                )

        ordered = sorted(shard_results)
        merged = [
            merge_topk(
                [shard_results[shard_id][index] for shard_id in ordered],
                top_k,
            )
            for index in range(len(queries))
        ]
        return PoolResult(self._epoch, merged, shard_epochs, tuple(failures))

    def _revive(self, worker: _WorkerHandle) -> bool:
        """Heartbeat-probe a stalled worker; True if it is serving again.

        Stale frames queued while the worker was stalled (late replies to
        timed-out requests) are drained first, so they can never be
        mistaken for the pong.
        """
        conn = worker.conn
        if conn is None:
            return False
        try:
            while conn.poll(0):
                conn.recv()  # drain and discard stale frames
            ping_id = next(self._req_ids)
            conn.send(("ping", ping_id))
            deadline = time.monotonic() + self._config.heartbeat_timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not conn.poll(max(remaining, 0)):
                    return False
                frame = conn.recv()
                if frame[0] == "pong" and frame[1] == ping_id:
                    worker.state = WORKER_READY
                    return True
                if frame[0] == "fatal":
                    self._mark_dead(worker)
                    return False
        except (BrokenPipeError, EOFError, OSError):
            self._mark_dead(worker)
            return False

    def __repr__(self) -> str:
        states = ",".join(worker.state for worker in self._workers)
        return (
            f"ShardProcessPool(name={self.name!r}, "
            f"num_shards={self.num_shards}, epoch={self._epoch}, "
            f"mmap={self._mmap}, workers=[{states}])"
        )
