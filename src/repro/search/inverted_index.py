"""A sparse inverted index over weighted term vectors.

Documents (resources) are sparse mappings ``term -> weight``; the index
stores one postings list per term so that scoring a query only touches the
documents that share at least one term with it.  Cosine normalisation is
applied at query time using pre-computed document norms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class Posting:
    """One entry of a postings list: a document id and its term weight."""

    doc_id: str
    weight: float


class InvertedIndex:
    """Maps terms to postings lists and supports cosine-scored lookups."""

    def __init__(self) -> None:
        self._postings: Dict[Hashable, List[Posting]] = {}
        self._doc_norms: Dict[str, float] = {}
        self._doc_vectors: Dict[str, Dict[Hashable, float]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, vector: Mapping[Hashable, float]) -> None:
        """Add (or replace) a document's weighted term vector."""
        if doc_id in self._doc_vectors:
            self.remove_document(doc_id)
        cleaned = {term: float(w) for term, w in vector.items() if w != 0.0}
        self._doc_vectors[doc_id] = cleaned
        norm = float(np.sqrt(sum(w * w for w in cleaned.values())))
        self._doc_norms[doc_id] = norm
        for term, weight in cleaned.items():
            self._postings.setdefault(term, []).append(Posting(doc_id, weight))

    def remove_document(self, doc_id: str) -> None:
        """Remove a document from the index (no error if absent)."""
        vector = self._doc_vectors.pop(doc_id, None)
        self._doc_norms.pop(doc_id, None)
        if not vector:
            return
        for term in vector:
            postings = self._postings.get(term, [])
            self._postings[term] = [p for p in postings if p.doc_id != doc_id]
            if not self._postings[term]:
                del self._postings[term]

    def build(self, documents: Mapping[str, Mapping[Hashable, float]]) -> "InvertedIndex":
        """Bulk-load documents; returns ``self`` for chaining."""
        for doc_id, vector in documents.items():
            self.add_document(doc_id, vector)
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_documents(self) -> int:
        return len(self._doc_vectors)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    def document_frequency(self, term: Hashable) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, []))

    def document_vector(self, doc_id: str) -> Dict[Hashable, float]:
        """The stored vector of a document (empty dict if unknown)."""
        return dict(self._doc_vectors.get(doc_id, {}))

    def document_norm(self, doc_id: str) -> float:
        return self._doc_norms.get(doc_id, 0.0)

    def documents(self) -> Iterable[str]:
        return self._doc_vectors.keys()

    def postings(self, term: Hashable) -> Tuple[Posting, ...]:
        return tuple(self._postings.get(term, ()))

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def cosine_scores(
        self,
        query_vector: Mapping[Hashable, float],
        top_k: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Cosine similarity of every matching document with the query.

        Returns ``(doc_id, score)`` pairs sorted by decreasing score (ties
        broken by doc id for determinism).  Documents sharing no term with
        the query are omitted — their cosine is zero.
        """
        if top_k is not None and top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1 when given, got {top_k}")
        query = {term: float(w) for term, w in query_vector.items() if w != 0.0}
        query_norm = float(np.sqrt(sum(w * w for w in query.values())))
        if query_norm == 0.0:
            return []

        accumulator: Dict[str, float] = {}
        for term, query_weight in query.items():
            for posting in self._postings.get(term, ()):
                accumulator[posting.doc_id] = (
                    accumulator.get(posting.doc_id, 0.0)
                    + query_weight * posting.weight
                )

        scored: List[Tuple[str, float]] = []
        for doc_id, dot in accumulator.items():
            doc_norm = self._doc_norms.get(doc_id, 0.0)
            if doc_norm == 0.0:
                continue
            scored.append((doc_id, dot / (query_norm * doc_norm)))

        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k is not None:
            scored = scored[:top_k]
        return scored
