"""The user-facing search engine: tag queries in, ranked resources out.

:class:`SearchEngine` glues together a :class:`~repro.core.concepts.ConceptModel`
(how tags map to concepts) and the fitted concept space (how resources are
weighted).  It implements the *online* component of the paper's Figure 1:
transform the query's tags into concepts, compute cosine similarities,
return a ranked list.

Two interchangeable scoring backends are supported:

* the reference dict-loop :class:`~repro.search.vsm.ConceptVectorSpace`
  (kept for auditability and as the parity oracle), and
* the compiled :class:`~repro.search.matrix_space.MatrixConceptSpace`,
  which scores whole query batches with one sparse matmul and is used by
  default whenever it is available.

Engines built from a folksonomy carry both; engines loaded from disk carry
only the compiled matrix backend.

Concurrency
-----------
The engine follows a read/write discipline enforced by a
:class:`~repro.search.concurrency.ReadWriteLock`: queries
(:meth:`SearchEngine.search` / :meth:`SearchEngine.rank_batch` /
:meth:`SearchEngine.score`) hold the lock in shared mode over a *fresh*
(non-stale) index, while mutations and the statistics refresh they trigger
(:meth:`SearchEngine.apply_mutations` / :meth:`SearchEngine.refresh`) hold
it exclusively.  A query arriving while mutations are pending first drives
the refresh through the write path, then re-acquires read access — so
concurrent readers never observe half-swapped CSR arrays, and
:meth:`SearchEngine.snapshot_rank_batch` can hand back results together
with the exact epoch they were computed against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.concepts import Concept, ConceptModel
from repro.search.concurrency import FreshReadMixin, ReadWriteLock
from repro.search.incremental import RefreshPolicy, StalenessReport
from repro.search.matrix_space import MatrixConceptSpace, validate_top_k
from repro.search.vsm import ConceptVectorSpace, RankedResult
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError, NotFittedError

#: JSON file holding the concept model and engine metadata in a save dir.
ENGINE_FILENAME = "engine.json"


def prepare_mutation_batch(
    engine,
    added: Optional[Mapping[str, Mapping[str, float]]],
    updated: Optional[Mapping[str, Mapping[str, float]]],
    removed: Optional[Iterable[str]],
):
    """Shared validation + frozen-model fold-in for one mutation batch.

    ``engine`` duck-types the monolithic and sharded engines
    (``has_resource`` / ``num_indexed_resources`` / ``concept_model``), so
    both apply byte-for-byte the same batch semantics: buckets are
    normalized (dicts copied, removals deduplicated), overlapping buckets
    and unknown/already-indexed resources are rejected, a batch that would
    empty the corpus is rejected, and only then is every tag bag mapped
    through the *frozen* concept model with dynamic-concept allocation.
    Returns ``(added_bags, updated_bags, removed)`` ready to push into the
    backends, or ``None`` for an empty (no-op) batch.  Backend-specific
    mutability checks stay with the caller and must run *before* this so a
    rejected batch has zero side effects.
    """
    added = dict(added or {})
    updated = dict(updated or {})
    removed = list(dict.fromkeys(removed or []))

    overlapping = (set(added) & set(updated)) | (
        (set(added) | set(updated)) & set(removed)
    )
    if overlapping:
        raise ConfigurationError(
            f"resources appear in multiple mutation buckets: "
            f"{sorted(overlapping)[:3]}"
        )
    for resource in added:
        if engine.has_resource(resource):
            raise ConfigurationError(
                f"resource {resource!r} is already indexed; update it instead"
            )
    for resource in list(updated) + removed:
        if not engine.has_resource(resource):
            raise ConfigurationError(f"resource {resource!r} is not indexed")
    if (
        removed
        and engine.num_indexed_resources + len(added) - len(removed) < 1
    ):
        raise ConfigurationError(
            "cannot remove every resource; rebuild the engine instead"
        )
    if not added and not updated and not removed:
        return None

    added_bags = {
        resource: engine.concept_model.concept_bag(bag, allocate=True)
        for resource, bag in added.items()
    }
    updated_bags = {
        resource: engine.concept_model.concept_bag(bag, allocate=True)
        for resource, bag in updated.items()
    }
    return added_bags, updated_bags, removed


@dataclass
class SearchEngine(FreshReadMixin):
    """Online query processing over a concept-space index.

    Attributes
    ----------
    concept_model:
        Maps tags (of resources and of queries) to concept ids.
    vector_space:
        The reference dict-loop tf-idf space; ``None`` for engines loaded
        from disk (which only need the compiled backend).
    name:
        Identifier used in experiment reports (e.g. ``"cubelsi"``).
    matrix_space:
        The compiled CSR backend; ``None`` disables batched scoring and
        falls back to the dict loops.
    refresh_policy:
        When accumulated incremental mutations make a full offline refit
        advisable (see :mod:`repro.search.incremental`).
    epoch:
        Monotone mutation counter; bumped once per successful mutation
        batch and persisted across save/load.
    """

    concept_model: ConceptModel
    vector_space: Optional[ConceptVectorSpace]
    name: str = "cubelsi"
    matrix_space: Optional[MatrixConceptSpace] = field(default=None)
    refresh_policy: RefreshPolicy = field(default_factory=RefreshPolicy)
    epoch: int = 0
    _baseline_resources: Optional[int] = field(default=None, repr=False)
    _resources_added: int = field(default=0, repr=False)
    _resources_removed: int = field(default=0, repr=False)
    _resources_updated: int = field(default=0, repr=False)
    _pending_batches: int = field(default=0, repr=False)
    _rw: ReadWriteLock = field(
        default_factory=ReadWriteLock, repr=False, compare=False
    )

    @classmethod
    def build(
        cls,
        folksonomy: Folksonomy,
        concept_model: ConceptModel,
        smooth_idf: bool = False,
        name: str = "cubelsi",
        matrix_backend: bool = True,
        refresh_policy: Optional[RefreshPolicy] = None,
    ) -> "SearchEngine":
        """Build the engine by indexing every resource of ``folksonomy``.

        Each resource's bag of tags is translated to a bag of concepts with
        ``concept_model`` and indexed with tf-idf weights.  With
        ``matrix_backend=True`` (default) the fitted space is additionally
        compiled into CSR arrays for batched scoring.
        """
        resource_bags: Dict[str, Dict[int, float]] = {}
        for resource in folksonomy.resources:
            tag_bag = folksonomy.tag_bag(resource)
            resource_bags[resource] = concept_model.concept_bag(
                tag_bag, allocate=True
            )
        vector_space = ConceptVectorSpace(smooth_idf=smooth_idf).fit(resource_bags)
        matrix_space = (
            MatrixConceptSpace.compile(vector_space) if matrix_backend else None
        )
        return cls(
            concept_model=concept_model,
            vector_space=vector_space,
            name=name,
            matrix_space=matrix_space,
            refresh_policy=refresh_policy or RefreshPolicy(),
            _baseline_resources=folksonomy.num_resources,
        )

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def query_concepts(self, query_tags: Sequence[str]) -> Dict[int, float]:
        """The query's bag of concepts (step "Given Query" of Figure 1).

        An empty tag list (or one whose tags map to no known concept) yields
        an empty bag; callers treat that as "matches nothing".
        """
        if not query_tags:
            return {}
        return self.concept_model.concept_bag_from_tags(query_tags)

    def _needs_refresh(self) -> bool:
        """Whether pending mutations await the lazy statistics refresh."""
        if self.matrix_space is not None and self.matrix_space.is_stale:
            return True
        return self.vector_space is not None and self.vector_space.is_stale

    def search(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[RankedResult]:
        """Rank all resources against a tag query.

        Resources whose concept vectors share no concept with the query are
        omitted (their cosine similarity is zero).  Empty queries and queries
        of entirely unknown tags return an empty list.
        """
        validate_top_k(top_k)
        with self._read_fresh():
            # The tag -> concept mapping happens inside the lock: a racing
            # mutation batch may allocate dynamic concepts, and the bag
            # must describe the same index state it is scored against.
            concept_bag = self.query_concepts(query_tags)
            if not concept_bag:
                return []
            if self.matrix_space is not None:
                return self.matrix_space.rank(concept_bag, top_k=top_k)
            return self._require_vector_space().rank(concept_bag, top_k=top_k)

    def rank_batch(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int] = None,
    ) -> List[List[RankedResult]]:
        """Rank a whole batch of tag queries in one pass.

        With the matrix backend the batch is scored by a single sparse
        matmul; otherwise each query goes through the dict-loop reference
        path.  The i-th result list always corresponds to the i-th query,
        with empty/unmatchable queries producing empty lists.  An empty
        batch yields an empty list, and an invalid ``top_k`` is rejected
        up front even when no query is scorable — callers get well-typed
        results without relying on downstream backend guards.
        """
        validate_top_k(top_k)
        if not queries:
            return []
        with self._read_fresh():
            return self._rank_batch_in_lock(queries, top_k)

    def _rank_batch_in_lock(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int],
    ) -> List[List[RankedResult]]:
        """The :meth:`rank_batch` body; caller holds the read lock."""
        concept_bags = [self.query_concepts(tags) for tags in queries]
        if self.matrix_space is not None:
            scorable = [
                (position, bag) for position, bag in enumerate(concept_bags) if bag
            ]
            results: List[List[RankedResult]] = [[] for _ in concept_bags]
            if scorable:
                ranked = self.matrix_space.rank_batch(
                    [bag for _, bag in scorable], top_k=top_k
                )
                for (position, _), result in zip(scorable, ranked):
                    results[position] = result
            return results
        space = self._require_vector_space()
        return [
            space.rank(bag, top_k=top_k) if bag else [] for bag in concept_bags
        ]

    def ranked_resources(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[str]:
        """Just the resource ids of :meth:`search`, in rank order."""
        return [result.resource for result in self.search(query_tags, top_k=top_k)]

    def score(self, query_tags: Sequence[str], resource: str) -> float:
        """Cosine similarity between a query and a single resource.

        Routes through the matrix backend when available (its post-mutation
        refresh is one vectorized pass, where the dict mirror's is a full
        Python re-fit); the mirror serves :meth:`explain` and parity tests.
        """
        with self._read_fresh():
            concept_bag = self.query_concepts(query_tags)
            if not concept_bag:
                return 0.0
            if self.matrix_space is not None:
                return self.matrix_space.cosine(concept_bag, resource)
            return self._require_vector_space().cosine(concept_bag, resource)

    def explain(self, query_tags: Sequence[str], resource: str) -> Dict[str, object]:
        """A debugging breakdown of how a resource scored for a query.

        Vectors and the cosine are read inside one reader-held region
        (the cosine is computed inline — :meth:`score` would re-enter the
        non-reentrant lock), so the breakdown reflects a single index
        state even while mutations race.
        """
        space = self._require_vector_space()
        with self._read_fresh():
            concept_bag = self.query_concepts(query_tags)
            query_vector = space.query_vector(concept_bag)
            resource_vector = space.resource_vector(resource)
            if not concept_bag:
                cosine = 0.0
            elif self.matrix_space is not None:
                cosine = self.matrix_space.cosine(concept_bag, resource)
            else:
                cosine = space.cosine(concept_bag, resource)
        overlap = {
            concept: (query_vector.get(concept, 0.0), resource_vector.get(concept, 0.0))
            for concept in set(query_vector) | set(resource_vector)
        }
        return {
            "query_tags": list(query_tags),
            "query_concepts": concept_bag,
            "cosine": cosine,
            "per_concept_weights": overlap,
        }

    # ------------------------------------------------------------------ #
    # Incremental updates (fold-in through the frozen concept model)
    # ------------------------------------------------------------------ #
    def has_resource(self, resource: str) -> bool:
        """Whether ``resource`` is currently indexed (pending ops included)."""
        if self.matrix_space is not None:
            return self.matrix_space.has_document(resource)
        return self._require_vector_space().has_resource(resource)

    @property
    def num_indexed_resources(self) -> int:
        """Resources currently indexed, pending mutations included.

        Deliberately does *not* trigger the lazy refresh — staleness
        accounting after a mutation must stay O(1).
        """
        if self.matrix_space is not None:
            return self.matrix_space.pending_num_documents
        return self._require_vector_space().pending_num_resources

    def apply_mutations(
        self,
        added: Optional[Mapping[str, Mapping[str, float]]] = None,
        updated: Optional[Mapping[str, Mapping[str, float]]] = None,
        removed: Optional[Iterable[str]] = None,
    ) -> StalenessReport:
        """Apply one batch of resource mutations; bumps the epoch once.

        All tag bags are mapped through the *frozen* concept model
        (LSI-style fold-in) and pushed into every backend; idf and norms
        recompute lazily on the next read.  Everything is validated before
        anything is applied, so a rejected batch leaves the backends in
        sync, and additions land before removals so a batch that swaps
        most of the corpus never looks momentarily empty.
        """
        if self.matrix_space is not None and not self.matrix_space.is_mutable:
            # Checked before anything (including dynamic-concept allocation)
            # happens, so a rejected batch has zero side effects.
            raise ConfigurationError(
                "this engine's matrix backend carries no raw concept counts "
                "(pre-v2 artefact) and cannot be mutated; rebuild the engine "
                "or re-save the index with the current format"
            )
        if self.matrix_space is not None and self.matrix_space.has_external_stats:
            raise ConfigurationError(
                "this engine serves one shard of a sharded index and cannot "
                "mutate it locally (idf/num_resources are corpus-wide); "
                "route mutations through the owning ShardedSearchEngine"
            )
        with self._rw.write():
            batch = prepare_mutation_batch(self, added, updated, removed)
            if batch is None:
                return self.staleness()
            added_bags, updated_bags, removed = batch
            if self.matrix_space is not None:
                if added_bags:
                    self.matrix_space.add_documents(added_bags)
                for resource, bag in updated_bags.items():
                    self.matrix_space.update_document(resource, bag)
                if removed:
                    self.matrix_space.remove_documents(removed)
            if self.vector_space is not None:
                if added_bags:
                    self.vector_space.add_resources(added_bags)
                for resource, bag in updated_bags.items():
                    self.vector_space.update_resource(resource, bag)
                if removed:
                    self.vector_space.remove_resources(removed)
            self.epoch += 1
            self._resources_added += len(added_bags)
            self._resources_updated += len(updated_bags)
            self._resources_removed += len(removed)
            self._pending_batches += 1
            return self.staleness()

    def add_resources(
        self, tag_bags: Mapping[str, Mapping[str, float]]
    ) -> StalenessReport:
        """Fold new resources into the index without an offline refit.

        Raises if any resource is already indexed (use
        :meth:`update_resource`).
        """
        return self.apply_mutations(added=tag_bags)

    def remove_resources(self, resources: Iterable[str]) -> StalenessReport:
        """Drop resources from every backend (lazily refreshed)."""
        return self.apply_mutations(removed=resources)

    def update_resource(
        self, resource: str, tag_bag: Mapping[str, float]
    ) -> StalenessReport:
        """Replace one resource's tag bag in every backend."""
        return self.apply_mutations(updated={resource: tag_bag})

    def refresh(self) -> bool:
        """Eagerly fold pending mutations into the backends; True if any.

        Runs under the exclusive side of the engine's read/write lock, so
        no concurrent query can observe the backends mid-swap.
        """
        if not self._needs_refresh():
            return False
        with self._rw.write():
            refreshed = False
            if self.matrix_space is not None:
                refreshed = self.matrix_space.refresh() or refreshed
            if self.vector_space is not None:
                refreshed = self.vector_space.refresh() or refreshed
            self._pending_batches = 0
            return refreshed

    def staleness(self) -> StalenessReport:
        """How far the engine has drifted since its last full (re)fit."""
        current = self.num_indexed_resources
        baseline = (
            self._baseline_resources
            if self._baseline_resources is not None
            else current
        )
        delta_ops = (
            self._resources_added
            + self._resources_removed
            + self._resources_updated
        )
        return StalenessReport(
            epoch=self.epoch,
            resources_added=self._resources_added,
            resources_removed=self._resources_removed,
            resources_updated=self._resources_updated,
            baseline_resources=baseline,
            current_resources=current,
            refit_due=self.refresh_policy.refit_due(delta_ops, baseline),
            fold_in_due=self.refresh_policy.fold_in_due(self._pending_batches),
        )

    def health(self) -> Dict[str, object]:
        """Operational snapshot: identity, epoch and both drift verdicts."""
        return {
            "name": self.name,
            "epoch": self.epoch,
            "staleness": self.staleness().as_dict(),
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(
        self, directory: Union[str, Path], mmap_ready: bool = False
    ) -> Path:
        """Persist the engine (compiled backend + concept model) to a dir.

        Only the matrix backend is serialised — the dict-loop space is a
        fit-time artefact.  Dynamic (``own-concept``) concepts travel with
        the engine: their columns live in the persisted count arrays, so
        dropping the tag → id map would let a restored serving process
        reallocate a live column id to a different tag.

        ``mmap_ready=True`` writes the backend arrays in the raw ``.npy``
        layout that loads can memory-map (see
        :meth:`MatrixConceptSpace.save`).
        """
        if self.matrix_space is None:
            raise ConfigurationError(
                "cannot save an engine without a compiled matrix backend"
            )
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        with self._read_fresh():
            self.matrix_space.save(path, mmap_ready=mmap_ready)
            payload = self._save_payload()
        (path / ENGINE_FILENAME).write_text(json.dumps(payload), encoding="utf-8")
        return path

    def _save_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "concept_model": concept_model_to_json(self.concept_model),
            "epoch": self.epoch,
            "baseline_resources": self._baseline_resources,
            "mutations": {
                "added": self._resources_added,
                "removed": self._resources_removed,
                "updated": self._resources_updated,
            },
            "refresh_policy": {
                "max_delta_fraction": self.refresh_policy.max_delta_fraction,
                "max_delta_ops": self.refresh_policy.max_delta_ops,
                "max_pending_batches": self.refresh_policy.max_pending_batches,
            },
        }

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "SearchEngine":
        """Load an engine saved by :meth:`save` (matrix backend only)."""
        path = Path(directory)
        engine_path = path / ENGINE_FILENAME
        if not engine_path.exists():
            raise NotFittedError(f"no saved engine under {path}")
        payload = json.loads(engine_path.read_text(encoding="utf-8"))
        policy_payload = payload.get("refresh_policy") or {}
        mutations = payload.get("mutations") or {}
        return cls(
            concept_model=concept_model_from_json(payload["concept_model"]),
            vector_space=None,
            name=payload["name"],
            matrix_space=MatrixConceptSpace.load(path),
            refresh_policy=RefreshPolicy(
                max_delta_fraction=float(
                    policy_payload.get("max_delta_fraction", 0.1)
                ),
                max_delta_ops=policy_payload.get("max_delta_ops"),
                max_pending_batches=int(
                    policy_payload.get("max_pending_batches", 1)
                ),
            ),
            epoch=int(payload.get("epoch", 0)),
            _baseline_resources=payload.get("baseline_resources"),
            _resources_added=int(mutations.get("added", 0)),
            _resources_removed=int(mutations.get("removed", 0)),
            _resources_updated=int(mutations.get("updated", 0)),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require_vector_space(self) -> ConceptVectorSpace:
        if self.vector_space is None:
            raise ConfigurationError(
                "this engine was loaded from disk and carries no dict-loop "
                "vector space; use the matrix backend APIs"
            )
        return self.vector_space


def concept_model_to_json(model: ConceptModel) -> Dict[str, object]:
    """JSON payload for a concept model (engine and shard-manifest saves)."""
    return {
        "unknown_policy": model.unknown_policy,
        "concepts": [
            {"id": concept.concept_id, "tags": list(concept.tags)}
            for concept in model.concepts
        ],
        "dynamic_concepts": dict(model._dynamic_concepts),
    }


def concept_model_from_json(payload: Dict[str, object]) -> ConceptModel:
    """Inverse of :func:`concept_model_to_json`."""
    concepts = [
        Concept(concept_id=int(entry["id"]), tags=tuple(entry["tags"]))
        for entry in payload["concepts"]  # type: ignore[union-attr]
    ]
    tag_to_concept = {
        tag: concept.concept_id for concept in concepts for tag in concept.tags
    }
    dynamic = {
        str(tag): int(concept_id)
        for tag, concept_id in (payload.get("dynamic_concepts") or {}).items()
    }
    return ConceptModel(
        concepts=concepts,
        tag_to_concept=tag_to_concept,
        unknown_policy=str(payload["unknown_policy"]),
        _dynamic_concepts=dynamic,
    )
