"""The user-facing search engine: tag queries in, ranked resources out.

:class:`SearchEngine` glues together a :class:`~repro.core.concepts.ConceptModel`
(how tags map to concepts) and a fitted
:class:`~repro.search.vsm.ConceptVectorSpace` (how resources are weighted in
concept space).  It implements the *online* component of the paper's
Figure 1: transform the query's tags into concepts, compute cosine
similarities, return a ranked list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.concepts import ConceptModel
from repro.search.vsm import ConceptVectorSpace, RankedResult
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError


@dataclass
class SearchEngine:
    """Online query processing over a concept-space index.

    Attributes
    ----------
    concept_model:
        Maps tags (of resources and of queries) to concept ids.
    vector_space:
        The fitted tf-idf concept vector space over all resources.
    name:
        Identifier used in experiment reports (e.g. ``"cubelsi"``).
    """

    concept_model: ConceptModel
    vector_space: ConceptVectorSpace
    name: str = "cubelsi"

    @classmethod
    def build(
        cls,
        folksonomy: Folksonomy,
        concept_model: ConceptModel,
        smooth_idf: bool = False,
        name: str = "cubelsi",
    ) -> "SearchEngine":
        """Build the engine by indexing every resource of ``folksonomy``.

        Each resource's bag of tags is translated to a bag of concepts with
        ``concept_model`` and indexed with tf-idf weights.
        """
        resource_bags: Dict[str, Dict[int, float]] = {}
        for resource in folksonomy.resources:
            tag_bag = folksonomy.tag_bag(resource)
            resource_bags[resource] = concept_model.concept_bag(tag_bag)
        vector_space = ConceptVectorSpace(smooth_idf=smooth_idf).fit(resource_bags)
        return cls(concept_model=concept_model, vector_space=vector_space, name=name)

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def query_concepts(self, query_tags: Sequence[str]) -> Dict[int, float]:
        """The query's bag of concepts (step "Given Query" of Figure 1)."""
        if not query_tags:
            raise ConfigurationError("a query must contain at least one tag")
        return self.concept_model.concept_bag_from_tags(query_tags)

    def search(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[RankedResult]:
        """Rank all resources against a tag query.

        Resources whose concept vectors share no concept with the query are
        omitted (their cosine similarity is zero).
        """
        concept_bag = self.query_concepts(query_tags)
        if not concept_bag:
            return []
        return self.vector_space.rank(concept_bag, top_k=top_k)

    def ranked_resources(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[str]:
        """Just the resource ids of :meth:`search`, in rank order."""
        return [result.resource for result in self.search(query_tags, top_k=top_k)]

    def score(self, query_tags: Sequence[str], resource: str) -> float:
        """Cosine similarity between a query and a single resource."""
        concept_bag = self.query_concepts(query_tags)
        if not concept_bag:
            return 0.0
        return self.vector_space.cosine(concept_bag, resource)

    def explain(self, query_tags: Sequence[str], resource: str) -> Dict[str, object]:
        """A debugging breakdown of how a resource scored for a query."""
        concept_bag = self.query_concepts(query_tags)
        query_vector = self.vector_space.query_vector(concept_bag)
        resource_vector = self.vector_space.resource_vector(resource)
        overlap = {
            concept: (query_vector.get(concept, 0.0), resource_vector.get(concept, 0.0))
            for concept in set(query_vector) | set(resource_vector)
        }
        return {
            "query_tags": list(query_tags),
            "query_concepts": concept_bag,
            "cosine": self.score(query_tags, resource),
            "per_concept_weights": overlap,
        }
