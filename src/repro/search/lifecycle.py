"""Engine lifecycle: swappable handles, mutation journals, background refits.

The serving stack takes live mutations (LSI-style fold-in through the
*frozen* concept model), and :class:`~repro.search.incremental.RefreshPolicy`
can say when that drift warrants a full Tucker refit — but until now the
refit itself had nowhere to run without stopping the world.  This module
closes the loop with three pieces:

* :class:`EngineHandle` — every serving path reads the *current* engine
  through a handle instead of holding it directly.  The read side is
  lock-free in the sense that matters: picking up the current generation
  is one atomic attribute load, and pinning it for the duration of a call
  touches only that generation's own counter — no global lock, and a
  writer never blocks a reader.  :meth:`EngineHandle.swap` installs a new
  generation atomically (double-buffering) and retires the old one only
  after its in-flight readers drain.
* :class:`DeltaJournal` — an ordered, replayable log of every mutation
  batch applied since the last published snapshot.  Replaying the journal
  onto a freshly refitted engine reproduces fold-in state at 1e-9 parity
  (the PR 2 invariant: fold-in equals scratch rebuild under one frozen
  model), which is what lets a refit run on a *trailing* snapshot while
  serving keeps mutating.
* :class:`RefitCoordinator` — the control loop: checkpoint an
  epoch-stamped trailing snapshot into an
  :class:`~repro.core.snapshots.IndexSnapshotStore`, run the full
  Tucker-ALS refit in a **background process** (the fit is CPU-bound
  Python + BLAS; a process sidesteps the GIL and memory spikes), replay
  the journal entries that arrived meanwhile onto the fresh engine,
  publish it as a new generation, and hot-swap it in.

Generation/epoch model
----------------------
A *generation* is one engine instance (one concept model); the handle's
generation number increments on every swap.  The *epoch* is the mutation
counter serving reads are audited against.  A swap stamps the incoming
engine with ``old epoch + 1``, so the epoch stream stays strictly monotone
across generations and no ``(epoch, query)`` cache key can collide between
two generations.  Readers observe: same generation => same concept model;
epoch never decreases, ever.

Journal parity requires *integral* tag-bag weights (a folksonomy counts
distinct users per (tag, resource); a fractional weight has no assignment
representation).  The workload generator emits integral weights; handles
fed fractional bags refuse folksonomy tracking loudly rather than drifting
silently.
"""

from __future__ import annotations

import multiprocessing
import shutil
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.tagging.delta import FolksonomyDelta
from repro.tagging.entities import TagAssignment
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError, NotFittedError

#: User-id prefix of assignments synthesized from journal tag bags.  A bag
#: ``{tag: n}`` becomes assignments by n distinct ``jrnl-*`` users, so the
#: rebuilt ``tag_bag`` equals the journaled bag exactly.
JOURNAL_USER_PREFIX = "jrnl"

#: Weights further than this from an integer cannot be represented as a
#: set of assignments and are rejected by folksonomy tracking.
_INTEGRAL_TOL = 1e-9


# ---------------------------------------------------------------------- #
# Journal
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class JournalEntry:
    """One mutation batch as applied: the three buckets plus its position.

    ``seq`` is absolute (1-based, never reused), so marks taken with
    :meth:`DeltaJournal.mark` stay valid across truncations.
    """

    seq: int
    added: Mapping[str, Mapping[str, float]]
    updated: Mapping[str, Mapping[str, float]]
    removed: Tuple[str, ...]


def _freeze_buckets(
    added: Optional[Mapping[str, Mapping[str, float]]],
    updated: Optional[Mapping[str, Mapping[str, float]]],
    removed: Optional[Iterable[str]],
) -> Tuple[Dict[str, Dict[str, float]], Dict[str, Dict[str, float]], Tuple[str, ...]]:
    """Deep-copy one batch so the journal owns its payload.

    Callers may recycle or mutate their bag dicts after ``apply_mutations``
    returns; a journal that aliased them would replay corrupted history.
    """
    return (
        {resource: dict(bag) for resource, bag in (added or {}).items()},
        {resource: dict(bag) for resource, bag in (updated or {}).items()},
        tuple(dict.fromkeys(removed or [])),
    )


class DeltaJournal:
    """A thread-safe ordered log of mutation batches since the last snapshot.

    The journal is the replay medium of the refit pipeline: a background
    refit fits on a trailing snapshot, then replays ``entries_since(mark)``
    onto the fresh engine to catch up with everything serving applied
    meanwhile.  Sequence numbers are absolute so a mark taken before the
    fit stays meaningful after a concurrent ``truncate_through``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: List[JournalEntry] = []
        self._next_seq = 1

    def append(
        self,
        added: Optional[Mapping[str, Mapping[str, float]]] = None,
        updated: Optional[Mapping[str, Mapping[str, float]]] = None,
        removed: Optional[Iterable[str]] = None,
    ) -> int:
        """Record one applied batch; returns its sequence number."""
        frozen_added, frozen_updated, frozen_removed = _freeze_buckets(
            added, updated, removed
        )
        if not frozen_added and not frozen_updated and not frozen_removed:
            raise ConfigurationError("refusing to journal an empty mutation batch")
        with self._lock:
            entry = JournalEntry(
                seq=self._next_seq,
                added=frozen_added,
                updated=frozen_updated,
                removed=frozen_removed,
            )
            self._entries.append(entry)
            self._next_seq += 1
            return entry.seq

    def mark(self) -> int:
        """The newest appended sequence number (0 before any append).

        ``entries_since(mark())`` is empty *now*; entries appended later
        come after the mark — the capture point the refit checkpoints at.
        """
        with self._lock:
            return self._next_seq - 1

    def entries_since(self, mark: int) -> List[JournalEntry]:
        """All entries with ``seq > mark``, in order (a copy)."""
        with self._lock:
            return [entry for entry in self._entries if entry.seq > mark]

    def truncate_through(self, mark: int) -> int:
        """Drop entries with ``seq <= mark``; returns how many were dropped.

        Called after a publish: everything up to the published mark is in
        the on-disk artefact, so only the tail still needs replaying on a
        restart.  Sequence numbers of surviving entries are unchanged.
        """
        with self._lock:
            before = len(self._entries)
            self._entries = [e for e in self._entries if e.seq > mark]
            return before - len(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def replay_entries(engine, entries: Sequence[JournalEntry]) -> int:
    """Apply journal entries to ``engine`` in order; returns the count."""
    for entry in entries:
        engine.apply_mutations(
            added=entry.added, updated=entry.updated, removed=entry.removed
        )
    return len(entries)


# ---------------------------------------------------------------------- #
# Folksonomy materialization of journaled bags
# ---------------------------------------------------------------------- #
def synthesize_assignments(
    resource: str, bag: Mapping[str, float]
) -> List[TagAssignment]:
    """Assignments whose rebuilt ``tag_bag`` equals ``bag`` exactly.

    A folksonomy's ``tag_bag`` counts distinct users per (tag, resource),
    so weight ``n`` becomes ``n`` assignments by synthetic ``jrnl-*``
    users.  Non-integral or non-positive weights are rejected — they have
    no assignment-set representation, and silently rounding them would
    break the 1e-9 scratch-rebuild parity the journal exists to provide.
    """
    assignments: List[TagAssignment] = []
    for tag in sorted(bag):
        weight = float(bag[tag])
        count = int(round(weight))
        if count < 1 or abs(weight - count) > _INTEGRAL_TOL:
            raise ConfigurationError(
                "folksonomy tracking requires positive integral tag weights; "
                f"resource {resource!r} tag {tag!r} has weight {weight!r}"
            )
        assignments.extend(
            TagAssignment(
                user=f"{JOURNAL_USER_PREFIX}-{position:04d}",
                tag=tag,
                resource=resource,
            )
            for position in range(count)
        )
    return assignments


def fold_mutations_into_folksonomy(
    folksonomy: Folksonomy,
    added: Optional[Mapping[str, Mapping[str, float]]] = None,
    updated: Optional[Mapping[str, Mapping[str, float]]] = None,
    removed: Optional[Iterable[str]] = None,
) -> Folksonomy:
    """The folksonomy after one mutation batch, via one incremental delta.

    Updates replace the resource's whole assignment set; assignments that
    would be both removed and re-added (an update preserving part of a
    bag) cancel out before the delta is built, because a
    :class:`~repro.tagging.delta.FolksonomyDelta` rejects overlap.
    """
    add_set: set = set()
    remove_set: set = set()
    for resource, bag in (added or {}).items():
        add_set.update(synthesize_assignments(resource, bag))
    for resource, bag in (updated or {}).items():
        remove_set.update(folksonomy.assignments_of_resource(resource))
        add_set.update(synthesize_assignments(resource, bag))
    for resource in dict.fromkeys(removed or []):
        remove_set.update(folksonomy.assignments_of_resource(resource))
    overlap = add_set & remove_set
    delta = FolksonomyDelta(
        added=tuple(add_set - overlap), removed=tuple(remove_set - overlap)
    )
    if not delta:
        return folksonomy
    return folksonomy.apply_delta(delta)


def fold_entry_into_folksonomy(
    folksonomy: Folksonomy, entry: JournalEntry
) -> Folksonomy:
    """:func:`fold_mutations_into_folksonomy` for one journal entry."""
    return fold_mutations_into_folksonomy(
        folksonomy, added=entry.added, updated=entry.updated, removed=entry.removed
    )


# ---------------------------------------------------------------------- #
# The handle
# ---------------------------------------------------------------------- #
class _Generation:
    """One installed engine: its number, its reader count, its drain state."""

    __slots__ = ("engine", "number", "cond", "readers", "retired")

    def __init__(self, engine, number: int) -> None:
        self.engine = engine
        self.number = int(number)
        self.cond = threading.Condition()
        self.readers = 0
        self.retired = False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every pinned reader released; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while self.readers:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self.cond.wait(remaining)
        return True


@dataclass(frozen=True)
class SwapReport:
    """What one hot swap did and what it cost.

    ``swap_seconds`` covers lock entry through pointer install (the window
    in which *writers* wait; readers never wait); ``drain_seconds`` is how
    long the old generation's in-flight readers took to finish after the
    new one was already serving.
    """

    generation: int
    epoch: int
    swap_seconds: float
    drain_seconds: float
    drained: bool
    replayed_entries: int = 0


class EngineHandle:
    """A swappable reference to the current serving engine.

    The handle duck-types the epoch-consistent engine surface
    (``snapshot_rank_batch`` / ``rank_batch`` / ``search`` / ``refresh`` /
    ``apply_mutations`` / ``epoch`` / ``staleness`` ...), so it drops in
    wherever a :class:`~repro.search.engine.SearchEngine`, a
    :class:`~repro.search.sharding.ShardedSearchEngine` or a
    :class:`~repro.search.shardpool.ShardProcessPool` was used — the
    :class:`~repro.serve.frontend.BatchingFrontend` and the workload
    replay runner work against it unchanged.

    Every read pins exactly **one** generation for its whole duration, so
    a single engine call — and therefore a whole front-end micro-batch,
    which is one ``snapshot_rank_batch`` call — can never mix generations.
    Mutations additionally append to the handle's :class:`DeltaJournal`
    and (when a folksonomy was given) fold into the handle's authoritative
    folksonomy, the pair the refit pipeline replays and refits from.

    Swap correctness argument, in three lines: the current-generation
    pointer is replaced atomically (one attribute store) while the write
    lock serializes it against mutations; readers that pinned the old
    generation before the store keep a counted reference until they
    finish, and the old engine is only closed after that count drains to
    zero; the incoming engine is stamped ``old epoch + 1`` inside the
    same write-lock region, so epochs observed by any reader are strictly
    monotone across the swap.
    """

    def __init__(
        self,
        engine,
        folksonomy: Optional[Folksonomy] = None,
        journal: Optional[DeltaJournal] = None,
        generation: int = 0,
    ) -> None:
        for attribute in ("snapshot_rank_batch", "epoch"):
            if not hasattr(engine, attribute):
                raise ConfigurationError(
                    "EngineHandle needs an engine exposing "
                    f"snapshot_rank_batch and epoch; {type(engine).__name__} "
                    f"lacks {attribute!r}"
                )
        self._current = _Generation(engine, generation)
        self._write_lock = threading.Lock()
        self.journal = journal if journal is not None else DeltaJournal()
        self._folksonomy = folksonomy
        self._swap_listeners: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------ #
    # Read surface
    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        """The current engine (an instantaneous, unpinned read)."""
        return self._current.engine

    @property
    def generation(self) -> int:
        return self._current.number

    @property
    def epoch(self) -> int:
        return self._current.engine.epoch

    @property
    def folksonomy(self) -> Optional[Folksonomy]:
        """The corpus as of every applied mutation (``None`` if untracked)."""
        return self._folksonomy

    @property
    def concept_model(self):
        return getattr(self._current.engine, "concept_model", None)

    @contextmanager
    def pin(self) -> Iterator[_Generation]:
        """Pin the current generation for the duration of the ``with`` body.

        The loop handles the one racy interleaving: a reader that loaded
        the old generation pointer just as a swap retired it simply
        retries and lands on the new one.  Pinned generations are never
        closed under the reader.
        """
        while True:
            generation = self._current
            with generation.cond:
                if generation.retired:
                    continue
                generation.readers += 1
            break
        try:
            yield generation
        finally:
            with generation.cond:
                generation.readers -= 1
                if generation.retired and generation.readers == 0:
                    generation.cond.notify_all()

    def snapshot_rank_batch(self, queries, top_k=None):
        """Epoch-consistent batched ranking against one pinned generation."""
        with self.pin() as generation:
            return generation.engine.snapshot_rank_batch(queries, top_k=top_k)

    def rank_batch(self, queries, top_k=None):
        with self.pin() as generation:
            return generation.engine.rank_batch(queries, top_k=top_k)

    def search(self, query_tags, top_k=None):
        with self.pin() as generation:
            return generation.engine.search(query_tags, top_k=top_k)

    def refresh(self) -> bool:
        """Drive the pinned generation's lazy statistics refresh."""
        with self.pin() as generation:
            return bool(generation.engine.refresh())

    def has_resource(self, resource: str) -> bool:
        with self.pin() as generation:
            return generation.engine.has_resource(resource)

    @property
    def num_indexed_resources(self) -> int:
        return self._current.engine.num_indexed_resources

    def staleness(self):
        with self.pin() as generation:
            return generation.engine.staleness()

    def health(self) -> Dict[str, object]:
        """One operational snapshot: generation, epoch, drift, journal depth.

        Folded into :meth:`~repro.serve.frontend.BatchingFrontend.stats`
        under ``engine_health``; the nested engine health (the process
        pool's worker states) rides along when the engine reports one.
        """
        with self.pin() as generation:
            payload: Dict[str, object] = {
                "generation": generation.number,
                "epoch": generation.engine.epoch,
                "journal_entries": len(self.journal),
            }
            stale = getattr(generation.engine, "staleness", None)
            if callable(stale):
                payload["staleness"] = stale().as_dict()
            nested = getattr(generation.engine, "health", None)
            if callable(nested):
                payload["engine"] = nested()
            return payload

    # ------------------------------------------------------------------ #
    # Write surface
    # ------------------------------------------------------------------ #
    def apply_mutations(
        self,
        added: Optional[Mapping[str, Mapping[str, float]]] = None,
        updated: Optional[Mapping[str, Mapping[str, float]]] = None,
        removed: Optional[Iterable[str]] = None,
    ):
        """Apply one batch to the current engine; journal it on success.

        The write lock serializes mutations against swaps, so a batch is
        always validated against, applied to and journaled for *one*
        generation — a swap can never land between the engine apply and
        the journal append (which would lose the batch from the replay
        stream or replay it twice).
        """
        with self._write_lock:
            engine = self._current.engine
            epoch_before = engine.epoch
            report = engine.apply_mutations(
                added=added, updated=updated, removed=removed
            )
            if engine.epoch != epoch_before:
                # Only batches that actually landed (the engine treats an
                # all-empty batch as a no-op) enter the replay stream.
                self.journal.append(added=added, updated=updated, removed=removed)
                if self._folksonomy is not None:
                    self._folksonomy = fold_mutations_into_folksonomy(
                        self._folksonomy,
                        added=added,
                        updated=updated,
                        removed=removed,
                    )
            return report

    def add_swap_listener(self, listener: Callable[[int], None]) -> None:
        """Register ``listener(new_generation)``, called after each swap.

        Listeners run outside the write lock (a slow listener must not
        stall mutations) but before the old generation finishes draining.
        The front-end uses this to invalidate its result cache by
        generation.
        """
        with self._write_lock:
            self._swap_listeners.append(listener)

    def swap(
        self,
        new_engine,
        prepare: Optional[Callable[[object], Optional[Folksonomy]]] = None,
        drain_timeout: Optional[float] = 30.0,
    ) -> SwapReport:
        """Atomically install ``new_engine`` as the next generation.

        ``prepare(new_engine)`` runs inside the write-lock region, after
        mutations are fenced off but before the pointer moves — the spot
        the coordinator replays the journal tail in, so the incoming
        engine reflects every batch the outgoing one ever applied.  Its
        return value (if not ``None``) replaces the handle's folksonomy.

        The incoming engine is stamped ``old epoch + 1``; engines whose
        epoch is read-only (the process pool derives it from its manifest)
        must already carry a strictly greater epoch.  After the pointer
        install the old generation is retired: new readers can no longer
        pin it, its in-flight readers finish undisturbed, and once the
        count drains the old engine's ``close`` (if any) is called.  A
        drain that outlasts ``drain_timeout`` leaks the old engine to the
        stuck readers instead of closing it under them.
        """
        swap_started = time.perf_counter()
        with self._write_lock:
            old = self._current
            new_folksonomy = None
            if prepare is not None:
                new_folksonomy = prepare(new_engine)
            try:
                new_engine.epoch = old.engine.epoch + 1
            except AttributeError:
                if new_engine.epoch <= old.engine.epoch:
                    raise ConfigurationError(
                        "cannot swap in an engine with a read-only epoch "
                        f"{new_engine.epoch} <= the current epoch "
                        f"{old.engine.epoch}; epochs must stay monotone"
                    ) from None
            fresh = _Generation(new_engine, old.number + 1)
            self._current = fresh
            with old.cond:
                old.retired = True
            if new_folksonomy is not None:
                self._folksonomy = new_folksonomy
            listeners = list(self._swap_listeners)
        swap_seconds = time.perf_counter() - swap_started

        for listener in listeners:
            listener(fresh.number)

        drain_started = time.perf_counter()
        drained = old.drain(drain_timeout)
        drain_seconds = time.perf_counter() - drain_started
        if drained:
            closer = getattr(old.engine, "close", None)
            if callable(closer):
                closer()
        return SwapReport(
            generation=fresh.number,
            epoch=new_engine.epoch,
            swap_seconds=swap_seconds,
            drain_seconds=drain_seconds,
            drained=drained,
        )

    def __repr__(self) -> str:
        current = self._current
        return (
            f"EngineHandle(generation={current.number}, "
            f"engine={type(current.engine).__name__}, "
            f"epoch={current.engine.epoch}, journal={len(self.journal)})"
        )


# ---------------------------------------------------------------------- #
# Background refit
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RefitResult:
    """Everything one completed refit cycle produced and measured."""

    generation: int
    epoch: int
    snapshot_epoch: int
    published_dir: Path
    refit_wall_seconds: float
    fit_seconds: float
    swap_seconds: float
    drain_seconds: float
    catchup_entries: int
    tail_entries: int

    def summary(self) -> str:
        return (
            f"refit -> generation {self.generation} (epoch {self.epoch}) in "
            f"{self.refit_wall_seconds:.2f}s "
            f"(fit {self.fit_seconds:.2f}s, swap {self.swap_seconds * 1e3:.1f}ms, "
            f"drain {self.drain_seconds * 1e3:.1f}ms); replayed "
            f"{self.catchup_entries}+{self.tail_entries} journal entries"
        )


def _refit_worker_main(snapshot_dir: str, out_dir: str, pipeline_kwargs: dict) -> None:
    """Background-process entry point: load snapshot, fit, save.

    Module-level (not a closure) so the spawn start method can import it;
    errors are written next to the output so the parent can surface the
    real traceback instead of a bare exit code.
    """
    # Deferred so a forked child re-resolves nothing at import time.
    from repro.core.pipeline import CubeLSIPipeline, OfflineIndex

    out = Path(out_dir)
    try:
        base = OfflineIndex.load(snapshot_dir)
        if base.folksonomy is None:
            raise ConfigurationError(
                f"snapshot {snapshot_dir} carries no folksonomy to refit on"
            )
        fitted = CubeLSIPipeline(**pipeline_kwargs).fit(base.folksonomy)
        fitted.save(out, include_folksonomy=True)
    except BaseException:
        out.mkdir(parents=True, exist_ok=True)
        (out / "refit_error.txt").write_text(
            traceback.format_exc(), encoding="utf-8"
        )
        raise SystemExit(1)


class BackgroundRefit:
    """A running refit cycle; ``join()`` for its :class:`RefitResult`."""

    def __init__(self, run: Callable[[], RefitResult], name: str) -> None:
        self._result: Optional[RefitResult] = None
        self._error: Optional[BaseException] = None

        def _target() -> None:
            try:
                self._result = run()
            except BaseException as error:  # noqa: BLE001 - re-raised in join
                self._error = error

        self._thread = threading.Thread(target=_target, name=name, daemon=True)
        self._thread.start()

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> RefitResult:
        """Wait for the cycle; raises what it raised, returns its result."""
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("background refit still running")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class RefitCoordinator:
    """Runs full Tucker refits against a live :class:`EngineHandle`.

    One cycle (:meth:`refit`, or :meth:`refit_in_background` for the
    non-blocking wrapper):

    1. **checkpoint** — under the handle's write lock, snapshot the
       current index (engine + folksonomy) into the store, epoch-stamped,
       and take a journal mark.  Readers keep flowing; only writers wait
       for the disk write.
    2. **fit** — a background *process* loads the snapshot and runs the
       full :class:`~repro.core.pipeline.CubeLSIPipeline` on it.  Serving
       is untouched: different process, trailing data.
    3. **catch up** — replay every journal entry since the mark onto the
       fresh engine (and fold it into the fresh folksonomy), outside any
       lock.
    4. **publish** — write the caught-up index into the store as the next
       generation (``make_current`` deferred until the swap lands).
    5. **swap** — :meth:`EngineHandle.swap` with a prepare step that
       replays the last-moment tail and truncates the journal through the
       published mark; then mark the generation current in the store and
       GC stale generations.

    ``engine_factory(index, published_dir)`` builds the serving engine
    for the new generation from the published artefact — e.g. a
    :class:`~repro.search.shardpool.ShardProcessPool` over a sharded,
    mmap-ready publish (blue/green process pools).  Factory-built engines
    are typically read-only; a non-empty journal tail at swap time is
    then refused rather than silently dropped, so factories fit
    query-only (or externally quiesced) serving.

    Swap latency, drain, fit and whole-cycle wall times are recorded into
    ``metrics`` (``lifecycle.*`` latency histograms plus counters and
    generation/journal gauges), Prometheus-exportable via
    :meth:`~repro.serve.metrics.MetricsRegistry.export_text`.
    """

    def __init__(
        self,
        handle: EngineHandle,
        store,
        pipeline_kwargs: Optional[Mapping[str, object]] = None,
        metrics=None,
        use_process: bool = True,
        start_method: Optional[str] = None,
        keep_generations: int = 2,
        drain_timeout: Optional[float] = 30.0,
        refit_timeout: Optional[float] = None,
        engine_factory: Optional[Callable[[object, Path], object]] = None,
        publish_kwargs: Optional[Mapping[str, object]] = None,
    ) -> None:
        if handle.folksonomy is None:
            raise ConfigurationError(
                "RefitCoordinator needs a folksonomy-tracking handle "
                "(EngineHandle(engine, folksonomy=...)); there is nothing "
                "to refit otherwise"
            )
        if keep_generations < 1:
            raise ConfigurationError(
                f"keep_generations must be >= 1, got {keep_generations}"
            )
        if start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if start_method not in available:
                raise ConfigurationError(
                    f"start_method {start_method!r} not available here "
                    f"(choose from {available})"
                )
        if metrics is None:
            # Deferred: repro.serve imports repro.search at module scope.
            from repro.serve.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.handle = handle
        self.store = store
        self.pipeline_kwargs = dict(pipeline_kwargs or {})
        self.metrics = metrics
        self.use_process = bool(use_process)
        self.start_method = start_method
        self.keep_generations = int(keep_generations)
        self.drain_timeout = drain_timeout
        self.refit_timeout = refit_timeout
        self.engine_factory = engine_factory
        # Extra store.publish options (num_shards / mmap_ready) so a pool
        # factory can demand the sharded memory-mappable layout.
        self.publish_kwargs = dict(publish_kwargs or {})
        self._refit_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # The cycle
    # ------------------------------------------------------------------ #
    def refit(self) -> RefitResult:
        """Run one full refit cycle; blocks until the swap completes.

        Cycles are serialized on the coordinator (a second caller waits);
        serving is never paused at any point.
        """
        with self._refit_lock:
            return self._refit_locked()

    def refit_in_background(self) -> BackgroundRefit:
        """Start one cycle on a coordinator thread; join the result later."""
        return BackgroundRefit(self.refit, name="refit-coordinator")

    def _refit_locked(self) -> RefitResult:
        cycle_started = time.perf_counter()
        mark, snapshot_dir, snapshot_epoch = self._checkpoint()

        fit_started = time.perf_counter()
        fresh_index = self._fit(snapshot_dir)
        fit_seconds = time.perf_counter() - fit_started

        # Catch up: everything serving applied while the fit ran, replayed
        # through the *new* concept model (fold-in; PR 2's parity invariant
        # makes this equal a scratch rebuild of the same corpus).
        catch = self.handle.journal.mark()
        catchup = [
            entry
            for entry in self.handle.journal.entries_since(mark)
            if entry.seq <= catch
        ]
        replay_entries(fresh_index.engine, catchup)
        folksonomy = fresh_index.folksonomy
        for entry in catchup:
            folksonomy = fold_entry_into_folksonomy(folksonomy, entry)
        fresh_index.folksonomy = folksonomy

        # Publish the caught-up index as the next generation.  The epoch is
        # pre-stamped to the swap target so a read-only engine built *from*
        # the artefact (a process pool reading the manifest) already
        # carries a monotone epoch.
        generation = self.handle.generation + 1
        fresh_index.engine.epoch = self.handle.epoch + 1
        published_dir = self.store.publish(
            fresh_index,
            generation=generation,
            make_current=False,
            **self.publish_kwargs,
        )

        if self.engine_factory is not None:
            serving_engine = self.engine_factory(fresh_index, published_dir)
        else:
            serving_engine = fresh_index.engine

        tail_count = 0

        def prepare(new_engine) -> Optional[Folksonomy]:
            nonlocal tail_count, folksonomy
            tail = self.handle.journal.entries_since(catch)
            if tail and not hasattr(new_engine, "apply_mutations"):
                raise ConfigurationError(
                    f"{len(tail)} journal entries arrived after publish but "
                    f"the factory-built {type(new_engine).__name__} is "
                    "read-only; quiesce writers before refitting"
                )
            replay_entries(new_engine, tail)
            for entry in tail:
                folksonomy = fold_entry_into_folksonomy(folksonomy, entry)
            tail_count = len(tail)
            self.handle.journal.truncate_through(catch)
            return folksonomy

        swap = self.handle.swap(
            serving_engine, prepare=prepare, drain_timeout=self.drain_timeout
        )
        if swap.generation != generation:
            raise ConfigurationError(
                f"generation raced during refit: published {generation} but "
                f"swapped in {swap.generation}; refits must be the only "
                "swapper on a handle"
            )
        self.store.set_current(generation)
        self.store.gc_generations(keep_last=self.keep_generations)

        wall = time.perf_counter() - cycle_started
        self.metrics.observe_latency("lifecycle.refit", wall)
        self.metrics.observe_latency("lifecycle.fit", fit_seconds)
        self.metrics.observe_latency("lifecycle.swap", swap.swap_seconds)
        self.metrics.observe_latency("lifecycle.drain", swap.drain_seconds)
        self.metrics.increment("refits_completed")
        if not swap.drained:
            self.metrics.increment("drain_timeouts")
        self.metrics.set_gauge("generation", generation)
        self.metrics.set_gauge("journal_entries", len(self.handle.journal))
        return RefitResult(
            generation=generation,
            epoch=swap.epoch,
            snapshot_epoch=snapshot_epoch,
            published_dir=Path(published_dir),
            refit_wall_seconds=wall,
            fit_seconds=fit_seconds,
            swap_seconds=swap.swap_seconds,
            drain_seconds=swap.drain_seconds,
            catchup_entries=len(catchup),
            tail_entries=tail_count,
        )

    # ------------------------------------------------------------------ #
    # Steps
    # ------------------------------------------------------------------ #
    def _checkpoint(self) -> Tuple[int, Path, int]:
        """Epoch-stamped trailing snapshot + the journal mark it captures.

        Runs under the handle's write lock so the snapshot and the mark
        describe the same instant: every journal entry after the mark is
        exactly the set of batches missing from the snapshot.
        """
        from repro.core.pipeline import OfflineIndex

        with self.handle._write_lock:
            engine = self.handle.engine
            mark = self.handle.journal.mark()
            if getattr(engine, "concept_model", None) is None:
                # A factory-built read-only engine (a process pool) cannot
                # be re-serialized, but it also cannot accept mutations —
                # so the store's current published generation still equals
                # the serving state exactly, and is the checkpoint.
                try:
                    index = self.store.load_current()
                except NotFittedError as error:
                    raise ConfigurationError(
                        "the serving engine carries no concept model and the "
                        "store has no current generation to checkpoint from"
                    ) from error
                index.engine.epoch = engine.epoch
            else:
                index = OfflineIndex(
                    concept_model=engine.concept_model,
                    engine=engine,
                    timings={},
                    folksonomy=self.handle.folksonomy,
                )
            snapshot_dir = self.store.save(index)
            return mark, snapshot_dir, engine.epoch

    def _fit(self, snapshot_dir: Path):
        """The full Tucker-ALS refit on the trailing snapshot."""
        from repro.core.pipeline import CubeLSIPipeline, OfflineIndex

        if not self.use_process:
            base = OfflineIndex.load(snapshot_dir)
            if base.folksonomy is None:
                raise ConfigurationError(
                    f"snapshot {snapshot_dir} carries no folksonomy to refit on"
                )
            return CubeLSIPipeline(**self.pipeline_kwargs).fit(base.folksonomy)

        staging = Path(self.store.root) / ".refit-staging"
        if staging.exists():
            shutil.rmtree(staging)
        method = self.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else available[0]
        context = multiprocessing.get_context(method)
        worker = context.Process(
            target=_refit_worker_main,
            args=(str(snapshot_dir), str(staging), dict(self.pipeline_kwargs)),
            name="refit-worker",
            daemon=True,
        )
        worker.start()
        worker.join(self.refit_timeout)
        if worker.is_alive():
            worker.terminate()
            worker.join()
            raise ConfigurationError(
                f"background refit exceeded {self.refit_timeout}s and was killed"
            )
        if worker.exitcode != 0:
            detail = ""
            error_file = staging / "refit_error.txt"
            if error_file.exists():
                detail = error_file.read_text(encoding="utf-8").strip()
                detail = ": " + detail.splitlines()[-1] if detail else ""
            raise ConfigurationError(
                f"background refit process exited with code "
                f"{worker.exitcode}{detail}"
            )
        try:
            index = OfflineIndex.load(staging)
        except (NotFittedError, OSError) as error:
            raise ConfigurationError(
                f"background refit left no loadable index under {staging}: "
                f"{error}"
            ) from error
        shutil.rmtree(staging, ignore_errors=True)
        return index
