"""Reader/writer synchronisation for the online serving engines.

The serving engines follow a read/write discipline: queries are *reads*
(many may score concurrently — the underlying BLAS/scipy matmuls release
the GIL), while mutations and the statistics refresh they trigger are
*writes* (they swap CSR arrays, vocabularies and norms in place and must
never be observed half-done).  :class:`ReadWriteLock` is the primitive
behind that discipline: any number of readers xor one writer.

The lock is write-preferring — once a writer is waiting, new readers queue
behind it — so a sustained query stream cannot starve a mutation batch.
It is deliberately *not* reentrant: the engines never nest a guarded
operation inside another guarded operation, and keeping the lock dumb
makes the no-deadlock argument auditable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.search.matrix_space import validate_top_k


class ReadWriteLock:
    """Many readers xor one writer, writers preferred.

    Use through the :meth:`read` / :meth:`write` context managers::

        lock = ReadWriteLock()
        with lock.read():
            ...  # shared with other readers
        with lock.write():
            ...  # exclusive

    Not reentrant: acquiring the lock (in either mode) while already
    holding it in the same thread deadlocks.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            # Queue behind waiting writers so a query storm cannot starve
            # a mutation batch indefinitely.
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read() without a matching acquire")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write() without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the lock in shared (reader) mode for the ``with`` body."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the lock in exclusive (writer) mode for the ``with`` body."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"ReadWriteLock(readers={self._active_readers}, "
            f"writer={self._writer_active}, "
            f"writers_waiting={self._writers_waiting})"
        )


class FreshReadMixin:
    """The engines' shared read-side discipline, in one place.

    Host classes provide ``_rw`` (a :class:`ReadWriteLock`),
    ``_needs_refresh()``, a write-side ``refresh()``, an ``epoch`` counter
    and ``_rank_batch_in_lock(queries, top_k)``; the mixin derives the
    retry loop and the epoch-consistent snapshot read from them, so the
    monolithic and sharded engines cannot drift apart on the subtle part.
    """

    @contextmanager
    def _read_fresh(self) -> Iterator[None]:
        """Shared (reader) access to a guaranteed-fresh index.

        If mutations are pending, the refresh is driven through the write
        path first; the loop re-checks after acquiring read access because
        another writer may have mutated in between.  Within the ``with``
        body no mutation or refresh can run, so the epoch and every
        backend array are one consistent snapshot.
        """
        while True:
            with self._rw.read():
                if not self._needs_refresh():
                    yield
                    return
            self.refresh()

    def snapshot_rank_batch(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int] = None,
    ) -> Tuple[int, List[list]]:
        """Epoch-consistent batched ranking: ``(epoch, results)``.

        The epoch is read inside the same reader-held region that scores
        the batch, so the returned results are guaranteed to reflect
        exactly that index state — no mutation can land in between.  This
        is the read the workload replay subsystem uses to audit epoch
        monotonicity under concurrent traffic.
        """
        validate_top_k(top_k)
        queries = [list(tags) for tags in queries]
        with self._read_fresh():
            if not queries:
                return self.epoch, []
            return self.epoch, self._rank_batch_in_lock(queries, top_k)
