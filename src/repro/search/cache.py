"""An LRU result cache for the online query path.

Tag queries are heavily repeated in folksonomy workloads (head queries,
dashboard refreshes, pagination), and a ranked result list is immutable
between index mutations.  :class:`QueryCache` exploits both facts: results
are cached under the *canonicalized tag multiset* — ``["rock", "jazz"]``
and ``["jazz", "rock"]`` share an entry — together with ``top_k`` and the
engine's mutation *epoch*.  Because the epoch is part of the key, a stale
entry can never be served after a mutation; the owning engine additionally
calls :meth:`clear` on every mutation batch so dead entries do not linger
until LRU pressure evicts them.

The cache is bounded two ways: by entry count (``max_entries``) and,
optionally, by an approximate byte budget (``max_bytes``) sized from the
result lists themselves — an entry caching a 10-result page and one
caching a 10k-result unbounded scan are charged what they actually hold,
so a handful of huge results cannot silently pin the memory of a thousand
small ones.  Both budgets evict from the LRU end.

Hot swaps add a third invalidation axis: a new *generation* is a new
concept model, whose scores share nothing with the old one's.
:meth:`invalidate_generation` drops everything when the serving
generation changes (epoch keys alone would be unsafe in the other
direction — the swap protocol restarts the new generation at ``old epoch
+ 1``, a key the old generation never served, but the explicit flush
keeps the whole old generation's memory from lingering until LRU
pressure finds it).

The cache is thread-safe: one lock guards the ordered map *and* the
hit/miss/eviction counters, so a sharded engine can be queried from many
serving threads and :meth:`stats` always returns a consistent snapshot
(hits + misses equals the number of lookups even mid-storm).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.search.vsm import RankedResult
from repro.utils.errors import ConfigurationError

#: Default number of cached result lists.
DEFAULT_MAX_ENTRIES = 1024

#: Approximate bytes charged per cached result beyond its resource-id text:
#: the NamedTuple object, its float score and the tuple slot pointing at it.
RESULT_OVERHEAD_BYTES = 120

#: Approximate fixed bytes charged per entry: the key tuple and the
#: OrderedDict slot.  Both overhead constants are deliberately coarse — the
#: budget is a memory-discipline knob, not an accountant.
ENTRY_OVERHEAD_BYTES = 256


def approximate_entry_bytes(results: Sequence[RankedResult]) -> int:
    """The bytes one cached result list is charged against ``max_bytes``.

    Tolerates non-:class:`~repro.search.vsm.RankedResult` payloads (model
    checkers stuff opaque sentinels into the cache) by charging them the
    flat per-result overhead only.
    """
    total = ENTRY_OVERHEAD_BYTES
    for result in results:
        resource = getattr(result, "resource", "")
        total += RESULT_OVERHEAD_BYTES + (
            len(resource) if isinstance(resource, str) else 0
        )
    return total


class QueryCache:
    """A bounded LRU map from canonical query keys to ranked result lists."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError(
                f"max_bytes must be >= 1 when given, got {max_bytes}"
            )
        self._max_entries = int(max_entries)
        self._max_bytes = None if max_bytes is None else int(max_bytes)
        self._entries: "OrderedDict[Hashable, Tuple[Tuple[RankedResult, ...], int]]" = (
            OrderedDict()
        )
        self._current_bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._generation: Optional[int] = None
        self._generation_invalidations = 0

    @staticmethod
    def canonical_key(
        query_tags: Sequence[str], top_k: Optional[int], epoch: int
    ) -> Tuple[Tuple[str, ...], Optional[int], int]:
        """The cache key: sorted tag multiset + result size + index epoch.

        Sorting canonicalizes tag *order* while preserving multiplicity
        (``["a", "a"]`` and ``["a"]`` weigh tags differently and must not
        collide); the epoch ties the entry to one immutable index state.
        """
        return (tuple(sorted(query_tags)), top_k, int(epoch))

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[List[RankedResult]]:
        """The cached result list for ``key``, or ``None`` on a miss.

        A hit returns a fresh list (entries are immutable named tuples), so
        callers may mutate the returned list without corrupting the cache.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return list(entry[0])

    def put(self, key: Hashable, results: Sequence[RankedResult]) -> None:
        """Store ``results`` under ``key``, evicting LRU entries while either
        the entry count or the byte budget is exceeded.

        An entry larger than the whole byte budget is evicted immediately
        after insertion (the loop drains the cache down to it, then drops
        it too) — the budget is honoured rather than the one oversized
        result list pinning everything.
        """
        nbytes = approximate_entry_bytes(results)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._current_bytes -= previous[1]
            self._entries[key] = (tuple(results), nbytes)
            self._current_bytes += nbytes
            while len(self._entries) > self._max_entries or (
                self._max_bytes is not None
                and self._current_bytes > self._max_bytes
                and self._entries
            ):
                _, (_, dropped_bytes) = self._entries.popitem(last=False)
                self._current_bytes -= dropped_bytes
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (called by the owning engine on mutation)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    def invalidate_generation(self, generation: int) -> bool:
        """Flush the cache when the serving generation changes.

        Idempotent per generation: the swap listener may fire once per
        frontend while several frontends share one cache, and only the
        first observer of a new generation pays the flush.  Returns
        whether a flush happened.
        """
        generation = int(generation)
        with self._lock:
            if self._generation == generation:
                return False
            self._generation = generation
            self._generation_invalidations += 1
            self._entries.clear()
            self._current_bytes = 0
            return True

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def max_bytes(self) -> Optional[int]:
        return self._max_bytes

    @property
    def current_bytes(self) -> int:
        """Approximate bytes held right now (see the overhead constants)."""
        with self._lock:
            return self._current_bytes

    @property
    def generation(self) -> Optional[int]:
        """The serving generation the cache last flushed for (``None`` ever)."""
        with self._lock:
            return self._generation

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, object]:
        """A plain-dict snapshot for reports and logs.

        Every field is read under one lock acquisition, so the snapshot is
        internally consistent even while other threads keep mutating the
        cache (``hits + misses`` always equals the lookups performed up to
        one instant).
        """
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "current_bytes": self._current_bytes,
                "max_bytes": self._max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / lookups if lookups else 0.0,
                "generation": self._generation,
                "generation_invalidations": self._generation_invalidations,
            }
