"""An LRU result cache for the online query path.

Tag queries are heavily repeated in folksonomy workloads (head queries,
dashboard refreshes, pagination), and a ranked result list is immutable
between index mutations.  :class:`QueryCache` exploits both facts: results
are cached under the *canonicalized tag multiset* — ``["rock", "jazz"]``
and ``["jazz", "rock"]`` share an entry — together with ``top_k`` and the
engine's mutation *epoch*.  Because the epoch is part of the key, a stale
entry can never be served after a mutation; the owning engine additionally
calls :meth:`clear` on every mutation batch so dead entries do not linger
until LRU pressure evicts them.

The cache is thread-safe: one lock guards the ordered map *and* the
hit/miss/eviction counters, so a sharded engine can be queried from many
serving threads and :meth:`stats` always returns a consistent snapshot
(hits + misses equals the number of lookups even mid-storm).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.search.vsm import RankedResult
from repro.utils.errors import ConfigurationError

#: Default number of cached result lists.
DEFAULT_MAX_ENTRIES = 1024


class QueryCache:
    """A bounded LRU map from canonical query keys to ranked result lists."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Tuple[RankedResult, ...]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def canonical_key(
        query_tags: Sequence[str], top_k: Optional[int], epoch: int
    ) -> Tuple[Tuple[str, ...], Optional[int], int]:
        """The cache key: sorted tag multiset + result size + index epoch.

        Sorting canonicalizes tag *order* while preserving multiplicity
        (``["a", "a"]`` and ``["a"]`` weigh tags differently and must not
        collide); the epoch ties the entry to one immutable index state.
        """
        return (tuple(sorted(query_tags)), top_k, int(epoch))

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[List[RankedResult]]:
        """The cached result list for ``key``, or ``None`` on a miss.

        A hit returns a fresh list (entries are immutable named tuples), so
        callers may mutate the returned list without corrupting the cache.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return list(entry)

    def put(self, key: Hashable, results: Sequence[RankedResult]) -> None:
        """Store ``results`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = tuple(results)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (called by the owning engine on mutation)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, object]:
        """A plain-dict snapshot for reports and logs.

        Every field is read under one lock acquisition, so the snapshot is
        internally consistent even while other threads keep mutating the
        cache (``hits + misses`` always equals the lookups performed up to
        one instant).
        """
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }
