"""A compiled, vectorized view of the concept vector space.

:class:`MatrixConceptSpace` freezes a fitted
:class:`~repro.search.vsm.ConceptVectorSpace` into CSR arrays — ``indptr`` /
``indices`` / ``data`` over a fixed concept vocabulary plus precomputed
document norms — so that scoring becomes sparse matrix algebra instead of
per-posting Python loops.  A whole batch of queries is ranked with one
sparse-sparse matmul followed by :func:`numpy.argpartition` top-k selection,
which is what makes the paper's "online querying is just cheap dot products"
claim (Table VI) hold at scale.

The compiled space is also the unit of persistence: :meth:`save` writes the
arrays (a compressed ``.npz`` archive, or raw per-array ``.npy`` files when
``mmap_ready=True`` so :meth:`load` can memory-map them) and the
vocabulary/metadata to JSON, so that offline indexing and online serving —
including the process-per-shard pool's one-worker-per-shard loads — can
run in separate processes.

Scores, rankings and tie-breaking (descending score, then ascending resource
id) are bit-for-bit compatible with the reference dict-loop implementation in
:mod:`repro.search.vsm`; ``tests/test_matrix_space.py`` holds the parity
suite.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.search.vsm import ConceptVectorSpace, RankedResult
from repro.utils.errors import ConfigurationError, NotFittedError

#: File names used inside a save directory.
ARRAYS_FILENAME = "matrix_space.npz"
METADATA_FILENAME = "matrix_space.json"

#: Array-storage layouts a save directory may use.  ``npz`` is one
#: compressed archive (smallest on disk, must be decompressed into RAM on
#: load); ``npy`` is one raw ``.npy`` file per array, which
#: :meth:`MatrixConceptSpace.load` can memory-map (``mmap=True``) so a
#: serving process opens a multi-GB shard in milliseconds and only pages
#: in the rows it actually scores.
STORAGE_NPZ = "npz"
STORAGE_NPY = "npy"

#: Names of the arrays persisted by :meth:`MatrixConceptSpace.save`
#: (``counts_*`` only when the space is mutable).
_ARRAY_NAMES = (
    "indptr",
    "indices",
    "data",
    "doc_norms",
    "idf",
    "counts_indptr",
    "counts_indices",
    "counts_data",
)


def _npy_path(directory: Path, name: str) -> Path:
    """Per-array file of the ``npy`` storage layout."""
    return directory / f"matrix_space.{name}.npy"


def saved_storage(directory: Union[str, Path]) -> str:
    """The array-storage layout of a save directory (``npz`` or ``npy``).

    Lets a coordinator decide *before* spawning workers whether a shard
    layout supports memory-mapping (pre-``npy`` saves do not).
    """
    path = Path(directory)
    metadata_path = path / METADATA_FILENAME
    if not metadata_path.exists():
        raise NotFittedError(f"no saved matrix space under {path}")
    metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
    return str(metadata.get("storage", STORAGE_NPZ))

#: Bumped whenever the on-disk layout changes incompatibly.  Version 2 added
#: the raw concept-count arrays that make loaded spaces mutable (fold-in).
FORMAT_VERSION = 2

#: Largest ``queries x documents`` cell count (~64 MB of float64 scores) for
#: which batched ranking densifies the score matrix to rank all rows with a
#: single argpartition/lexsort; bigger workloads stay row-by-row sparse.
DENSE_BATCH_CELLS = 8_000_000


def validate_top_k(top_k: Optional[int]) -> None:
    """Reject a non-positive ``top_k`` before any scoring work happens."""
    if top_k is not None and top_k < 1:
        raise ConfigurationError(f"top_k must be >= 1 when given, got {top_k}")


def boundary_tie_candidates(scores: np.ndarray, top_k: Optional[int]) -> np.ndarray:
    """Indices of every entry that can appear in an exact top-k selection.

    Selecting the ``top_k`` best scores with :func:`numpy.argpartition` is
    ambiguous when scores tie exactly at rank k: the partition picks an
    arbitrary subset of the boundary tie group.  This helper widens the
    selection to the *whole* tie group — the k best scores plus every entry
    whose score equals the boundary — so that a deterministic tie-break
    (ascending position / resource id) can then pick the exact members.

    It is the single source of truth for boundary-tie handling: the flat
    selector (:func:`select_top_k`) and the sharded fan-out merge
    (:func:`repro.search.sharding.merge_topk`) both resolve rank-k ties
    through it, which is what keeps a sharded top-k identical to the
    monolithic one when scores tie exactly at the cut.
    """
    if top_k is None or top_k >= scores.size:
        return np.arange(scores.size)
    head = np.argpartition(-scores, top_k - 1)[:top_k]
    boundary = scores[head].min()
    return np.flatnonzero(scores >= boundary)


def idf_from_document_frequency(
    document_frequency: np.ndarray, num_documents: int, smooth_idf: bool
) -> np.ndarray:
    """Vectorized Eq. 1 idf over a document-frequency vector.

    Shared by the space-local refresh and the sharded coordinator, which
    feeds *global* (cross-shard) document frequencies through the exact
    same formula so every shard weighs terms identically.
    """
    if smooth_idf:
        return np.log((num_documents + 1.0) / (document_frequency + 1.0)) + 1.0
    return np.log(num_documents / document_frequency.astype(np.float64))


def select_top_k(
    positions: np.ndarray, scores: np.ndarray, top_k: Optional[int]
) -> np.ndarray:
    """Exact top-k selection with deterministic tie-breaking.

    Given candidate row ``positions`` (whose order encodes the tie-break:
    lower position wins) and their ``scores``, return the indices into
    ``positions``/``scores`` of the top ``top_k`` entries sorted by
    descending score, ties broken by ascending position.  Entries with
    non-positive scores are dropped, mirroring the dict-loop path which
    never materialises zero-similarity documents.

    Uses :func:`numpy.argpartition` to avoid a full sort when ``top_k`` is
    small, but widens the partition through
    :func:`boundary_tie_candidates` to the whole boundary tie group so the
    selection matches an exhaustive ``sorted(..., key=(-score, position))``.
    """
    if scores.size == 0:
        return np.empty(0, dtype=np.intp)
    if bool((scores > 0.0).all()):
        # Fast path: structurally, sparse dot products of non-negative
        # weight matrices are strictly positive wherever they are stored,
        # so the positivity filter is usually a no-op.
        keep = None
        kept_scores = scores
        kept_positions = positions
    else:
        keep = np.flatnonzero(scores > 0.0)
        if keep.size == 0:
            return keep
        kept_scores = scores[keep]
        kept_positions = positions[keep]
    candidate = boundary_tie_candidates(kept_scores, top_k)
    order = np.lexsort((kept_positions[candidate], -kept_scores[candidate]))
    selected = candidate[order]
    if top_k is not None:
        selected = selected[:top_k]
    return selected if keep is None else keep[selected]


class MatrixConceptSpace:
    """CSR-compiled tf-idf concept space with batched top-k ranking.

    Instances are produced by :meth:`compile` (from a fitted dict-loop
    space) or :meth:`load` (from a directory written by :meth:`save`); the
    constructor takes the already-validated internal arrays.
    """

    def __init__(
        self,
        doc_ids: Sequence[str],
        terms: Sequence[Hashable],
        matrix: sp.csr_matrix,
        doc_norms: np.ndarray,
        idf: np.ndarray,
        smooth_idf: bool,
        num_resources: int,
        counts: Optional[sp.csr_matrix] = None,
        external_stats: bool = False,
    ) -> None:
        self._doc_ids: Tuple[str, ...] = tuple(doc_ids)
        self._doc_index: Dict[str, int] = {
            doc_id: row for row, doc_id in enumerate(self._doc_ids)
        }
        self._terms: Tuple[Hashable, ...] = tuple(terms)
        self._term_index: Dict[Hashable, int] = {
            term: column for column, term in enumerate(self._terms)
        }
        self._matrix = matrix
        self._dense_matrix: Optional[np.ndarray] = None
        self._doc_norms = np.asarray(doc_norms, dtype=np.float64)
        self._idf = np.asarray(idf, dtype=np.float64)
        self._smooth_idf = bool(smooth_idf)
        self._num_resources = int(num_resources)
        if matrix.shape != (len(self._doc_ids), len(self._terms)):
            raise ConfigurationError(
                f"matrix shape {matrix.shape} does not match "
                f"{len(self._doc_ids)} documents x {len(self._terms)} terms"
            )
        # Raw concept counts (same layout as the weight matrix).  They are
        # what makes the space *mutable*: tf-idf weights can always be
        # re-derived after documents fold in or out, including entries whose
        # weight was zero (idf 0) at compile time and resurrects later.
        self._counts = counts
        if counts is not None and counts.shape != matrix.shape:
            raise ConfigurationError(
                f"counts shape {counts.shape} does not match weight matrix "
                f"shape {matrix.shape}"
            )
        self._pending_upsert: Dict[str, Dict[Hashable, float]] = {}
        self._pending_remove: set = set()
        self._weights_stale = False
        # Shards of a sharded index carry *global* statistics (idf over the
        # whole corpus, corpus-wide num_resources) that only their
        # coordinator may recompute; a shard-local refresh would silently
        # reweigh the shard against its own rows.
        self._external_stats = bool(external_stats)
        self._refresh_lock = threading.Lock()
        self._set_unknown_idf()

    def _set_unknown_idf(self) -> None:
        # idf of a term never seen in the corpus (affects the query norm
        # under smoothing, exactly as in the dict-loop weighting).
        if self._smooth_idf:
            self._unknown_idf = math.log(float(self._num_resources + 1)) + 1.0
        else:
            self._unknown_idf = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def compile(cls, space: ConceptVectorSpace) -> "MatrixConceptSpace":
        """Freeze a fitted dict-loop space into CSR arrays.

        Documents are laid out in ascending resource-id order so that row
        position doubles as the ranking tie-break.
        """
        terms = space.terms()
        term_index = {term: column for column, term in enumerate(terms)}
        doc_ids = sorted(space.documents())
        raw_bags = space.resource_bags()

        indptr = np.zeros(len(doc_ids) + 1, dtype=np.int64)
        columns: List[int] = []
        values: List[float] = []
        norms = np.zeros(len(doc_ids), dtype=np.float64)
        for row, doc_id in enumerate(doc_ids):
            vector = space.resource_vector(doc_id)
            entries = sorted(
                (term_index[term], weight) for term, weight in vector.items()
            )
            indptr[row + 1] = indptr[row] + len(entries)
            columns.extend(column for column, _ in entries)
            values.extend(weight for _, weight in entries)
            norms[row] = math.sqrt(sum(weight * weight for _, weight in entries))

        matrix = sp.csr_matrix(
            (
                np.asarray(values, dtype=np.float64),
                np.asarray(columns, dtype=np.int64),
                indptr,
            ),
            shape=(len(doc_ids), len(terms)),
        )
        return cls(
            doc_ids=doc_ids,
            terms=terms,
            matrix=matrix,
            doc_norms=norms,
            idf=np.array([space.idf(term) for term in terms], dtype=np.float64),
            smooth_idf=space.smooth_idf,
            num_resources=space.num_resources,
            counts=_counts_matrix(doc_ids, term_index, raw_bags),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_resources(self) -> int:
        self.refresh()
        return self._num_resources

    @property
    def num_documents(self) -> int:
        self.refresh()
        return len(self._doc_ids)

    @property
    def vocabulary_size(self) -> int:
        self.refresh()
        return len(self._terms)

    @property
    def smooth_idf(self) -> bool:
        return self._smooth_idf

    @property
    def doc_ids(self) -> Tuple[str, ...]:
        self.refresh()
        return self._doc_ids

    @property
    def terms(self) -> Tuple[Hashable, ...]:
        self.refresh()
        return self._terms

    @property
    def nnz(self) -> int:
        """Stored weights — the memory figure Table VII cares about."""
        self.refresh()
        return int(self._matrix.nnz)

    def idf(self, term: Hashable) -> float:
        self.refresh()
        column = self._term_index.get(term)
        return float(self._idf[column]) if column is not None else 0.0

    def document_norm(self, doc_id: str) -> float:
        self.refresh()
        row = self._doc_index.get(doc_id)
        return float(self._doc_norms[row]) if row is not None else 0.0

    # ------------------------------------------------------------------ #
    # Incremental updates (fold-in without recompiling from a dict space)
    # ------------------------------------------------------------------ #
    @property
    def is_mutable(self) -> bool:
        """Whether the space carries the raw counts that allow mutation."""
        return self._counts is not None

    @property
    def is_stale(self) -> bool:
        """Whether mutations are pending the lazy idf/norm recompute."""
        return bool(
            self._pending_upsert or self._pending_remove or self._weights_stale
        )

    @property
    def has_external_stats(self) -> bool:
        """Whether idf/num_resources are owned by a sharding coordinator."""
        return self._external_stats

    @property
    def pending_mutations(self) -> int:
        """Number of documents awaiting the next refresh."""
        return len(self._pending_upsert) + len(self._pending_remove)

    @property
    def pending_num_documents(self) -> int:
        """Document count once pending mutations land, *without* refreshing."""
        appended = sum(
            1 for doc_id in self._pending_upsert if doc_id not in self._doc_index
        )
        return len(self._doc_ids) - len(self._pending_remove) + appended

    def _require_mutable(self) -> None:
        if self._counts is None:
            raise ConfigurationError(
                "this space carries no raw concept counts and cannot be "
                "mutated; recompile it from a ConceptVectorSpace or load a "
                "format >= 2 save"
            )

    def has_document(self, doc_id: str) -> bool:
        """Whether ``doc_id`` is indexed (pending mutations included)."""
        if doc_id in self._pending_upsert:
            return True
        return doc_id in self._doc_index and doc_id not in self._pending_remove

    def add_documents(
        self, bags: Mapping[str, Mapping[Hashable, float]]
    ) -> None:
        """Append new documents; idf, weights and norms refresh lazily.

        The rows are buffered and folded into the CSR arrays on the next
        read (query, introspection or save), so a burst of additions pays
        for one vectorized recompute instead of one per call.
        """
        self._require_mutable()
        for doc_id in bags:
            if self.has_document(doc_id):
                raise ConfigurationError(
                    f"document {doc_id!r} is already indexed; use update_document"
                )
        for doc_id, bag in bags.items():
            self._pending_remove.discard(doc_id)
            self._pending_upsert[doc_id] = {
                term: float(c) for term, c in bag.items() if c > 0
            }

    def remove_documents(
        self, doc_ids: Sequence[str], allow_empty: bool = False
    ) -> None:
        """Drop documents (lazily applied, like :meth:`add_documents`).

        ``allow_empty=True`` lets the space drain to zero rows — a sharding
        coordinator needs that, because emptying one shard is legal as long
        as the *corpus* (which the coordinator guards) stays non-empty.
        """
        self._require_mutable()
        doc_ids = list(doc_ids)
        for doc_id in doc_ids:
            if not self.has_document(doc_id):
                raise ConfigurationError(f"document {doc_id!r} is not indexed")
        if not allow_empty and self.pending_num_documents - len(set(doc_ids)) < 1:
            raise ConfigurationError(
                "cannot remove every document; rebuild the space instead"
            )
        for doc_id in doc_ids:
            self._pending_upsert.pop(doc_id, None)
            if doc_id in self._doc_index:
                self._pending_remove.add(doc_id)

    def update_document(
        self, doc_id: str, bag: Mapping[Hashable, float]
    ) -> None:
        """Replace one document's raw counts (lazily applied)."""
        self._require_mutable()
        if not self.has_document(doc_id):
            raise ConfigurationError(f"document {doc_id!r} is not indexed")
        self._pending_upsert[doc_id] = {
            term: float(c) for term, c in bag.items() if c > 0
        }

    def refresh(self) -> bool:
        """Fold pending mutations into the CSR arrays; True if work was done.

        Appends/drops count rows, re-sorts documents into ascending-id order
        (the ranking tie-break), prunes vocabulary columns whose document
        frequency dropped to zero, and re-derives idf, tf-idf weights and
        document norms in one vectorized pass over the counts — exactly the
        arrays a from-scratch compile over the mutated corpus would produce.

        Spaces with :attr:`has_external_stats` (shards of a sharded index)
        refuse a local refresh while stale: their idf and ``num_resources``
        are corpus-wide figures that only the owning coordinator can
        recompute (via the ``fold_pending_counts`` → ``apply_statistics``
        protocol below).

        Mutations and the refresh they trigger are *writer-side* operations:
        concurrent refreshes are serialised by a lock, but concurrent query
        reads racing a refresh are not — a serving process should apply
        mutations and call :meth:`refresh` from one writer, after which
        concurrent reads of the (non-stale) space are safe.
        """
        if not self.is_stale:
            return False
        if self._external_stats:
            raise ConfigurationError(
                "this space is a shard carrying coordinated corpus-wide "
                "statistics; refresh it through the owning ShardedSearchEngine"
            )
        with self._refresh_lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> bool:
        if not self.is_stale:  # another thread refreshed while we waited
            return False
        assert self._counts is not None
        self.fold_pending_counts()
        document_frequency = self.column_document_frequency()
        alive = document_frequency > 0
        if not bool(alive.all()):
            self.drop_columns(alive)
            document_frequency = document_frequency[alive]
        num_docs = len(self._doc_ids)
        self.apply_statistics(
            idf_from_document_frequency(
                document_frequency, num_docs, self._smooth_idf
            ),
            num_docs,
        )
        return True

    # ------------------------------------------------------------------ #
    # Coordinator protocol (sharded refresh)
    #
    # A sharded index holds N of these spaces, each over a disjoint row
    # subset but a *shared, column-aligned* vocabulary and shared global
    # statistics.  After mutations, the owning ShardedSearchEngine drives
    # the refresh across all shards:
    #
    #   1. union every shard's ``pending_new_terms()``,
    #   2. ``fold_pending_counts(union)`` on each shard (vocabularies stay
    #      aligned because all get the same extension),
    #   3. sum ``column_document_frequency()`` across shards,
    #   4. ``drop_columns`` of globally dead terms on each shard,
    #   5. ``apply_statistics(global_idf, global_num_docs)`` on each shard.
    #
    # These steps are writer-side and unlocked — the local refresh calls
    # them under its own lock, the coordinator under the engine's.
    # ------------------------------------------------------------------ #
    def pending_new_terms(self) -> List[Hashable]:
        """Terms of pending bags missing from the vocabulary (stable order)."""
        seen: Dict[Hashable, None] = {}
        for bag in self._pending_upsert.values():
            for term in bag:
                if term not in self._term_index and term not in seen:
                    seen[term] = None
        return list(seen)

    def fold_pending_counts(
        self, extra_terms: Sequence[Hashable] = ()
    ) -> Tuple[Hashable, ...]:
        """Fold pending mutations into the count rows; weights stay stale.

        Extends the vocabulary with ``extra_terms`` (plus any new terms of
        this space's own pending bags), appends/drops count rows and
        re-sorts documents into ascending-id order.  Returns the resulting
        vocabulary so a coordinator can assert cross-shard alignment.
        tf-idf weights, norms and idf are *not* recomputed — callers must
        follow up with :meth:`apply_statistics` (the local refresh does).
        """
        self._require_mutable()
        assert self._counts is not None
        terms: List[Hashable] = list(self._terms)
        term_index: Dict[Hashable, int] = dict(self._term_index)
        for term in list(extra_terms) + self.pending_new_terms():
            if term not in term_index:
                term_index[term] = len(terms)
                terms.append(term)

        if not self._pending_upsert and not self._pending_remove:
            if len(terms) != len(self._terms):
                counts = self._counts.copy()
                counts.resize((counts.shape[0], len(terms)))
                self._counts = counts
                self._terms = tuple(terms)
                self._term_index = term_index
                self._weights_stale = True
            return self._terms

        dropped = self._pending_remove | set(self._pending_upsert)
        keep_ids = [d for d in self._doc_ids if d not in dropped]
        keep_rows = np.array(
            [self._doc_index[d] for d in keep_ids], dtype=np.intp
        )
        old = self._counts[keep_rows] if keep_ids else sp.csr_matrix(
            (0, len(self._terms)), dtype=np.float64
        )
        old.resize((old.shape[0], len(terms)))

        new_ids = sorted(self._pending_upsert)
        fresh = _counts_matrix(new_ids, term_index, self._pending_upsert)
        combined_ids = keep_ids + new_ids
        combined = sp.vstack([old, fresh], format="csr")

        order = sorted(range(len(combined_ids)), key=combined_ids.__getitem__)
        counts = combined[np.asarray(order, dtype=np.intp)].tocsr()
        counts.eliminate_zeros()

        self._doc_ids = tuple(combined_ids[i] for i in order)
        self._doc_index = {
            doc_id: row for row, doc_id in enumerate(self._doc_ids)
        }
        self._terms = tuple(terms)
        self._term_index = term_index
        self._counts = counts
        self._pending_upsert = {}
        self._pending_remove = set()
        self._weights_stale = True
        return self._terms

    def column_document_frequency(self) -> np.ndarray:
        """Documents-per-term over the folded count rows (no refresh)."""
        assert self._counts is not None
        return np.diff(self._counts.tocsc().indptr)

    def drop_columns(self, alive: np.ndarray) -> None:
        """Restrict counts and vocabulary to the ``alive`` column mask."""
        assert self._counts is not None
        if bool(alive.all()):
            return
        self._counts = self._counts[:, np.flatnonzero(alive)].tocsr()
        self._terms = tuple(
            term for term, keep in zip(self._terms, alive) if keep
        )
        self._term_index = {
            term: column for column, term in enumerate(self._terms)
        }
        self._weights_stale = True

    def apply_statistics(self, idf: np.ndarray, num_resources: int) -> None:
        """Re-derive weights and norms from the counts and a given idf.

        ``idf``/``num_resources`` are local figures for a standalone space
        and corpus-wide figures for a shard; either way the weights become
        exactly what a from-scratch compile with those statistics produces.
        """
        assert self._counts is not None
        idf = np.asarray(idf, dtype=np.float64)
        if idf.shape != (len(self._terms),):
            raise ConfigurationError(
                f"idf vector of length {idf.shape} does not match the "
                f"{len(self._terms)}-term vocabulary"
            )
        counts = self._counts
        row_sums = np.asarray(counts.sum(axis=1)).ravel()
        safe_sums = np.where(row_sums > 0.0, row_sums, 1.0)
        tf_data = counts.data / np.repeat(safe_sums, np.diff(counts.indptr))
        weights = sp.csr_matrix(
            (
                tf_data * idf[counts.indices],
                counts.indices.copy(),
                counts.indptr.copy(),
            ),
            shape=counts.shape,
        )
        weights.eliminate_zeros()
        self._matrix = weights
        self._dense_matrix = None
        self._doc_norms = np.sqrt(
            np.asarray(weights.power(2).sum(axis=1)).ravel()
        )
        self._idf = idf
        self._num_resources = int(num_resources)
        self._set_unknown_idf()
        self._weights_stale = False

    # ------------------------------------------------------------------ #
    # Partitioning (sharded serving)
    # ------------------------------------------------------------------ #
    def slice_rows(self, doc_ids: Sequence[str]) -> "MatrixConceptSpace":
        """A shard view: the given rows with corpus-wide statistics.

        The slice keeps the full vocabulary, the global idf vector and the
        global ``num_resources``, so every sliced row scores bit-for-bit
        like it does in this space; only the set of candidate documents
        shrinks.  The returned space has :attr:`has_external_stats` set —
        its statistics stay owned by whoever coordinates the shards.
        """
        self.refresh()
        ordered = sorted(doc_ids)
        if len(set(ordered)) != len(ordered):
            raise ConfigurationError("slice_rows got duplicate document ids")
        missing = [d for d in ordered if d not in self._doc_index]
        if missing:
            raise ConfigurationError(
                f"slice_rows got unknown documents: {missing[:3]}"
            )
        rows = np.array([self._doc_index[d] for d in ordered], dtype=np.intp)
        return MatrixConceptSpace(
            doc_ids=ordered,
            terms=self._terms,
            matrix=self._matrix[rows].tocsr(),
            doc_norms=self._doc_norms[rows],
            idf=self._idf.copy(),
            smooth_idf=self._smooth_idf,
            num_resources=self._num_resources,
            counts=self._counts[rows].tocsr() if self._counts is not None else None,
            external_stats=True,
        )

    def partition(
        self, num_shards: int, assign
    ) -> List["MatrixConceptSpace"]:
        """Split the space into ``num_shards`` row shards via ``assign``.

        ``assign`` maps a document id to a shard index in
        ``[0, num_shards)`` — typically
        :meth:`repro.search.sharding.ShardRouter.shard_of`.  Every shard
        (including empty ones) is returned, each carrying the shared
        vocabulary and global statistics (see :meth:`slice_rows`).
        """
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.refresh()
        buckets: List[List[str]] = [[] for _ in range(num_shards)]
        for doc_id in self._doc_ids:
            shard = int(assign(doc_id))
            if not 0 <= shard < num_shards:
                raise ConfigurationError(
                    f"assign({doc_id!r}) returned shard {shard}, outside "
                    f"[0, {num_shards})"
                )
            buckets[shard].append(doc_id)
        return [self.slice_rows(bucket) for bucket in buckets]

    # ------------------------------------------------------------------ #
    # Ranking
    # ------------------------------------------------------------------ #
    def rank(
        self,
        query_bag: Mapping[Hashable, float],
        top_k: Optional[int] = None,
    ) -> List[RankedResult]:
        """Rank all resources against one query bag (Eq. 4)."""
        return self.rank_batch([query_bag], top_k=top_k)[0]

    def rank_batch(
        self,
        query_bags: Sequence[Mapping[Hashable, float]],
        top_k: Optional[int] = None,
    ) -> List[List[RankedResult]]:
        """Rank every query of a batch with one sparse matmul.

        Queries whose bags are empty or carry no corpus term simply yield an
        empty result list — a zero query norm never raises or produces NaN.
        """
        validate_top_k(top_k)
        if not query_bags:
            return []
        self.refresh()

        rows: List[int] = []
        columns: List[int] = []
        values: List[float] = []
        query_norms = np.zeros(len(query_bags), dtype=np.float64)
        for row, bag in enumerate(query_bags):
            weights, out_of_vocab_sq = self._weight_query(bag)
            norm_sq = out_of_vocab_sq
            for column, weight in weights.items():
                rows.append(row)
                columns.append(column)
                values.append(weight)
                norm_sq += weight * weight
            query_norms[row] = math.sqrt(norm_sq)

        query_matrix = sp.csr_matrix(
            (values, (rows, columns)),
            shape=(len(query_bags), len(self._terms)),
            dtype=np.float64,
        )
        num_queries = len(query_bags)
        num_docs = len(self._doc_ids)
        num_terms = len(self._terms)
        if (
            top_k is not None
            and 0 < num_docs
            and num_queries * num_docs <= DENSE_BATCH_CELLS
            and num_docs * num_terms <= DENSE_BATCH_CELLS
            and num_queries * num_terms <= DENSE_BATCH_CELLS
        ):
            # Small enough to densify: one BLAS matmul + one batched
            # argpartition/lexsort ranks every row without per-row numpy
            # call overhead.
            scores = query_matrix.toarray() @ self._dense_weights().T
            return self._rank_rows_dense(scores, query_norms, top_k)
        return self._rank_rows_sparse(
            query_matrix @ self._matrix.T, query_norms, top_k
        )

    def cosine(self, query_bag: Mapping[Hashable, float], resource: str) -> float:
        """Cosine similarity between one query bag and one resource."""
        self.refresh()
        row = self._doc_index.get(resource)
        if row is None:
            return 0.0
        weights, out_of_vocab_sq = self._weight_query(query_bag)
        if not weights and out_of_vocab_sq == 0.0:
            return 0.0
        norm_sq = out_of_vocab_sq + sum(w * w for w in weights.values())
        query_norm = math.sqrt(norm_sq)
        doc_norm = self._doc_norms[row]
        if query_norm == 0.0 or doc_norm == 0.0:
            return 0.0
        start, end = self._matrix.indptr[row], self._matrix.indptr[row + 1]
        dot = 0.0
        for column, value in zip(
            self._matrix.indices[start:end], self._matrix.data[start:end]
        ):
            weight = weights.get(int(column))
            if weight is not None:
                dot += weight * float(value)
        return dot / (query_norm * doc_norm)

    # ------------------------------------------------------------------ #
    # Batched scoring backends
    # ------------------------------------------------------------------ #
    def _rank_rows_sparse(
        self,
        products: sp.csr_matrix,
        query_norms: np.ndarray,
        top_k: Optional[int],
    ) -> List[List[RankedResult]]:
        """Per-row selection on the sparse product (unbounded batch sizes)."""
        indptr, indices, dots = products.indptr, products.indices, products.data
        if dots.size:
            # One vectorized cosine normalisation over every stored dot
            # product; rows of zero-norm queries are structurally empty, so
            # the repeat never pairs a zero norm with a stored entry.
            row_lengths = np.diff(indptr)
            denominator = np.repeat(query_norms, row_lengths) * self._doc_norms[indices]
            all_scores = dots / denominator

        doc_ids = self._doc_ids
        results: List[List[RankedResult]] = []
        for row in range(products.shape[0]):
            start, end = indptr[row], indptr[row + 1]
            if start == end:
                results.append([])
                continue
            candidates = indices[start:end]
            scores = all_scores[start:end]
            selected = select_top_k(candidates, scores, top_k)
            results.append(
                [
                    RankedResult(doc_ids[column], score, position)
                    for position, (column, score) in enumerate(
                        zip(
                            candidates[selected].tolist(),
                            scores[selected].tolist(),
                        ),
                        start=1,
                    )
                ]
            )
        return results

    def _dense_weights(self) -> np.ndarray:
        """A lazily-cached dense copy of the weight matrix (small spaces only)."""
        if self._dense_matrix is None:
            self._dense_matrix = self._matrix.toarray()
        return self._dense_matrix

    def _rank_rows_dense(
        self,
        scores: np.ndarray,
        query_norms: np.ndarray,
        top_k: int,
    ) -> List[List[RankedResult]]:
        """Whole-batch top-k on a dense ``queries x documents`` score matrix.

        Ranks every row with a single ``argpartition``/``lexsort`` pair,
        removing the per-row numpy call overhead that dominates the sparse
        path on medium batches.  Used only when the involved cell counts
        are bounded (:data:`DENSE_BATCH_CELLS`).
        """
        # Zero norms only ever co-occur with structurally-zero rows/columns,
        # so substituting 1.0 cannot change a stored score.
        scores /= np.where(query_norms > 0.0, query_norms, 1.0)[:, None]
        scores /= np.where(self._doc_norms > 0.0, self._doc_norms, 1.0)[None, :]
        num_queries, num_docs = scores.shape
        bounded_k = min(top_k, num_docs)

        if bounded_k < num_docs:
            head = np.argpartition(-scores, bounded_k - 1, axis=1)[:, :bounded_k]
        else:
            head = np.tile(np.arange(num_docs), (num_queries, 1))
        head_scores = np.take_along_axis(scores, head, axis=1)

        # Order all rows at once by (row, -score, doc position).
        flat_rows = np.repeat(np.arange(num_queries), bounded_k)
        order = np.lexsort((head.ravel(), -head_scores.ravel(), flat_rows))
        sorted_columns = head.ravel()[order].reshape(num_queries, bounded_k)
        sorted_scores = head_scores.ravel()[order].reshape(num_queries, bounded_k)

        # Rows whose k-th score ties with unselected documents need the
        # exact lowest-doc-id members of the tie group; redo those few rows.
        if bounded_k < num_docs:
            boundary = sorted_scores[:, -1]
            tie_rows = set(
                np.flatnonzero(
                    (boundary > 0.0)
                    & ((scores >= boundary[:, None]).sum(axis=1) > bounded_k)
                ).tolist()
            )
        else:
            tie_rows = set()

        positive_counts = (sorted_scores > 0.0).sum(axis=1).tolist()
        columns_list = sorted_columns.tolist()
        scores_list = sorted_scores.tolist()
        doc_ids = self._doc_ids
        all_positions = np.arange(num_docs)
        results: List[List[RankedResult]] = []
        for row in range(num_queries):
            if row in tie_rows:
                row_scores = scores[row]
                selected = select_top_k(all_positions, row_scores, top_k)
                results.append(
                    [
                        RankedResult(doc_ids[column], float(row_scores[column]), position)
                        for position, column in enumerate(selected.tolist(), start=1)
                    ]
                )
                continue
            count = positive_counts[row]
            results.append(
                [
                    RankedResult(doc_ids[column], score, position)
                    for position, (column, score) in enumerate(
                        zip(columns_list[row][:count], scores_list[row][:count]),
                        start=1,
                    )
                ]
            )
        return results

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(
        self, directory: Union[str, Path], mmap_ready: bool = False
    ) -> Path:
        """Write the arrays and metadata (JSON) to ``directory``.

        With the default ``mmap_ready=False`` the arrays land in one
        compressed ``.npz`` archive (smallest on disk).  With
        ``mmap_ready=True`` each array is written as a raw ``.npy`` file
        instead, so :meth:`load` can memory-map them (``mmap=True``):
        opening the space is then near-instant regardless of corpus size
        and the OS pages rows in on demand — the layout the
        process-per-shard serving pool
        (:mod:`repro.search.shardpool`) expects.  A re-save removes the
        other layout's files so a directory never carries both.
        """
        self.refresh()
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        arrays = {
            "indptr": self._matrix.indptr.astype(np.int64),
            "indices": self._matrix.indices.astype(np.int64),
            "data": self._matrix.data.astype(np.float64),
            "doc_norms": self._doc_norms,
            "idf": self._idf,
        }
        if self._counts is not None:
            arrays["counts_indptr"] = self._counts.indptr.astype(np.int64)
            arrays["counts_indices"] = self._counts.indices.astype(np.int64)
            arrays["counts_data"] = self._counts.data.astype(np.float64)
        if mmap_ready:
            for name, array in arrays.items():
                np.save(_npy_path(path, name), array)
            # A previous npz-layout save (or a formerly-mutable space's
            # counts files) must not shadow the fresh arrays.
            (path / ARRAYS_FILENAME).unlink(missing_ok=True)
            for name in _ARRAY_NAMES:
                if name not in arrays:
                    _npy_path(path, name).unlink(missing_ok=True)
        else:
            np.savez_compressed(path / ARRAYS_FILENAME, **arrays)
            for name in _ARRAY_NAMES:
                _npy_path(path, name).unlink(missing_ok=True)
        metadata = {
            "format_version": FORMAT_VERSION,
            "storage": STORAGE_NPY if mmap_ready else STORAGE_NPZ,
            "doc_ids": list(self._doc_ids),
            "terms": _encode_terms(self._terms),
            "smooth_idf": self._smooth_idf,
            "num_resources": self._num_resources,
            "shape": [len(self._doc_ids), len(self._terms)],
            "mutable": self._counts is not None,
            "external_stats": self._external_stats,
        }
        (path / METADATA_FILENAME).write_text(
            json.dumps(metadata), encoding="utf-8"
        )
        return path

    @classmethod
    def load(
        cls, directory: Union[str, Path], mmap: bool = False
    ) -> "MatrixConceptSpace":
        """Reconstruct a space from a directory written by :meth:`save`.

        ``mmap=True`` memory-maps the arrays read-only instead of loading
        them into RAM — zero-copy open, pages faulted in as queries touch
        rows.  It requires the ``mmap_ready`` (``npy``) save layout;
        asking for it on a compressed ``npz`` save raises (decompressing
        silently would defeat the cold-start/RSS point of asking).
        Memory-mapped spaces are for read-only serving: the arrays are
        opened immutably, so route mutations to a coordinator that owns a
        writable copy.
        """
        path = Path(directory)
        metadata_path = path / METADATA_FILENAME
        if not metadata_path.exists():
            raise NotFittedError(f"no saved matrix space under {path}")
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
        version = metadata.get("format_version")
        if version not in (1, FORMAT_VERSION):
            raise ConfigurationError(
                f"unsupported matrix-space format version {version!r}"
            )
        storage = metadata.get("storage", STORAGE_NPZ)
        if mmap and storage != STORAGE_NPY:
            raise ConfigurationError(
                f"cannot memory-map a {storage!r}-layout save; re-save the "
                "space with mmap_ready=True to get the raw .npy layout"
            )
        shape = tuple(metadata["shape"])
        counts = None
        if storage == STORAGE_NPY:
            mode = "r" if mmap else None

            def read(name: str) -> np.ndarray:
                return np.load(_npy_path(path, name), mmap_mode=mode)

            if not _npy_path(path, "data").exists():
                raise NotFittedError(f"no saved matrix space under {path}")
            matrix = sp.csr_matrix(
                (read("data"), read("indices"), read("indptr")), shape=shape
            )
            doc_norms = read("doc_norms")
            idf = read("idf")
            if _npy_path(path, "counts_data").exists():
                counts = sp.csr_matrix(
                    (
                        read("counts_data"),
                        read("counts_indices"),
                        read("counts_indptr"),
                    ),
                    shape=shape,
                )
        else:
            arrays_path = path / ARRAYS_FILENAME
            if not arrays_path.exists():
                raise NotFittedError(f"no saved matrix space under {path}")
            with np.load(arrays_path) as arrays:
                matrix = sp.csr_matrix(
                    (arrays["data"], arrays["indices"], arrays["indptr"]),
                    shape=shape,
                )
                doc_norms = arrays["doc_norms"]
                idf = arrays["idf"]
                if "counts_data" in arrays:
                    counts = sp.csr_matrix(
                        (
                            arrays["counts_data"],
                            arrays["counts_indices"],
                            arrays["counts_indptr"],
                        ),
                        shape=shape,
                    )
        return cls(
            doc_ids=metadata["doc_ids"],
            terms=_decode_terms(metadata["terms"]),
            matrix=matrix,
            doc_norms=doc_norms,
            idf=idf,
            smooth_idf=metadata["smooth_idf"],
            num_resources=metadata["num_resources"],
            counts=counts,
            external_stats=bool(metadata.get("external_stats", False)),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _weight_query(
        self, bag: Mapping[Hashable, float]
    ) -> Tuple[Dict[int, float], float]:
        """Eq. 1-2 weighting of a query against the frozen vocabulary.

        Returns ``(column -> weight, out_of_vocabulary_norm_sq)``; the second
        value carries the squared weight mass of terms outside the vocabulary
        (nonzero only under idf smoothing), which must still count towards
        the query norm for parity with the dict-loop cosine.
        """
        total = float(sum(count for count in bag.values() if count > 0))
        if total <= 0.0:
            return {}, 0.0
        weights: Dict[int, float] = {}
        out_of_vocab_sq = 0.0
        for term, count in bag.items():
            if count <= 0:
                continue
            tf = float(count) / total
            column = self._term_index.get(term)
            if column is None:
                weight = tf * self._unknown_idf
                out_of_vocab_sq += weight * weight
                continue
            weight = tf * float(self._idf[column])
            if weight != 0.0:
                weights[column] = weight
        return weights, out_of_vocab_sq


def _counts_matrix(
    doc_ids: Sequence[str],
    term_index: Mapping[Hashable, int],
    bags: Mapping[str, Mapping[Hashable, float]],
) -> sp.csr_matrix:
    """Raw count CSR rows for ``doc_ids`` over the ``term_index`` vocabulary."""
    indptr = np.zeros(len(doc_ids) + 1, dtype=np.int64)
    columns: List[int] = []
    values: List[float] = []
    for row, doc_id in enumerate(doc_ids):
        entries = sorted(
            (term_index[term], float(count))
            for term, count in bags.get(doc_id, {}).items()
            if count > 0 and term in term_index
        )
        indptr[row + 1] = indptr[row] + len(entries)
        columns.extend(column for column, _ in entries)
        values.extend(count for _, count in entries)
    return sp.csr_matrix(
        (
            np.asarray(values, dtype=np.float64),
            np.asarray(columns, dtype=np.int64),
            indptr,
        ),
        shape=(len(doc_ids), len(term_index)),
    )


def _encode_terms(terms: Sequence[Hashable]) -> Dict[str, object]:
    """JSON-encode the vocabulary, preserving int/str term types."""
    if all(isinstance(term, (int, np.integer)) for term in terms):
        return {"kind": "int", "values": [int(term) for term in terms]}
    if all(isinstance(term, str) for term in terms):
        return {"kind": "str", "values": list(terms)}
    raise ConfigurationError(
        "only pure int (concept ids) or pure str (tag) vocabularies "
        "can be persisted"
    )


def _decode_terms(encoded: Mapping[str, object]) -> List[Hashable]:
    kind = encoded.get("kind")
    values = encoded.get("values")
    if kind == "int":
        return [int(value) for value in values]  # type: ignore[union-attr]
    if kind == "str":
        return [str(value) for value in values]  # type: ignore[union-attr]
    raise ConfigurationError(f"unknown vocabulary encoding {kind!r}")
