"""Evaluation of the streaming-update workload: replaying delta batches.

The paper's evaluation covers a static corpus; incremental serving adds a
new axis — how does the engine behave while the corpus drifts under it?
:func:`replay_deltas` replays a stream of
:class:`~repro.tagging.delta.FolksonomyDelta` batches against a serving
:class:`~repro.core.pipeline.OfflineIndex`, timing each fold-in (and the
lazy refresh the next query pays) and recording the staleness trajectory,
so Table-VI-style "online stays cheap" claims can be checked for the
mutable path too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import OfflineIndex
from repro.search.incremental import StalenessReport
from repro.tagging.delta import FolksonomyDelta
from repro.utils.errors import ConfigurationError


@dataclass
class DeltaReplayStep:
    """Measurements for one replayed delta batch."""

    batch: int
    delta_size: int
    apply_seconds: float
    refresh_seconds: float
    staleness: StalenessReport

    @property
    def total_seconds(self) -> float:
        return self.apply_seconds + self.refresh_seconds


@dataclass
class DeltaReplayReport:
    """The full trajectory of a delta replay."""

    steps: List[DeltaReplayStep] = field(default_factory=list)

    @property
    def total_apply_seconds(self) -> float:
        return sum(step.apply_seconds for step in self.steps)

    @property
    def total_refresh_seconds(self) -> float:
        return sum(step.refresh_seconds for step in self.steps)

    @property
    def total_seconds(self) -> float:
        return self.total_apply_seconds + self.total_refresh_seconds

    @property
    def refit_due_after(self) -> Optional[int]:
        """Index of the first batch whose staleness crossed the policy, if any."""
        for position, step in enumerate(self.steps):
            if step.staleness.refit_due:
                return position
        return None

    def timing_rows(self) -> List[Dict[str, object]]:
        """Rows for :func:`repro.eval.reporting.format_table`."""
        return [
            {
                "Batch": step.batch,
                "Delta size": step.delta_size,
                "Apply (s)": round(step.apply_seconds, 6),
                "Refresh (s)": round(step.refresh_seconds, 6),
                "Drift": f"{step.staleness.delta_fraction:.1%}",
                "Refit due": step.staleness.refit_due,
            }
            for step in self.steps
        ]


def replay_deltas(
    index: OfflineIndex,
    deltas: Sequence[FolksonomyDelta],
    eager_refresh: bool = True,
) -> DeltaReplayReport:
    """Apply ``deltas`` in order to ``index``, timing every fold-in.

    With ``eager_refresh=True`` (default) each batch's lazy idf/norm
    recompute is forced immediately after the apply and timed separately,
    so the report splits "queueing the mutation" from "paying the refresh"
    — the two costs a serving process actually schedules.  Only the
    serving (matrix) backend is refreshed eagerly: forcing the dict-loop
    mirror would time a full O(corpus) Python re-fit that a matrix-backed
    serving process never pays (the mirror still refreshes lazily if read).
    """
    if index.folksonomy is None:
        raise ConfigurationError(
            "delta replay needs an index that carries its folksonomy"
        )
    report = DeltaReplayReport()
    for batch, delta in enumerate(deltas):
        started = time.perf_counter()
        staleness = index.apply_delta(delta)
        applied = time.perf_counter()
        if eager_refresh:
            # A sharded engine has no single matrix_space: its refresh IS
            # the serving-side coordinated recompute, so time that instead.
            matrix_space = getattr(index.engine, "matrix_space", None)
            if matrix_space is not None:
                matrix_space.refresh()
            else:
                index.engine.refresh()
        finished = time.perf_counter()
        report.steps.append(
            DeltaReplayStep(
                batch=batch,
                delta_size=len(delta),
                apply_seconds=applied - started,
                refresh_seconds=finished - applied,
                staleness=staleness,
            )
        )
    return report
