"""Evaluation metrics, experiment harness and report rendering.

* :mod:`repro.eval.ndcg` — graded-relevance ranking metrics (NDCG@N, Eq. 24)
  plus precision/recall helpers.
* :mod:`repro.eval.harness` — runs a set of rankers over a dataset + query
  workload, recording ranking quality and offline/online wall-clock times.
* :mod:`repro.eval.reporting` — plain-text table and series rendering used
  by the experiment drivers and benchmarks to print paper-style output.
* :mod:`repro.eval.incremental` — replay of folksonomy delta streams
  against a serving index (the streaming-update workload).
* :mod:`repro.eval.sharding` — parity + throughput sweep of sharded
  engines against the monolithic baseline.
* :mod:`repro.eval.shardpool` — the same sweep for the process-per-shard
  pool: true multi-core fan-out, cold-start cost, degraded reads rejected.
* :mod:`repro.eval.workload` — workload replay sweep: concurrent replay
  throughput at increasing worker counts, parity with the serial golden
  enforced.
* :mod:`repro.eval.serve` — batch-window sweep of the micro-batching
  serving front-end, parity with direct ``rank_batch`` enforced.
* :mod:`repro.eval.lifecycle` — refit-cadence sweep: background refit
  frequency vs ranking drift vs refit/swap cost, scratch parity enforced.
"""

from repro.eval.ndcg import (
    dcg_at,
    ideal_dcg,
    ndcg_at,
    ndcg_curve,
    mean_ndcg_at,
    precision_at,
    average_precision,
)
from repro.eval.harness import (
    RankingEvaluation,
    MethodEvaluation,
    RankingExperiment,
)
from repro.eval.reporting import format_table, format_series, format_float
from repro.eval.incremental import (
    DeltaReplayReport,
    DeltaReplayStep,
    replay_deltas,
)
from repro.eval.lifecycle import lifecycle_sweep
from repro.eval.serve import frontend_sweep
from repro.eval.sharding import rankings_match, sharding_sweep
from repro.eval.shardpool import pool_sweep
from repro.eval.workload import workload_sweep

__all__ = [
    "dcg_at",
    "ideal_dcg",
    "ndcg_at",
    "ndcg_curve",
    "mean_ndcg_at",
    "precision_at",
    "average_precision",
    "RankingEvaluation",
    "MethodEvaluation",
    "RankingExperiment",
    "format_table",
    "format_series",
    "format_float",
    "DeltaReplayReport",
    "DeltaReplayStep",
    "replay_deltas",
    "rankings_match",
    "sharding_sweep",
    "pool_sweep",
    "workload_sweep",
    "frontend_sweep",
    "lifecycle_sweep",
]
