"""Evaluation harness for the sharded serving architecture.

The sharded engine's contract is *parity at parallel speed*: fan-out plus
heap-merge must reproduce the monolithic rankings exactly while spreading
the matmul work over cores.  :func:`sharding_sweep` checks both halves in
one pass — it times a ``rank_batch`` workload on the monolithic engine and
on sharded engines of increasing shard counts, verifies every sharded
ranking against the monolithic one, and returns report rows for
:func:`repro.eval.reporting.format_table`.

:func:`rankings_match` is the tie-aware comparator shared with the
benchmark gate: scores must agree position by position within ``tol``, and
resources must agree except *within* a group of scores tied at ``tol``,
where summation-order noise between scoring backends may legally permute
the deterministic tie-break (and a top-k cut may change the boundary
group's membership).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.search.sharding import ShardedSearchEngine
from repro.search.vsm import RankedResult
from repro.utils.errors import ConfigurationError


def rankings_match(
    got: Sequence[RankedResult],
    want: Sequence[RankedResult],
    tol: float = 1e-9,
    truncated: bool = False,
) -> bool:
    """Whether two ranked lists agree to ``tol`` (tie groups may permute)."""
    if len(got) != len(want):
        return False
    position = 0
    while position < len(want):
        group_end = position
        while (
            group_end + 1 < len(want)
            and abs(want[group_end + 1].score - want[position].score) <= tol
        ):
            group_end += 1
        for got_result, want_result in zip(
            got[position : group_end + 1], want[position : group_end + 1]
        ):
            if abs(got_result.score - want_result.score) > tol:
                return False
        boundary = truncated and group_end + 1 == len(want)
        if not boundary:
            got_members = {r.resource for r in got[position : group_end + 1]}
            want_members = {r.resource for r in want[position : group_end + 1]}
            if got_members != want_members:
                return False
        position = group_end + 1
    return True


def sharding_sweep(
    engine,
    queries: Sequence[Sequence[str]],
    shard_counts: Sequence[int] = (1, 2, 4),
    top_k: Optional[int] = 10,
    repeats: int = 3,
    cache_entries: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Time and parity-check sharded engines against a monolithic one.

    For each shard count, partitions ``engine`` (via
    :meth:`ShardedSearchEngine.from_engine`), times ``rank_batch`` over
    ``queries`` (best of ``repeats``) and verifies every ranking with
    :func:`rankings_match`.  The first returned row is the monolithic
    baseline (``Shards == 0``); sharded rows carry the speedup relative to
    it.  ``cache_entries`` sizes the sharded engines' query cache (default
    disabled, so the sweep times actual scoring).  Raises on any parity
    violation — a fast wrong answer is not a result.
    """
    if not queries:
        raise ConfigurationError("sharding_sweep needs a non-empty workload")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")

    baseline_seconds = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        want = engine.rank_batch(queries, top_k=top_k)
        baseline_seconds = min(
            baseline_seconds, time.perf_counter() - started
        )
    rows: List[Dict[str, object]] = [
        {
            "Shards": 0,
            "Engine": "monolithic",
            "Seconds": round(baseline_seconds, 6),
            "Queries/s": round(len(queries) / baseline_seconds, 1),
            "Speedup": 1.0,
        }
    ]
    for num_shards in shard_counts:
        sharded = ShardedSearchEngine.from_engine(
            engine, num_shards=num_shards, cache_entries=cache_entries
        )
        try:
            seconds = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                got = sharded.rank_batch(queries, top_k=top_k)
                seconds = min(seconds, time.perf_counter() - started)
            for got_results, want_results in zip(got, want):
                if not rankings_match(
                    got_results,
                    want_results,
                    truncated=top_k is not None,
                ):
                    raise ConfigurationError(
                        f"{num_shards}-shard rankings diverged from the "
                        "monolithic engine"
                    )
        finally:
            sharded.close()
        rows.append(
            {
                "Shards": num_shards,
                "Engine": f"{num_shards}-shard fan-out",
                "Seconds": round(seconds, 6),
                "Queries/s": round(len(queries) / seconds, 1),
                "Speedup": round(baseline_seconds / seconds, 2),
            }
        )
    return rows
