"""Plain-text rendering of experiment tables and figure series.

The benchmark drivers print the same rows/series the paper reports; these
helpers keep that output consistent (column alignment, float formatting)
across every experiment module.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_float(value: float, digits: int = 4) -> str:
    """Render a float compactly (integers lose the trailing zeros)."""
    if value != value:  # NaN
        return "nan"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.{digits}f}"


def _render_cell(value: object, digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format_float(value, digits)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    digits: int = 4,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    rendered_rows = [
        [_render_cell(row.get(column, ""), digits) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered_rows))
        for i, column in enumerate(columns)
    ]

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[Number]],
    x_values: Sequence[Number],
    x_label: str = "N",
    title: Optional[str] = None,
    digits: int = 4,
) -> str:
    """Render figure-style data: one labelled series per line over ``x_values``.

    Example output (Figure 4 style)::

        N        1      5      10
        cubelsi  0.81   0.78   0.74
        bow      0.62   0.60   0.57
    """
    columns = [x_label] + [format_float(float(x), 2) for x in x_values]
    rows = []
    for name, values in series.items():
        row: Dict[str, object] = {x_label: name}
        for x, value in zip(x_values, values):
            row[format_float(float(x), 2)] = value
        rows.append(row)
    return format_table(rows, columns=columns, title=title, digits=digits)


def format_kv(pairs: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render key/value pairs one per line (used for summary blocks)."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs.items():
        rendered = _render_cell(value, 4)
        lines.append(f"{str(key).ljust(width)} : {rendered}")
    return "\n".join(lines)


def format_bytes(num_bytes: float) -> str:
    """Human readable byte sizes (the units Table VII uses)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if value < 1024.0 or unit == "PB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} PB"
