"""Workload replay sweep: throughput vs worker count, parity enforced.

:func:`workload_sweep` is to the workload subsystem what
:func:`repro.eval.sharding.sharding_sweep` is to sharding: it replays one
deterministic trace serially (the golden reference, ``Workers == 0``) and
then concurrently at increasing worker counts, verifies every concurrent
run against the golden with :func:`repro.load.check_replay_parity`, and
returns rows for :func:`repro.eval.reporting.format_table` — throughput,
query latency quantiles and error counts per run.  A fast replay that
diverged from the golden raises instead of reporting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.load.invariants import PARITY_TOL, check_replay_parity
from repro.load.runner import WorkloadReport, WorkloadRunner, quiesced_rankings
from repro.load.workload import QUERY, WorkloadTrace
from repro.utils.errors import ConfigurationError


def _report_row(report: WorkloadReport) -> Dict[str, object]:
    queries = report.latencies[QUERY]
    return {
        "Workers": report.num_workers,
        "Mode": report.mode,
        "Seconds": round(report.wall_seconds, 6),
        "Ops/s": round(report.ops_per_second, 1),
        "Query p50": f"{queries.quantile(0.5) * 1e3:.2f}ms",
        "Query p99": f"{queries.quantile(0.99) * 1e3:.2f}ms",
        "Errors": len(report.errors),
    }


def workload_sweep(
    build_engine: Callable[[], object],
    trace: WorkloadTrace,
    worker_counts: Sequence[int] = (1, 2, 4),
    tol: float = PARITY_TOL,
    frontend_config=None,
) -> Tuple[List[Dict[str, object]], List[WorkloadReport]]:
    """Replay ``trace`` at each worker count; return table rows + reports.

    ``build_engine`` must produce a freshly built, identically configured
    engine per call (each replay mutates its own instance).  The serial
    golden runs once and every concurrent run is parity-checked against
    it — errors, state divergence, probe-ranking drift beyond ``tol`` or
    an epoch regression all raise :class:`ConfigurationError`.  Returned
    reports are ordered like the rows: golden first, then one per worker
    count.  ``frontend_config`` (a :class:`repro.serve.FrontendConfig`)
    routes every concurrent replay's queries through a micro-batching
    front-end — the serial golden stays direct — so the sweep proves the
    batching path against the same invariants.
    """
    if not worker_counts:
        raise ConfigurationError("workload_sweep needs >= 1 worker count")
    if any(count < 1 for count in worker_counts):
        raise ConfigurationError(
            f"worker counts must be >= 1, got {tuple(worker_counts)}"
        )

    golden_engine = build_engine()
    try:
        golden = WorkloadRunner(golden_engine, trace).run_serial()
        if golden.errors:
            raise ConfigurationError(
                f"serial golden replay raised {len(golden.errors)} error(s); "
                f"first: {golden.errors[0].splitlines()[-1]}"
            )
        rows = [_report_row(golden)]
        reports = [golden]
        golden_rankings = quiesced_rankings(golden_engine, trace)
        for num_workers in worker_counts:
            verdict = check_replay_parity(
                build_engine,
                trace,
                num_workers=num_workers,
                tol=tol,
                serial_report=golden,
                serial_rankings=golden_rankings,
                frontend_config=frontend_config,
            )
            if not verdict.ok:
                raise ConfigurationError(
                    f"{num_workers}-worker replay violated invariants:\n"
                    + "\n".join(verdict.violations)
                )
            rows.append(_report_row(verdict.concurrent))
            reports.append(verdict.concurrent)
        return rows, reports
    finally:
        closer = getattr(golden_engine, "close", None)
        if callable(closer):
            closer()
