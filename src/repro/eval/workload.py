"""Workload replay sweeps: throughput, scenarios, parity enforced.

:func:`workload_sweep` is to the workload subsystem what
:func:`repro.eval.sharding.sharding_sweep` is to sharding: it replays one
deterministic trace serially (the golden reference, ``Workers == 0``) and
then concurrently at increasing worker counts, verifies every concurrent
run against the golden with :func:`repro.load.check_replay_parity`, and
returns rows for :func:`repro.eval.reporting.format_table` — throughput,
query latency quantiles and error counts per run.  A fast replay that
diverged from the golden raises instead of reporting.

:func:`scenario_sweep` runs the named production-shaped profiles from
:mod:`repro.load.scenarios` — flash crowd, diurnal pacing, multi-tenant
skew, rebuild storm, chaos fault injection — each under its *own*
invariant (:func:`repro.load.check_scenario`) on top of the parity bar,
and reports per-scenario latency, shed-rate and degradation columns.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.load.invariants import (
    PARITY_TOL,
    ScenarioVerdict,
    check_replay_parity,
    check_scenario,
)
from repro.load.runner import WorkloadReport, WorkloadRunner, quiesced_rankings
from repro.load.scenarios import (
    SCENARIO_CHAOS,
    SCENARIO_DIURNAL,
    SCENARIO_FLASH_CROWD,
    SCENARIO_MULTI_TENANT,
    SCENARIO_NAMES,
    build_scenario,
    run_chaos,
)
from repro.load.workload import QUERY, WorkloadTrace
from repro.utils.errors import ConfigurationError


def _report_row(report: WorkloadReport) -> Dict[str, object]:
    queries = report.latencies[QUERY]
    return {
        "Workers": report.num_workers,
        "Mode": report.mode,
        "Seconds": round(report.wall_seconds, 6),
        "Ops/s": round(report.ops_per_second, 1),
        "Query p50": f"{queries.quantile(0.5) * 1e3:.2f}ms",
        "Query p99": f"{queries.quantile(0.99) * 1e3:.2f}ms",
        "Errors": len(report.errors),
    }


def workload_sweep(
    build_engine: Callable[[], object],
    trace: WorkloadTrace,
    worker_counts: Sequence[int] = (1, 2, 4),
    tol: float = PARITY_TOL,
    frontend_config=None,
) -> Tuple[List[Dict[str, object]], List[WorkloadReport]]:
    """Replay ``trace`` at each worker count; return table rows + reports.

    ``build_engine`` must produce a freshly built, identically configured
    engine per call (each replay mutates its own instance).  The serial
    golden runs once and every concurrent run is parity-checked against
    it — errors, state divergence, probe-ranking drift beyond ``tol`` or
    an epoch regression all raise :class:`ConfigurationError`.  Returned
    reports are ordered like the rows: golden first, then one per worker
    count.  ``frontend_config`` (a :class:`repro.serve.FrontendConfig`)
    routes every concurrent replay's queries through a micro-batching
    front-end — the serial golden stays direct — so the sweep proves the
    batching path against the same invariants.
    """
    if not worker_counts:
        raise ConfigurationError("workload_sweep needs >= 1 worker count")
    if any(count < 1 for count in worker_counts):
        raise ConfigurationError(
            f"worker counts must be >= 1, got {tuple(worker_counts)}"
        )

    golden_engine = build_engine()
    try:
        golden = WorkloadRunner(golden_engine, trace).run_serial()
        if golden.errors:
            raise ConfigurationError(
                f"serial golden replay raised {len(golden.errors)} error(s); "
                f"first: {golden.errors[0].splitlines()[-1]}"
            )
        rows = [_report_row(golden)]
        reports = [golden]
        golden_rankings = quiesced_rankings(golden_engine, trace)
        for num_workers in worker_counts:
            verdict = check_replay_parity(
                build_engine,
                trace,
                num_workers=num_workers,
                tol=tol,
                serial_report=golden,
                serial_rankings=golden_rankings,
                frontend_config=frontend_config,
            )
            if not verdict.ok:
                raise ConfigurationError(
                    f"{num_workers}-worker replay violated invariants:\n"
                    + "\n".join(verdict.violations)
                )
            rows.append(_report_row(verdict.concurrent))
            reports.append(verdict.concurrent)
        return rows, reports
    finally:
        closer = getattr(golden_engine, "close", None)
        if callable(closer):
            closer()


def _scenario_row(
    name: str, report: WorkloadReport, verdict: ScenarioVerdict
) -> Dict[str, object]:
    queries = report.latencies[QUERY]
    submitted = int(verdict.details.get("submitted", 0))
    shed = int(verdict.details.get("shed", 0))
    shed_rate = shed / max(submitted + shed, 1) if submitted or shed else 0.0
    return {
        "Scenario": name,
        "Workers": report.num_workers,
        "Seconds": round(report.wall_seconds, 6),
        "Ops/s": round(report.ops_per_second, 1),
        "Query p50": f"{queries.quantile(0.5) * 1e3:.2f}ms",
        "Query p99": f"{queries.quantile(0.99) * 1e3:.2f}ms",
        "Shed rate": f"{shed_rate:.1%}",
        "Degraded": int(verdict.details.get("degraded_errors", 0)),
        "Errors": len(report.errors),
    }


def scenario_sweep(
    build_engine: Callable[[], object],
    folksonomy,
    scenario_names: Sequence[str] = SCENARIO_NAMES,
    seed: int = 0,
    num_workers: int = 4,
    tol: float = PARITY_TOL,
    frontend_config=None,
    save_dir: Optional[str] = None,
    **scenario_kwargs,
) -> Tuple[List[Dict[str, object]], List[ScenarioVerdict]]:
    """Run each named scenario under its invariant; return rows + verdicts.

    Every scenario trace is built from one ``seed`` over ``folksonomy``
    (``scenario_kwargs`` forward to
    :func:`repro.load.scenarios.build_scenario`), replayed at
    ``num_workers``, and judged by :func:`repro.load.check_scenario` on
    top of the parity bar — any violation raises
    :class:`ConfigurationError` instead of reporting.  The flash-crowd
    and multi-tenant legs replay through the micro-batching front-end
    (``frontend_config`` or a default) because their invariants read the
    dedup/admission books; diurnal replays *paced* so the arrival curve
    is honoured; chaos needs ``save_dir`` (a published sharded save) and
    is skipped with a raise if it is requested without one.  Rows are
    :func:`repro.eval.reporting.format_table`-ready: per-scenario wall
    time, throughput, query quantiles, shed rate and degraded-read
    counts.
    """
    if not scenario_names:
        raise ConfigurationError("scenario_sweep needs >= 1 scenario name")
    if num_workers < 1:
        raise ConfigurationError(
            f"num_workers must be >= 1, got {num_workers}"
        )
    rows: List[Dict[str, object]] = []
    verdicts: List[ScenarioVerdict] = []
    for name in scenario_names:
        scenario = build_scenario(
            name, folksonomy, seed=seed, **scenario_kwargs
        )
        if name == SCENARIO_CHAOS:
            if save_dir is None:
                raise ConfigurationError(
                    "the chaos scenario replays over a ShardProcessPool; "
                    "pass save_dir= (a published sharded save directory)"
                )
            golden_engine = build_engine()
            try:
                golden_rankings = quiesced_rankings(
                    golden_engine, scenario.trace
                )
            finally:
                closer = getattr(golden_engine, "close", None)
                if callable(closer):
                    closer()
            outcome = run_chaos(
                save_dir, scenario, num_workers=num_workers
            )
            verdict = check_scenario(
                scenario,
                chaos=outcome,
                golden_rankings=golden_rankings,
                tol=tol,
            )
            report = outcome.report
        else:
            use_frontend = name in (
                SCENARIO_FLASH_CROWD,
                SCENARIO_MULTI_TENANT,
            )
            config = frontend_config
            if use_frontend and config is None:
                from repro.serve.frontend import FrontendConfig

                config = FrontendConfig()
            parity = check_replay_parity(
                build_engine,
                scenario.trace,
                num_workers=num_workers,
                tol=tol,
                frontend_config=config if use_frontend else None,
                pace=name == SCENARIO_DIURNAL,
                allowed_error_kinds=("Overloaded",)
                if use_frontend
                else (),
            )
            verdict = check_scenario(scenario, parity=parity, tol=tol)
            report = parity.concurrent
        if not verdict.ok:
            raise ConfigurationError(
                f"scenario {name!r} violated its invariant:\n"
                + "\n".join(verdict.violations)
            )
        rows.append(_scenario_row(name, report, verdict))
        verdicts.append(verdict)
    return rows, verdicts
