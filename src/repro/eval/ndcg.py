"""Ranking quality metrics for graded relevance.

The main metric is NDCG@N exactly as the paper defines it (Eq. 24):

    NDCG@N = Z_N * sum_{i=1..N} (2^{r(i)} - 1) / log2(i + 1)

where ``r(i)`` is the relevance grade (0/1/2) of the resource at rank ``i``
and ``Z_N`` normalises so a perfect ranking scores 1.  Binary
precision/recall-style metrics are included for completeness and for tests.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Union

from repro.datasets.queries import QueryWorkload, RelevanceJudgments
from repro.utils.errors import ConfigurationError

GradeLookup = Union[RelevanceJudgments, Mapping[str, int]]


def _grade(judgments: GradeLookup, resource: str) -> int:
    if isinstance(judgments, RelevanceJudgments):
        return judgments.grade(resource)
    return int(judgments.get(resource, 0))


def _positive_grades(judgments: GradeLookup) -> List[int]:
    if isinstance(judgments, RelevanceJudgments):
        return judgments.ideal_gains()
    return sorted((g for g in judgments.values() if g > 0), reverse=True)


def dcg_at(ranking: Sequence[str], judgments: GradeLookup, n: int) -> float:
    """Discounted cumulative gain of the top-``n`` ranked resources."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    total = 0.0
    for position, resource in enumerate(ranking[:n], start=1):
        gain = (2 ** _grade(judgments, resource)) - 1
        total += gain / math.log2(position + 1)
    return total


def ideal_dcg(judgments: GradeLookup, n: int) -> float:
    """DCG of the ideal ranking (grades sorted descending)."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    total = 0.0
    for position, grade in enumerate(_positive_grades(judgments)[:n], start=1):
        total += ((2**grade) - 1) / math.log2(position + 1)
    return total


def ndcg_at(ranking: Sequence[str], judgments: GradeLookup, n: int) -> float:
    """NDCG@N (Eq. 24); 0.0 when the query has no relevant resources."""
    ideal = ideal_dcg(judgments, n)
    if ideal <= 0.0:
        return 0.0
    return dcg_at(ranking, judgments, n) / ideal


def ndcg_curve(
    ranking: Sequence[str], judgments: GradeLookup, cutoffs: Iterable[int]
) -> Dict[int, float]:
    """NDCG@N for several cutoffs at once."""
    return {int(n): ndcg_at(ranking, judgments, int(n)) for n in cutoffs}


def mean_ndcg_at(
    rankings: Mapping[str, Sequence[str]],
    workload: QueryWorkload,
    n: int,
    skip_unjudged: bool = True,
) -> float:
    """Mean NDCG@N over a query workload.

    Parameters
    ----------
    rankings:
        ``query_id -> ranked resource list`` produced by one method.
    workload:
        The workload providing per-query judgments.
    n:
        The cutoff.
    skip_unjudged:
        If ``True`` queries without any relevant resource are excluded from
        the mean (they would contribute an uninformative 0).
    """
    scores: List[float] = []
    for query in workload:
        judgments = workload.judgments_for(query)
        if skip_unjudged and not judgments.ideal_gains():
            continue
        ranking = rankings.get(query.query_id, [])
        scores.append(ndcg_at(ranking, judgments, n))
    if not scores:
        return 0.0
    return float(sum(scores) / len(scores))


def precision_at(
    ranking: Sequence[str], judgments: GradeLookup, n: int, min_grade: int = 1
) -> float:
    """Fraction of the top-``n`` results with grade >= ``min_grade``."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    top = ranking[:n]
    if not top:
        return 0.0
    hits = sum(1 for resource in top if _grade(judgments, resource) >= min_grade)
    return hits / len(top)


def average_precision(
    ranking: Sequence[str], judgments: GradeLookup, min_grade: int = 1
) -> float:
    """Binary average precision (relevant = grade >= ``min_grade``)."""
    relevant_total = sum(
        1 for grade in _positive_grades(judgments) if grade >= min_grade
    )
    if relevant_total == 0:
        return 0.0
    hits = 0
    cumulative = 0.0
    for position, resource in enumerate(ranking, start=1):
        if _grade(judgments, resource) >= min_grade:
            hits += 1
            cumulative += hits / position
    return cumulative / relevant_total
