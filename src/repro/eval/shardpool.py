"""Evaluation harness for the process-per-shard serving pool.

The pool's contract mirrors the sharded engine's — *parity at parallel
speed* — but across process boundaries: each worker interpreter scores
one shard with no shared GIL, so the fan-out speedup is real on
multi-core machines instead of the thread pool's serialized 0.43x.
:func:`pool_sweep` checks both halves in one pass: it times a
``rank_batch`` workload on the monolithic engine and on process pools of
increasing shard counts (saving each sharded layout to disk first, since
workers load from the manifest), verifies every pooled ranking against
the monolithic one with the shared tie-aware comparator
(:func:`~repro.eval.sharding.rankings_match`), asserts every fan-out was
complete (no degraded reads), and records per-worker cold-start load
time so mmap-vs-eager open cost shows up in the same report.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.eval.sharding import rankings_match
from repro.search.sharding import ShardedSearchEngine
from repro.search.shardpool import ShardPoolConfig, ShardProcessPool
from repro.utils.errors import ConfigurationError


def pool_sweep(
    engine,
    queries: Sequence[Sequence[str]],
    shard_counts: Sequence[int] = (1, 2, 4),
    top_k: Optional[int] = 10,
    repeats: int = 3,
    mmap: bool = True,
    directory: Optional[Union[str, Path]] = None,
    config: Optional[ShardPoolConfig] = None,
) -> List[Dict[str, object]]:
    """Time and parity-check process pools against a monolithic engine.

    For each shard count, partitions ``engine``, saves the sharded
    layout (``mmap_ready=mmap``) under ``directory`` (a temporary
    directory by default), opens a :class:`ShardProcessPool` over it,
    times ``rank_batch`` over ``queries`` (best of ``repeats``) and
    verifies every ranking.  The first returned row is the monolithic
    baseline (``Shards == 0``); pool rows carry the speedup relative to
    it plus the worst per-worker cold-start time.  Raises on any parity
    violation or degraded fan-out — a fast wrong (or partial) answer is
    not a result.
    """
    if not queries:
        raise ConfigurationError("pool_sweep needs a non-empty workload")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")

    baseline_seconds = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        want = engine.rank_batch(queries, top_k=top_k)
        baseline_seconds = min(baseline_seconds, time.perf_counter() - started)
    rows: List[Dict[str, object]] = [
        {
            "Shards": 0,
            "Engine": "monolithic",
            "Seconds": round(baseline_seconds, 6),
            "Queries/s": round(len(queries) / baseline_seconds, 1),
            "Speedup": 1.0,
            "Cold-start s": 0.0,
        }
    ]
    with tempfile.TemporaryDirectory() as default_dir:
        base_dir = Path(directory) if directory is not None else Path(default_dir)
        for num_shards in shard_counts:
            sharded = ShardedSearchEngine.from_engine(
                engine, num_shards=num_shards, cache_entries=None
            )
            save_dir = base_dir / f"pool-{num_shards}"
            try:
                sharded.save(save_dir, mmap_ready=mmap)
            finally:
                sharded.close()
            with ShardProcessPool(save_dir, config) as pool:
                seconds = float("inf")
                for _ in range(repeats):
                    started = time.perf_counter()
                    outcome = pool.rank_batch_detailed(queries, top_k=top_k)
                    seconds = min(seconds, time.perf_counter() - started)
                    if not outcome.complete:
                        raise ConfigurationError(
                            f"{num_shards}-shard pool fan-out degraded: "
                            f"{outcome.failures}"
                        )
                for got_results, want_results in zip(outcome.results, want):
                    if not rankings_match(
                        got_results,
                        want_results,
                        truncated=top_k is not None,
                    ):
                        raise ConfigurationError(
                            f"{num_shards}-shard pool rankings diverged "
                            "from the monolithic engine"
                        )
                cold_start = max(pool.worker_load_seconds())
            rows.append(
                {
                    "Shards": num_shards,
                    "Engine": f"{num_shards}-process pool",
                    "Seconds": round(seconds, 6),
                    "Queries/s": round(len(queries) / seconds, 1),
                    "Speedup": round(baseline_seconds / seconds, 2),
                    "Cold-start s": round(cold_start, 6),
                }
            )
    return rows
