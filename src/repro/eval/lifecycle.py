"""Refit-cadence sweep: how often to refit vs ranking drift vs cost.

The lifecycle subsystem (:mod:`repro.search.lifecycle`) makes full Tucker
refits free of serving pauses — but not free of CPU.  The operator knob
is *cadence*: how many mutation batches to absorb through cheap fold-in
before running a background refit.  :func:`lifecycle_sweep` measures the
trade-off on one deterministic mutation stream:

* **drift** — how far the never-refit engine's rankings (pure fold-in
  through the aging frozen model) wander from each refitting run's
  rankings, as mean top-k Jaccard distance over the trace's evaluation
  probes.  High drift at cadence 0 relative to the refitted runs is the
  cost of *not* refitting: the frozen model no longer describes the
  corpus.
* **cost** — refit count, total refit wall seconds and swap milliseconds
  per run.

Every run is additionally parity-checked: after the final mutation its
engine must match a scratch rebuild of the same corpus under that run's
own (post-swap) concept model at ``tol`` — a sweep row is only reported
for a run whose fold-in/replay machinery is provably exact.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.load.invariants import PARITY_TOL
from repro.load.workload import MUTATE, WorkloadTrace
from repro.utils.errors import ConfigurationError


def _topk_jaccard_distance(first, second) -> float:
    """1 - Jaccard overlap of two ranked lists' resource sets."""
    ours = {result.resource for result in first}
    theirs = {result.resource for result in second}
    if not ours and not theirs:
        return 0.0
    union = ours | theirs
    return 1.0 - len(ours & theirs) / len(union)


def lifecycle_sweep(
    folksonomy,
    pipeline_kwargs: Dict[str, object],
    trace: WorkloadTrace,
    cadences: Sequence[int] = (0, 8, 4, 2),
    top_k: Optional[int] = 10,
    tol: float = PARITY_TOL,
    use_process: bool = False,
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Replay ``trace``'s mutations at each refit cadence; rows + details.

    ``cadences`` are mutation-batch counts between refits; ``0`` means
    never refit (pure fold-in, the drift baseline) and must lead the
    sequence.  Each cadence gets a freshly fitted engine
    (``CubeLSIPipeline(**pipeline_kwargs)``), its own snapshot store in a
    temp directory, and the exact same mutation stream — the trace's
    ``MUTATE`` operations in order.  Refits run through a real
    :class:`~repro.search.lifecycle.RefitCoordinator` (in-thread by
    default so the sweep is cheap; ``use_process=True`` exercises the
    production path).  Raises :class:`ConfigurationError` when any run's
    final engine diverges from its scratch-rebuild oracle beyond ``tol``.

    Returns ``(rows, details)``: rows are ready for
    :func:`repro.eval.reporting.format_table`; details carry the raw
    per-run numbers (refit results, drift values, final generation).
    """
    # Deferred: repro.eval must stay importable without triggering the
    # search/serve import chain at package-import time.
    from repro.core.pipeline import CubeLSIPipeline
    from repro.core.snapshots import IndexSnapshotStore
    from repro.eval.sharding import rankings_match
    from repro.search.engine import (
        SearchEngine,
        concept_model_from_json,
        concept_model_to_json,
    )
    from repro.search.lifecycle import EngineHandle, RefitCoordinator

    cadences = list(cadences)
    if not cadences:
        raise ConfigurationError("lifecycle_sweep needs >= 1 cadence")
    if cadences[0] != 0:
        raise ConfigurationError(
            "the first cadence must be 0 (the never-refit drift baseline), "
            f"got {tuple(cadences)}"
        )
    if any(cadence < 0 for cadence in cadences):
        raise ConfigurationError(f"cadences must be >= 0, got {tuple(cadences)}")
    mutations = [op for op in trace.operations if op.kind == MUTATE]
    if not mutations:
        raise ConfigurationError(
            "the trace carries no mutation operations; there is nothing to "
            "sweep a refit cadence over"
        )
    probes = [list(query) for query in trace.eval_queries]

    rows: List[Dict[str, object]] = []
    details: List[Dict[str, object]] = []
    baseline_rankings = None
    for cadence in cadences:
        fitted = CubeLSIPipeline(**pipeline_kwargs).fit(folksonomy)
        handle = EngineHandle(fitted.engine, folksonomy=fitted.folksonomy)
        refit_results = []
        with tempfile.TemporaryDirectory() as directory:
            coordinator = RefitCoordinator(
                handle,
                IndexSnapshotStore(directory),
                pipeline_kwargs=pipeline_kwargs,
                use_process=use_process,
            )
            for position, op in enumerate(mutations, start=1):
                handle.apply_mutations(
                    added=op.added, updated=op.updated, removed=op.removed
                )
                if cadence and position % cadence == 0:
                    refit_results.append(coordinator.refit())
            handle.refresh()
            _, rankings = handle.snapshot_rank_batch(probes, top_k=top_k)

            # Parity oracle: fold-in + journal replay must equal a scratch
            # rebuild of the final corpus under this run's final model.
            scratch = SearchEngine.build(
                handle.folksonomy,
                concept_model_from_json(
                    concept_model_to_json(handle.concept_model)
                ),
            )
            scratch.refresh()
            _, scratch_rankings = scratch.snapshot_rank_batch(
                probes, top_k=top_k
            )
            truncated = top_k is not None
            for probe, (got, want) in enumerate(
                zip(rankings, scratch_rankings)
            ):
                if not rankings_match(got, want, tol=tol, truncated=truncated):
                    raise ConfigurationError(
                        f"cadence {cadence}: probe {probe} diverged from the "
                        f"scratch rebuild beyond {tol:g}"
                    )

        if baseline_rankings is None:
            baseline_rankings = rankings
            drifts = [0.0 for _ in rankings]
        else:
            drifts = [
                _topk_jaccard_distance(results, baseline)
                for results, baseline in zip(rankings, baseline_rankings)
            ]
        mean_drift = sum(drifts) / len(drifts) if drifts else 0.0
        refit_wall = sum(result.refit_wall_seconds for result in refit_results)
        swap_ms = sum(result.swap_seconds for result in refit_results) * 1e3
        rows.append(
            {
                "Cadence": cadence if cadence else "never",
                "Refits": len(refit_results),
                "Generation": handle.generation,
                "Final epoch": handle.epoch,
                "Drift vs fold-in": f"{mean_drift:.3f}",
                "Refit s": round(refit_wall, 3),
                "Swap ms": round(swap_ms, 2),
            }
        )
        details.append(
            {
                "cadence": cadence,
                "refits": refit_results,
                "drifts": drifts,
                "mean_drift": mean_drift,
                "generation": handle.generation,
                "final_epoch": handle.epoch,
            }
        )
    return rows, details
