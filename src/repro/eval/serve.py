"""Batch-window sweep for the micro-batching serving front-end.

:func:`frontend_sweep` answers the tuning question every deployment of
:class:`~repro.serve.frontend.BatchingFrontend` faces: *how wide should
the micro-batch window be?*  It drives one engine with the same query
workload from ``num_clients`` concurrent client threads — each client
submits single queries and blocks on its own future, the access pattern
the front-end exists for — once per ``(max_batch_size, max_wait_ms)``
window configuration, and returns rows for
:func:`repro.eval.reporting.format_table`: throughput, end-to-end latency
quantiles, the batch sizes the window actually formed, and how many
submissions were coalesced away.

Every response is verified against a direct ``rank_batch`` of the full
workload (the tie-aware :func:`repro.eval.sharding.rankings_match`
comparator, same 1e-9 bar as the sharded parity suites); a window that
returned a diverging ranking raises instead of reporting — a throughput
table is worthless if the batching path changed the answers.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.sharding import rankings_match
from repro.serve.frontend import BatchingFrontend, FrontendConfig
from repro.serve.metrics import MetricsRegistry
from repro.utils.errors import ConfigurationError

#: Default window grid: no batching (the baseline), a narrow window, and
#: a wide window.
DEFAULT_WINDOWS: Tuple[Tuple[int, float], ...] = (
    (1, 0.0),
    (8, 2.0),
    (32, 5.0),
)


def frontend_sweep(
    engine,
    queries: Sequence[Sequence[str]],
    windows: Sequence[Tuple[int, float]] = DEFAULT_WINDOWS,
    num_clients: int = 4,
    top_k: Optional[int] = 10,
    tol: float = 1e-9,
) -> Tuple[List[Dict[str, object]], List[MetricsRegistry]]:
    """Run the client workload once per window; return rows + registries.

    ``engine`` is any epoch-consistent serving engine (monolithic or
    sharded); it is *shared* across windows — the workload is read-only —
    and any result cache it carries is cleared before each run so every
    window starts cold and the comparison stays fair.  Rows are ordered
    like ``windows``; the returned registries hold the full per-window
    metrics (stage histograms, batch-size distributions) for callers that
    want more than the table.
    """
    if not queries:
        raise ConfigurationError("frontend_sweep needs >= 1 query")
    if num_clients < 1:
        raise ConfigurationError(
            f"num_clients must be >= 1, got {num_clients}"
        )
    if not windows:
        raise ConfigurationError("frontend_sweep needs >= 1 window config")
    queries = [list(tags) for tags in queries]
    want = engine.rank_batch(queries, top_k=top_k)

    rows: List[Dict[str, object]] = []
    registries: List[MetricsRegistry] = []
    for max_batch_size, max_wait_ms in windows:
        cache = getattr(engine, "cache", None)
        if cache is not None:
            cache.clear()
        config = FrontendConfig(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            # Cold per window: the sweep measures batching, not caching.
            cache_entries=0,
        )
        with BatchingFrontend(engine, config, name="sweep") as frontend:
            got: List[Optional[list]] = [None] * len(queries)
            failures: List[str] = []

            def client(client_id: int) -> None:
                try:
                    for position in range(
                        client_id, len(queries), num_clients
                    ):
                        got[position] = frontend.query(
                            queries[position], top_k=top_k
                        )
                except Exception as error:  # noqa: BLE001 - report, don't hang
                    failures.append(f"client {client_id}: {error!r}")

            threads = [
                threading.Thread(
                    target=client, args=(client_id,), name=f"sweep-{client_id}"
                )
                for client_id in range(num_clients)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - started
            registry = frontend.metrics
        if failures:
            raise ConfigurationError(
                f"window ({max_batch_size}, {max_wait_ms}ms) clients "
                "failed:\n" + "\n".join(failures)
            )

        truncated = top_k is not None
        for position, (got_results, want_results) in enumerate(
            zip(got, want)
        ):
            if got_results is None or not rankings_match(
                got_results, want_results, tol=tol, truncated=truncated
            ):
                raise ConfigurationError(
                    f"window ({max_batch_size}, {max_wait_ms}ms) diverged "
                    f"from the direct rank_batch on query {position} "
                    f"({queries[position]!r}) beyond {tol:g}"
                )

        total = registry.latency("stage.total")
        sizes = registry.size_distribution("batch_distinct_queries")
        rows.append(
            {
                "Batch": max_batch_size,
                "Wait ms": max_wait_ms,
                "Seconds": round(wall, 6),
                "Queries/s": round(len(queries) / wall, 1),
                "p50": f"{total.quantile(0.5) * 1e3:.2f}ms",
                "p99": f"{total.quantile(0.99) * 1e3:.2f}ms",
                "Mean batch": round(sizes.mean, 2),
                "Max batch": sizes.max,
                "Coalesced": registry.counter("coalesced"),
            }
        )
        registries.append(registry)
    return rows, registries
