"""Experiment harness: run rankers over a dataset and a query workload.

The harness captures everything the paper's evaluation section reports about
ranking methods:

* mean NDCG@N curves per method (Figure 4),
* offline pre-processing time per method (Table V, Figure 5),
* total and mean online query time per method (Table VI).

The harness is deliberately ranker-agnostic — anything implementing
:class:`repro.baselines.base.Ranker` can participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.baselines.base import Ranker
from repro.datasets.queries import QueryWorkload
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError

#: The NDCG cutoffs reported in Figure 4 of the paper.
DEFAULT_NDCG_CUTOFFS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20)


@dataclass
class MethodEvaluation:
    """All measurements collected for a single ranking method."""

    method: str
    ndcg_by_cutoff: Dict[int, float] = field(default_factory=dict)
    fit_seconds: float = 0.0
    query_seconds_total: float = 0.0
    queries_processed: int = 0
    rankings: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def mean_query_seconds(self) -> float:
        if self.queries_processed == 0:
            return 0.0
        return self.query_seconds_total / self.queries_processed

    def ndcg_series(self, cutoffs: Sequence[int]) -> List[float]:
        """NDCG values in cutoff order (for figure-style output)."""
        return [self.ndcg_by_cutoff.get(int(n), 0.0) for n in cutoffs]


@dataclass
class RankingEvaluation:
    """Results for every method on one dataset/workload pair."""

    dataset_name: str
    cutoffs: Sequence[int]
    methods: Dict[str, MethodEvaluation] = field(default_factory=dict)

    def method_names(self) -> List[str]:
        return list(self.methods)

    def best_method_at(self, cutoff: int) -> str:
        """The method with the highest NDCG at ``cutoff``."""
        if not self.methods:
            raise ConfigurationError("no methods were evaluated")
        return max(
            self.methods.values(),
            key=lambda m: m.ndcg_by_cutoff.get(cutoff, 0.0),
        ).method

    def ndcg_table(self) -> List[Dict[str, object]]:
        """Rows of ``method x cutoff`` NDCG values (Figure 4 as a table)."""
        rows = []
        for name, evaluation in self.methods.items():
            row: Dict[str, object] = {"Method": name}
            for cutoff in self.cutoffs:
                row[f"NDCG@{cutoff}"] = round(
                    evaluation.ndcg_by_cutoff.get(cutoff, 0.0), 4
                )
            rows.append(row)
        return rows

    def timing_table(self) -> List[Dict[str, object]]:
        """Rows of offline/online timing per method (Tables V and VI)."""
        rows = []
        for name, evaluation in self.methods.items():
            rows.append(
                {
                    "Method": name,
                    "Pre-processing (s)": round(evaluation.fit_seconds, 4),
                    "Query total (s)": round(evaluation.query_seconds_total, 4),
                    "Query mean (s)": round(evaluation.mean_query_seconds, 6),
                    "Queries": evaluation.queries_processed,
                }
            )
        return rows


class RankingExperiment:
    """Fits rankers on a folksonomy and scores them on a query workload."""

    def __init__(
        self,
        folksonomy: Folksonomy,
        workload: QueryWorkload,
        cutoffs: Sequence[int] = DEFAULT_NDCG_CUTOFFS,
        max_rank_depth: Optional[int] = None,
        pooled: bool = True,
        batched: bool = True,
    ) -> None:
        if len(workload) == 0:
            raise ConfigurationError("the query workload is empty")
        self._folksonomy = folksonomy
        self._workload = workload
        self._cutoffs = tuple(int(c) for c in cutoffs)
        if not self._cutoffs:
            raise ConfigurationError("at least one NDCG cutoff is required")
        self._max_rank_depth = max_rank_depth or max(self._cutoffs)
        self._pooled = pooled
        self._batched = batched

    @property
    def cutoffs(self) -> Sequence[int]:
        return self._cutoffs

    def run(self, rankers: Mapping[str, Ranker]) -> RankingEvaluation:
        """Fit and evaluate every ranker; returns the combined results.

        With ``pooled=True`` (default) the relevance judgments of each query
        are restricted to the union of resources returned by *any* evaluated
        method, mirroring the paper's user study where judges only rated
        returned resources.  NDCG is computed after all rankers have
        produced their lists so the pool is identical for every method.
        """
        if not rankers:
            raise ConfigurationError("no rankers supplied")
        evaluation = RankingEvaluation(
            dataset_name=self._folksonomy.name, cutoffs=self._cutoffs
        )
        for name, ranker in rankers.items():
            evaluation.methods[name] = self._run_single(name, ranker)

        judgments = self._pooled_judgments(evaluation) if self._pooled else {
            query.query_id: self._workload.judgments_for(query)
            for query in self._workload
        }
        for method in evaluation.methods.values():
            method.ndcg_by_cutoff = {
                cutoff: self._mean_ndcg(method.rankings, judgments, cutoff)
                for cutoff in self._cutoffs
            }
        return evaluation

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _run_single(self, name: str, ranker: Ranker) -> MethodEvaluation:
        ranker.fit(self._folksonomy)

        rankings: Dict[str, List[str]] = {}
        if self._batched:
            # Fast path: score the whole workload in one shot so rankers
            # with a matrix backend do a single batched top-k pass.
            queries = list(self._workload)
            ranked_lists = ranker.rank_batch(
                [list(query.tags) for query in queries], top_k=self._max_rank_depth
            )
            for query, ranked in zip(queries, ranked_lists):
                rankings[query.query_id] = [resource for resource, _ in ranked]
        else:
            for query in self._workload:
                ranked = ranker.ranked_resources(
                    list(query.tags), top_k=self._max_rank_depth
                )
                rankings[query.query_id] = ranked

        return MethodEvaluation(
            method=name,
            ndcg_by_cutoff={},
            fit_seconds=ranker.timings.fit_seconds,
            query_seconds_total=ranker.timings.query_seconds_total,
            queries_processed=ranker.timings.queries_processed,
            rankings=rankings,
        )

    def _pooled_judgments(self, evaluation: RankingEvaluation):
        """Per-query judgments restricted to the pooled returned resources."""
        from repro.datasets.queries import RelevanceJudgments

        pooled: Dict[str, RelevanceJudgments] = {}
        for query in self._workload:
            pool = set()
            for method in evaluation.methods.values():
                pool.update(method.rankings.get(query.query_id, []))
            full = self._workload.judgments_for(query)
            pooled[query.query_id] = RelevanceJudgments(
                query_id=query.query_id,
                grades={r: g for r, g in full.grades.items() if r in pool},
            )
        return pooled

    def _mean_ndcg(self, rankings, judgments, cutoff: int) -> float:
        from repro.eval.ndcg import ndcg_at

        scores = []
        for query in self._workload:
            judgment = judgments[query.query_id]
            if not judgment.ideal_gains():
                continue
            scores.append(ndcg_at(rankings.get(query.query_id, []), judgment, cutoff))
        return float(sum(scores) / len(scores)) if scores else 0.0
