"""Micro-batching front-end: concurrent single queries, batched matmuls.

The batched scoring path (``rank_batch``: one sparse/BLAS matmul for a
whole query set) is ~20x faster per query than the one-at-a-time path,
but production traffic arrives as concurrent *single* queries — each
client submits one tag query and waits for its own answer.
:class:`BatchingFrontend` closes that gap:

* :meth:`BatchingFrontend.submit` is the client surface — it enqueues one
  query and immediately returns a :class:`~concurrent.futures.Future`;
* a dedicated batcher thread coalesces everything that arrives within a
  micro-batch window (flush on ``max_batch_size`` distinct queries or
  ``max_wait_ms`` after the oldest enqueue, whichever first) into one
  epoch-consistent ``snapshot_rank_batch`` call against the engine;
* identical in-flight queries (canonical tag multiset + ``top_k``) are
  *deduplicated* — scored once, fanned out to every waiter;
* an :class:`~repro.serve.admission.AdmissionController` bounds the
  in-flight queue and sheds the overflow with typed
  :class:`~repro.serve.admission.Overloaded` errors;
* every stage records into a :class:`~repro.serve.metrics.MetricsRegistry`
  (queue wait, engine call, end-to-end latency, batch-size distribution,
  shed/error counters) ready for Prometheus-style scraping.

The front-end works against anything exposing the epoch-consistent read
surface (``snapshot_rank_batch`` + ``epoch``): the monolithic
:class:`~repro.search.engine.SearchEngine`, the sharded
:class:`~repro.search.sharding.ShardedSearchEngine`, the multiprocess
:class:`~repro.search.shardpool.ShardProcessPool`, or a test stub.
Engines that report operational health (the process pool's
:meth:`~repro.search.shardpool.ShardProcessPool.health`) have that
snapshot folded into :meth:`BatchingFrontend.stats` under
``engine_health``, so one scrape covers the whole serving column.

Result caching
--------------
When the engine carries its own :class:`~repro.search.cache.QueryCache`
(the sharded engine does), the front-end *stays out of the way*: the
engine probes and fills that cache inside its read lock with per-batch
dedup, so each unique query counts exactly one hit or miss — a
front-end-level probe of the same cache would double-count every lookup.
When the engine has no cache, the front-end owns one and probes it before
a query enters a batch (a hit resolves the future without touching the
engine at all) and fills it after the batch returns, keyed by the exact
epoch the batch was scored against, so a stale entry can never be served.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from threading import Condition, Thread
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.search.cache import DEFAULT_MAX_ENTRIES, QueryCache
from repro.search.matrix_space import validate_top_k
from repro.search.vsm import RankedResult
from repro.serve.admission import AdmissionController
from repro.serve.metrics import MetricsRegistry
from repro.utils.errors import ConfigurationError, ReproError


class FrontendClosed(ReproError):
    """A query was submitted to a front-end that has been closed."""


@dataclass(frozen=True)
class FrontendConfig:
    """Tuning knobs of the micro-batch window and the admission bound.

    ``max_batch_size`` counts *distinct* queries per engine call (a
    hundred waiters on one hot query are one matmul row, so they never
    delay the flush); ``max_wait_ms`` bounds how long the oldest request
    may sit waiting for company, trading per-query latency for batch
    amortization (``0`` flushes greedily: whatever has accumulated by the
    time the batcher thread is free forms the batch).  ``cache_entries``
    sizes the front-end-owned result cache and is only consulted when the
    engine does not bring its own (``0``/``None`` disables it).
    ``tenant_max_pending`` caps how many tickets any one tenant-tagged
    submitter may hold (``None`` disables per-tenant quotas), so a single
    tenant's burst sheds against its own allowance before it can exhaust
    ``max_pending`` for everyone.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_pending: int = 1024
    cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    tenant_max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0.0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.cache_entries is not None and self.cache_entries < 0:
            raise ConfigurationError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if self.tenant_max_pending is not None and self.tenant_max_pending < 1:
            raise ConfigurationError(
                "tenant_max_pending must be >= 1, got "
                f"{self.tenant_max_pending}"
            )


class QueryResponse(NamedTuple):
    """What a resolved future carries: results plus their provenance."""

    epoch: int
    results: List[RankedResult]
    cached: bool


class _Request:
    """One waiter: its query, its future, and when it entered the queue."""

    __slots__ = ("key", "tags", "top_k", "future", "enqueued", "tenant")

    def __init__(
        self,
        key: Tuple[Tuple[str, ...], Optional[int]],
        tags: List[str],
        top_k: Optional[int],
        future: "Future[QueryResponse]",
        enqueued: float,
        tenant: Optional[str] = None,
    ) -> None:
        self.key = key
        self.tags = tags
        self.top_k = top_k
        self.future = future
        self.enqueued = enqueued
        self.tenant = tenant


class BatchingFrontend:
    """Coalesces concurrent ``submit`` calls into batched engine reads.

    Construct it around a built engine and use it as a context manager
    (or call :meth:`close`) so the batcher thread is released::

        with BatchingFrontend(engine, FrontendConfig(max_wait_ms=2)) as fe:
            future = fe.submit(["jazz", "piano"], top_k=10)
            response = future.result()      # QueryResponse(epoch, results, cached)

    Thread-safe: any number of threads may submit concurrently; one
    internal batcher thread executes batches strictly in formation order,
    so two batches never interleave on the engine and per-client response
    order follows submission order.
    """

    def __init__(
        self,
        engine,
        config: Optional[FrontendConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "frontend",
    ) -> None:
        for attribute in ("snapshot_rank_batch", "epoch"):
            if not hasattr(engine, attribute):
                raise ConfigurationError(
                    "BatchingFrontend needs an engine exposing "
                    f"snapshot_rank_batch and epoch; {type(engine).__name__} "
                    f"lacks {attribute!r}"
                )
        self.engine = engine
        self.config = config or FrontendConfig()
        self.metrics = metrics or MetricsRegistry()
        self.name = name
        self.admission = AdmissionController(
            self.config.max_pending,
            tenant_max_pending=self.config.tenant_max_pending,
        )
        engine_cache = getattr(engine, "cache", None)
        if engine_cache is not None:
            # The engine probes/fills its own cache inside the read lock
            # (with per-batch dedup); a second probe here would count
            # every lookup twice.
            self.cache: Optional[QueryCache] = engine_cache
            self._cache_is_engines = True
        elif self.config.cache_entries:
            self.cache = QueryCache(self.config.cache_entries)
            self._cache_is_engines = False
        else:
            self.cache = None
            self._cache_is_engines = False
        register = getattr(engine, "add_swap_listener", None)
        if callable(register):
            # Lifecycle-managed engines (an EngineHandle) announce hot
            # generation swaps; the front-end flushes its cache — a new
            # generation is a new concept model — and counts the event.
            register(self._on_generation_swap)
        self._cond = Condition()
        self._pending: List[_Request] = []
        self._closed = False
        self._thread = Thread(
            target=self._batch_loop, name=f"{name}-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        query_tags: Sequence[str],
        top_k: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> "Future[QueryResponse]":
        """Enqueue one query; returns a future for its ranked results.

        ``tenant`` attributes the request for per-tenant admission quotas
        and stats; untagged requests count only against the global bound.
        Raises :class:`~repro.serve.admission.Overloaded` immediately when
        the in-flight bound (global or tenant quota) is hit — the request
        is shed, not queued — and :class:`FrontendClosed` after
        :meth:`close`.
        """
        validate_top_k(top_k)
        tags = list(query_tags)
        key = (tuple(sorted(tags)), top_k)
        try:
            depth = self.admission.admit(tenant=tenant)
        except Exception:
            self.metrics.increment("shed")
            raise
        future: "Future[QueryResponse]" = Future()
        request = _Request(
            key, tags, top_k, future, time.perf_counter(), tenant=tenant
        )
        with self._cond:
            if self._closed:
                self.admission.release(tenant=tenant)
                raise FrontendClosed(
                    f"front-end {self.name!r} is closed; no new queries"
                )
            self._pending.append(request)
            self._cond.notify_all()
        self.metrics.increment("submitted")
        self.metrics.set_gauge("queue_depth", depth)
        return future

    def query(
        self,
        query_tags: Sequence[str],
        top_k: Optional[int] = None,
    ) -> List[RankedResult]:
        """Synchronous convenience: submit and wait for the results."""
        return self.submit(query_tags, top_k=top_k).result().results

    def stats(self) -> Dict[str, object]:
        """One dict: metrics snapshot, admission state, cache stats.

        When the engine reports operational health (the process pool's
        ``health()``, or an :class:`~repro.search.lifecycle.EngineHandle`'s
        generation/epoch/staleness snapshot — which separates the
        ``fold_in_due`` and ``refit_due`` verdicts), that snapshot is
        included under ``engine_health`` — worker states, drift alarms and
        generation swaps surface through the same endpoint as the
        front-end's own metrics.
        """
        payload = self.metrics.snapshot()
        payload["admission"] = {
            "pending": self.admission.pending,
            "max_pending": self.admission.max_pending,
            "shed": self.admission.shed,
            "tenant_max_pending": self.admission.tenant_max_pending,
            "tenants": self.admission.tenant_stats(),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
            payload["cache_owner"] = (
                "engine" if self._cache_is_engines else "frontend"
            )
        generation = getattr(self.engine, "generation", None)
        if generation is not None:
            payload["engine_generation"] = generation
        health = getattr(self.engine, "health", None)
        if callable(health):
            payload["engine_health"] = health()
        return payload

    def _on_generation_swap(self, generation: int) -> None:
        """Swap-listener hook: flush the owned cache, count the event."""
        self.metrics.increment("generation_swaps")
        self.metrics.set_gauge("engine_generation", generation)
        if self.cache is not None and not self._cache_is_engines:
            self.cache.invalidate_generation(generation)

    def close(self) -> None:
        """Drain every pending request, then stop the batcher (idempotent)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join()

    def __enter__(self) -> "BatchingFrontend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Batcher thread
    # ------------------------------------------------------------------ #
    def _batch_loop(self) -> None:
        try:
            while True:
                batch = self._collect_batch()
                if batch is None:
                    return
                self._execute_batch(batch)
        except BaseException as error:  # noqa: BLE001 - never die silently
            # A batcher bug must not strand waiters on futures that will
            # never resolve: fail everything pending, refuse new work.
            with self._cond:
                self._closed = True
                stranded = self._pending
                self._pending = []
                self._cond.notify_all()
            self.metrics.increment("errors", len(stranded))
            self._fail(stranded, error)
            raise

    def _collect_batch(
        self,
    ) -> Optional["OrderedDict[Tuple, List[_Request]]"]:
        """Block until a batch forms; ``None`` once closed and drained.

        The window starts at the *oldest* pending request: flush when
        ``max_batch_size`` distinct queries have accumulated, when
        ``max_wait_ms`` has elapsed, or when the front-end is closing
        (close still drains, so no future is ever abandoned).  Requests
        beyond the size limit stay queued, in order, for the next batch;
        duplicates of a query already in the batch always ride along.
        """
        max_wait = self.config.max_wait_ms / 1000.0
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                self._cond.wait()
            deadline = self._pending[0].enqueued + max_wait
            while not self._closed:
                distinct = len({request.key for request in self._pending})
                if distinct >= self.config.max_batch_size:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            groups: "OrderedDict[Tuple, List[_Request]]" = OrderedDict()
            overflow: List[_Request] = []
            for request in self._pending:
                if request.key in groups:
                    groups[request.key].append(request)
                elif len(groups) < self.config.max_batch_size:
                    groups[request.key] = [request]
                else:
                    overflow.append(request)
            self._pending = overflow
            return groups

    def _execute_batch(
        self, groups: "OrderedDict[Tuple, List[_Request]]"
    ) -> None:
        try:
            self._execute_batch_inner(groups)
        except BaseException as error:  # noqa: BLE001 - fail, don't strand
            stranded = [
                request
                for requests in groups.values()
                for request in requests
                if not request.future.done()
            ]
            self.metrics.increment("errors", len(stranded))
            self._fail(stranded, error)
            if not isinstance(error, Exception):
                # SystemExit/KeyboardInterrupt must still tear the
                # batcher down (the loop's handler drains the queue);
                # this batch's waiters were failed above first.
                raise

    def _execute_batch_inner(
        self, groups: "OrderedDict[Tuple, List[_Request]]"
    ) -> None:
        dispatched = time.perf_counter()
        waiters = sum(len(requests) for requests in groups.values())
        self.metrics.increment("batches")
        self.metrics.increment("coalesced", waiters - len(groups))
        self.metrics.observe_size("batch_distinct_queries", len(groups))
        self.metrics.observe_size("batch_waiters", waiters)
        for requests in groups.values():
            for request in requests:
                self.metrics.observe_latency(
                    "stage.queue", dispatched - request.enqueued
                )

        # Everything below resolves the whole batch against ONE epoch, so
        # a client pipelining several submits can never observe the epoch
        # run backwards across its own futures: batches execute strictly
        # in order and the engine's epoch is monotone, so batch N+1's
        # epoch >= batch N's.
        own_cache = self.cache is not None and not self._cache_is_engines
        hits: "OrderedDict[Tuple, List[RankedResult]]" = OrderedDict()
        misses: "OrderedDict[Tuple, List[_Request]]" = groups
        probe_epoch = 0
        if own_cache:
            probe_epoch = self.engine.epoch
            misses = OrderedDict()
            for key, requests in groups.items():
                sorted_tags, top_k = key
                hit = self.cache.get(
                    QueryCache.canonical_key(sorted_tags, top_k, probe_epoch)
                )
                if hit is None:
                    misses[key] = requests
                else:
                    hits[key] = hit
        if not misses:
            for key, results in hits.items():
                self._resolve(groups[key], probe_epoch, results, cached=True)
            return

        try:
            epoch, ranked = self._rank_keys(misses)
            if own_cache and hits and epoch != probe_epoch:
                # A mutation landed between the cache probe and the
                # snapshot: the hits describe an older index state than
                # the misses.  Re-rank the *whole* batch in one snapshot
                # call so every waiter still shares one epoch (rare:
                # costs one wasted engine call only when a write races
                # the window).
                misses = groups
                epoch, ranked = self._rank_keys(misses)
                hits.clear()  # resolved below from the re-rank instead
        except Exception as error:  # noqa: BLE001 - fail only the misses
            # Cache hits are still valid answers for the epoch they were
            # probed at; only the queries that needed the engine fail.
            for key, results in hits.items():
                self._resolve(groups[key], probe_epoch, results, cached=True)
            stranded = [
                request
                for key, requests in misses.items()
                if key not in hits
                for request in requests
            ]
            self.metrics.increment("errors", len(stranded))
            self._fail(stranded, error)
            return

        for key, results in zip(misses, ranked):
            sorted_tags, top_k = key
            sliced = results if top_k is None else results[:top_k]
            if own_cache:
                self.cache.put(
                    QueryCache.canonical_key(sorted_tags, top_k, epoch),
                    sliced,
                )
            self._resolve(misses[key], epoch, sliced, cached=False)
        for key, results in hits.items():
            # Only reached when epoch == probe_epoch: hits and misses
            # describe the same index state.
            self._resolve(groups[key], probe_epoch, results, cached=True)

    def _rank_keys(
        self, grouped: "OrderedDict[Tuple, List[_Request]]"
    ) -> Tuple[int, List[list]]:
        """One epoch-consistent engine call covering every key.

        Keys may carry different ``top_k`` values but an engine call
        takes one, so the batch is scored at the *widest* requested depth
        (``None`` if any key wants the full ranking) and each key's
        results are sliced down afterwards — sound because a ranking is a
        strict total order (descending score, ascending resource id), so
        a top-k list is a prefix of any deeper list.  One call means one
        epoch for the whole batch, the property the monotonicity argument
        above rests on.
        """
        top_ks = [key[1] for key in grouped]
        effective = None if any(k is None for k in top_ks) else max(top_ks)
        queries = [requests[0].tags for requests in grouped.values()]
        started = time.perf_counter()
        epoch, ranked = self.engine.snapshot_rank_batch(
            queries, top_k=effective
        )
        self.metrics.observe_latency(
            "stage.engine", time.perf_counter() - started
        )
        if len(ranked) != len(queries):
            raise ConfigurationError(
                f"engine returned {len(ranked)} result lists for "
                f"{len(queries)} queries; the batch cannot be resolved"
            )
        return epoch, ranked

    def _resolve(
        self,
        requests: List[_Request],
        epoch: int,
        results: Sequence[RankedResult],
        cached: bool,
    ) -> None:
        """Fan one scored result list out to every waiter on the query."""
        for request in requests:
            if request.future.set_running_or_notify_cancel():
                request.future.set_result(
                    QueryResponse(epoch, list(results), cached)
                )
            self._finish(request)

    def _fail(self, requests: List[_Request], error: BaseException) -> None:
        """Resolve every waiter exceptionally; tickets are still released."""
        for request in requests:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(error)
            self._finish(request)

    def _finish(self, request: _Request) -> None:
        depth = self.admission.release(tenant=request.tenant)
        self.metrics.increment("completed")
        self.metrics.set_gauge("queue_depth", depth)
        self.metrics.observe_latency(
            "stage.total", time.perf_counter() - request.enqueued
        )

    def __repr__(self) -> str:
        return (
            f"BatchingFrontend(name={self.name!r}, "
            f"engine={type(self.engine).__name__}, "
            f"max_batch_size={self.config.max_batch_size}, "
            f"max_wait_ms={self.config.max_wait_ms})"
        )
