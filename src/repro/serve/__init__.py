"""Serving front-end: micro-batching, admission control, live metrics.

The online engines answer *batches* ~20x faster per query than single
calls, but production traffic is concurrent single queries.  This package
is the layer in between:

* :mod:`repro.serve.frontend` — :class:`BatchingFrontend` coalesces
  concurrent ``submit(tags, top_k)`` calls under a micro-batch window
  into single epoch-consistent ``snapshot_rank_batch`` reads,
  deduplicating identical in-flight queries and resolving one future per
  caller;
* :mod:`repro.serve.admission` — :class:`AdmissionController` bounds the
  in-flight queue and sheds overflow with typed :class:`Overloaded`
  errors instead of unbounded queueing;
* :mod:`repro.serve.metrics` — :class:`MetricsRegistry` records per-stage
  latency histograms, batch-size distributions, queue depth and
  shed/error counters, and exports them in the Prometheus text format.
"""

from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.frontend import (
    BatchingFrontend,
    FrontendClosed,
    FrontendConfig,
    QueryResponse,
)
from repro.serve.metrics import MetricsRegistry, SizeDistribution

__all__ = [
    "AdmissionController",
    "Overloaded",
    "BatchingFrontend",
    "FrontendClosed",
    "FrontendConfig",
    "QueryResponse",
    "MetricsRegistry",
    "SizeDistribution",
]
