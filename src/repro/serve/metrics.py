"""Serving telemetry: one registry for everything the front-end measures.

The batching front-end's whole value proposition — "coalescing concurrent
queries into one matmul is faster" — is a *measured* claim, so the
subsystem carries its own instrumentation instead of relying on ad-hoc
prints:

* **per-stage latency histograms** — the log-spaced
  :class:`~repro.load.runner.LatencyHistogram` the workload replay runner
  already uses (one histogram covers microsecond cache hits and
  multi-second refreshes), guarded here by the registry lock because the
  front-end records from submitter threads *and* the batcher thread;
* **counters** — monotone totals (requests submitted, completed, shed,
  coalesced, errors, cache hits/misses);
* **gauges** — last-written values (queue depth, in-flight batch size);
* **size distributions** — exact per-value counts for small integer
  observations (batch sizes), so "what batch sizes did the window
  actually form?" has a precise answer, not a bucketed estimate.

:meth:`MetricsRegistry.export_text` renders everything in the
Prometheus text exposition format (``# TYPE`` comments, cumulative
``_bucket{le="..."}`` histogram series), so a scrape endpoint only has to
serve the string.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.load.runner import LatencyHistogram
from repro.utils.errors import ConfigurationError


class SizeDistribution:
    """Exact counts of small non-negative integer observations.

    Batch sizes are tiny integers, so instead of log-bucketing them the
    distribution keeps one exact count per observed value — mean, max and
    quantiles are then exact, and the export lists every observed size.
    Not thread-safe on its own; the owning registry serializes access.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def record(self, value: int) -> None:
        if value < 0:
            raise ConfigurationError(f"size must be >= 0, got {value}")
        value = int(value)
        self._counts[value] = self._counts.get(value, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> int:
        return max(self._counts) if self._counts else 0

    def quantile(self, q: float) -> int:
        """The smallest observed value covering the ``q``-quantile."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0
        target = q * self.count
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= target:
                return value
        return self.max

    def counts(self) -> Dict[int, int]:
        """A copy of the per-value counts (export + assertions)."""
        return dict(self._counts)


def _metric_name(prefix: str, name: str) -> str:
    """Prometheus-legal metric name: dots and dashes become underscores."""
    cleaned = name.replace(".", "_").replace("-", "_").replace(" ", "_")
    return f"{prefix}_{cleaned}" if prefix else cleaned


class MetricsRegistry:
    """Thread-safe counters, gauges, latency histograms and distributions.

    All mutation goes through one lock: the front-end records from many
    submitter threads plus the batcher thread, and a scrape
    (:meth:`export_text` / :meth:`snapshot`) must see an internally
    consistent view (a completed request is never counted in ``completed``
    while missing from its latency histogram's ``count``).
    """

    def __init__(self, prefix: str = "repro_serve") -> None:
        self._prefix = prefix
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyHistogram] = {}
        self._sizes: Dict[str, SizeDistribution] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at zero)."""
        if amount < 0:
            raise ConfigurationError(
                f"counters are monotone; cannot add {amount} to {name!r}"
            )
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe_latency(self, name: str, seconds: float) -> None:
        """Record one latency sample into the histogram ``name``."""
        with self._lock:
            histogram = self._latencies.get(name)
            if histogram is None:
                histogram = self._latencies[name] = LatencyHistogram()
            histogram.record(seconds)

    def observe_size(self, name: str, value: int) -> None:
        """Record one integer sample into the distribution ``name``."""
        with self._lock:
            distribution = self._sizes.get(name)
            if distribution is None:
                distribution = self._sizes[name] = SizeDistribution()
            distribution.record(value)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def latency(self, name: str) -> LatencyHistogram:
        """A merged *copy* of the histogram ``name`` (empty if unknown).

        A copy, so callers can quantile/summarize it without racing the
        recording threads.
        """
        with self._lock:
            merged = LatencyHistogram()
            histogram = self._latencies.get(name)
            if histogram is not None:
                merged.merge(histogram)
            return merged

    def size_distribution(self, name: str) -> SizeDistribution:
        """A copy of the distribution ``name`` (empty if unknown)."""
        with self._lock:
            copied = SizeDistribution()
            distribution = self._sizes.get(name)
            if distribution is not None:
                for value, count in distribution.counts().items():
                    copied._counts[value] = count
                copied.count = distribution.count
                copied.total = distribution.total
            return copied

    def snapshot(self) -> Dict[str, object]:
        """One consistent plain-dict view (reports, workload summaries)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "latencies": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._latencies.items())
                },
                "sizes": {
                    name: {
                        "count": distribution.count,
                        "mean": distribution.mean,
                        "max": distribution.max,
                    }
                    for name, distribution in sorted(self._sizes.items())
                },
            }

    # ------------------------------------------------------------------ #
    # Prometheus-style text export
    # ------------------------------------------------------------------ #
    def export_text(self) -> str:
        """Render every metric in the Prometheus text exposition format.

        Counters export as ``<name>_total``, gauges as-is, latency
        histograms as cumulative ``_bucket{le="..."}`` series plus
        ``_sum``/``_count`` (bucket edges are this library's exclusive
        upper edges, rendered as Prometheus's inclusive ``le`` — the
        one-sample-on-the-edge difference is irrelevant at scrape
        granularity), and size distributions as exact-value buckets.
        """
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._counters):
                metric = _metric_name(self._prefix, name) + "_total"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {self._counters[name]}")
            for name in sorted(self._gauges):
                metric = _metric_name(self._prefix, name)
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {self._gauges[name]:g}")
            for name in sorted(self._latencies):
                histogram = self._latencies[name]
                metric = _metric_name(self._prefix, name) + "_seconds"
                lines.append(f"# TYPE {metric} histogram")
                cumulative = 0
                for upper, count in zip(
                    histogram.bucket_upper_bounds(),
                    histogram.bucket_counts(),
                ):
                    cumulative += count
                    edge = "+Inf" if upper == float("inf") else f"{upper:g}"
                    lines.append(
                        f'{metric}_bucket{{le="{edge}"}} {cumulative}'
                    )
                lines.append(f"{metric}_sum {histogram.total_seconds:g}")
                lines.append(f"{metric}_count {histogram.count}")
            for name in sorted(self._sizes):
                distribution = self._sizes[name]
                metric = _metric_name(self._prefix, name)
                lines.append(f"# TYPE {metric} histogram")
                counts = distribution.counts()
                cumulative = 0
                for value in sorted(counts):
                    cumulative += counts[value]
                    lines.append(
                        f'{metric}_bucket{{le="{value}"}} {cumulative}'
                    )
                lines.append(
                    f'{metric}_bucket{{le="+Inf"}} {distribution.count}'
                )
                lines.append(f"{metric}_sum {distribution.total}")
                lines.append(f"{metric}_count {distribution.count}")
            return "\n".join(lines) + "\n"
