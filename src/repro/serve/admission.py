"""Admission control: a bounded queue that sheds load instead of queueing.

A micro-batching front-end converts burst arrivals into bounded-size
engine calls, but the *queue in front of the batcher* is still unbounded
unless something says no.  :class:`AdmissionController` is that something:
it tracks how many requests are in flight (submitted, not yet resolved)
and rejects new submissions with a typed :class:`Overloaded` error once
``max_pending`` is reached — the client gets an immediate, retryable
signal instead of a latency cliff, and the front-end's memory stays
bounded no matter how hard the storm.

The controller is deliberately a counter, not a queue: the front-end owns
the actual request list, and tickets are released when the request
resolves (result, error or shed), so ``pending`` equals true in-flight
depth rather than just batcher backlog.

Multi-tenant fairness rides on the same counter: with
``tenant_max_pending`` set, each tenant additionally holds at most that
many tickets, so one tenant's flash crowd sheds against *its own* quota
(``Overloaded.scope == "tenant"``) before it can starve the global pool
everyone else shares.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.utils.errors import ConfigurationError, ReproError


class Overloaded(ReproError):
    """The front-end shed a request because its queue is saturated.

    Carries the observed depth and the configured limit so callers (and
    load-shedding telemetry) can report how far over the line the system
    was, and clients can implement informed backoff.  ``scope`` says
    *which* limit fired — ``"global"`` for the shared pool, ``"tenant"``
    when a per-tenant quota rejected the request (``tenant`` then names
    the offender), so a quota-shed tenant knows retrying elsewhere won't
    help.
    """

    def __init__(
        self,
        pending: int,
        max_pending: int,
        scope: str = "global",
        tenant: Optional[str] = None,
    ) -> None:
        where = f"tenant {tenant!r} quota" if scope == "tenant" else "queue"
        super().__init__(
            f"serving {where} saturated: {pending} requests in flight "
            f"(limit {max_pending}); retry with backoff"
        )
        self.pending = pending
        self.max_pending = max_pending
        self.scope = scope
        self.tenant = tenant


class AdmissionController:
    """Bounded in-flight tickets with a shed counter.

    :meth:`admit` hands out one ticket or raises :class:`Overloaded`;
    :meth:`release` returns it when the request resolves.  Both are O(1)
    under one mutex, so admission never becomes the bottleneck it guards
    against.  When constructed with ``tenant_max_pending``, tenant-tagged
    admissions are additionally capped per tenant, and per-tenant
    pending/shed books are kept for :meth:`tenant_stats`.
    """

    def __init__(
        self,
        max_pending: int,
        tenant_max_pending: Optional[int] = None,
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if tenant_max_pending is not None and tenant_max_pending < 1:
            raise ConfigurationError(
                f"tenant_max_pending must be >= 1, got {tenant_max_pending}"
            )
        self._max_pending = int(max_pending)
        self._tenant_max_pending = (
            None if tenant_max_pending is None else int(tenant_max_pending)
        )
        self._lock = threading.Lock()
        self._pending = 0
        self._shed = 0
        self._tenant_pending: Dict[str, int] = {}
        self._tenant_shed: Dict[str, int] = {}

    @property
    def max_pending(self) -> int:
        return self._max_pending

    @property
    def tenant_max_pending(self) -> Optional[int]:
        return self._tenant_max_pending

    @property
    def pending(self) -> int:
        """Requests currently holding a ticket."""
        with self._lock:
            return self._pending

    @property
    def shed(self) -> int:
        """Requests rejected since construction."""
        with self._lock:
            return self._shed

    def admit(self, tenant: Optional[str] = None) -> int:
        """Take one ticket; raises :class:`Overloaded` at a limit.

        The global limit is checked first (a full queue sheds everyone),
        then the tenant quota when ``tenant`` is given and a quota is
        configured.  Returns the in-flight depth *including* the new
        request, which the front-end mirrors into its queue-depth gauge
        without a second lock round-trip.
        """
        with self._lock:
            if self._pending >= self._max_pending:
                self._shed += 1
                if tenant:
                    self._tenant_shed[tenant] = (
                        self._tenant_shed.get(tenant, 0) + 1
                    )
                raise Overloaded(self._pending, self._max_pending)
            if tenant and self._tenant_max_pending is not None:
                held = self._tenant_pending.get(tenant, 0)
                if held >= self._tenant_max_pending:
                    self._shed += 1
                    self._tenant_shed[tenant] = (
                        self._tenant_shed.get(tenant, 0) + 1
                    )
                    raise Overloaded(
                        held,
                        self._tenant_max_pending,
                        scope="tenant",
                        tenant=tenant,
                    )
            self._pending += 1
            if tenant:
                self._tenant_pending[tenant] = (
                    self._tenant_pending.get(tenant, 0) + 1
                )
            return self._pending

    def release(self, count: int = 1, tenant: Optional[str] = None) -> int:
        """Return ``count`` tickets; returns the remaining depth.

        ``tenant`` must match the tag the tickets were admitted under so
        the per-tenant books stay a partition of the global gauge.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        with self._lock:
            if count > self._pending:
                raise ConfigurationError(
                    f"released {count} tickets with only {self._pending} "
                    "in flight"
                )
            if tenant:
                held = self._tenant_pending.get(tenant, 0)
                if count > held:
                    raise ConfigurationError(
                        f"released {count} tickets for tenant {tenant!r} "
                        f"with only {held} in flight"
                    )
                self._tenant_pending[tenant] = held - count
            self._pending -= count
            return self._pending

    def tenant_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant ``{"pending": ..., "shed": ...}`` snapshot."""
        with self._lock:
            names = set(self._tenant_pending) | set(self._tenant_shed)
            return {
                name: {
                    "pending": self._tenant_pending.get(name, 0),
                    "shed": self._tenant_shed.get(name, 0),
                }
                for name in sorted(names)
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"AdmissionController(pending={self._pending}, "
                f"max_pending={self._max_pending}, shed={self._shed})"
            )
