"""Admission control: a bounded queue that sheds load instead of queueing.

A micro-batching front-end converts burst arrivals into bounded-size
engine calls, but the *queue in front of the batcher* is still unbounded
unless something says no.  :class:`AdmissionController` is that something:
it tracks how many requests are in flight (submitted, not yet resolved)
and rejects new submissions with a typed :class:`Overloaded` error once
``max_pending`` is reached — the client gets an immediate, retryable
signal instead of a latency cliff, and the front-end's memory stays
bounded no matter how hard the storm.

The controller is deliberately a counter, not a queue: the front-end owns
the actual request list, and tickets are released when the request
resolves (result, error or shed), so ``pending`` equals true in-flight
depth rather than just batcher backlog.
"""

from __future__ import annotations

import threading

from repro.utils.errors import ConfigurationError, ReproError


class Overloaded(ReproError):
    """The front-end shed a request because its queue is saturated.

    Carries the observed depth and the configured limit so callers (and
    load-shedding telemetry) can report how far over the line the system
    was, and clients can implement informed backoff.
    """

    def __init__(self, pending: int, max_pending: int) -> None:
        super().__init__(
            f"serving queue saturated: {pending} requests in flight "
            f"(limit {max_pending}); retry with backoff"
        )
        self.pending = pending
        self.max_pending = max_pending


class AdmissionController:
    """Bounded in-flight tickets with a shed counter.

    :meth:`admit` hands out one ticket or raises :class:`Overloaded`;
    :meth:`release` returns it when the request resolves.  Both are O(1)
    under one mutex, so admission never becomes the bottleneck it guards
    against.
    """

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self._max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._pending = 0
        self._shed = 0

    @property
    def max_pending(self) -> int:
        return self._max_pending

    @property
    def pending(self) -> int:
        """Requests currently holding a ticket."""
        with self._lock:
            return self._pending

    @property
    def shed(self) -> int:
        """Requests rejected since construction."""
        with self._lock:
            return self._shed

    def admit(self) -> int:
        """Take one ticket; raises :class:`Overloaded` at the limit.

        Returns the in-flight depth *including* the new request, which the
        front-end mirrors into its queue-depth gauge without a second
        lock round-trip.
        """
        with self._lock:
            if self._pending >= self._max_pending:
                self._shed += 1
                raise Overloaded(self._pending, self._max_pending)
            self._pending += 1
            return self._pending

    def release(self, count: int = 1) -> int:
        """Return ``count`` tickets; returns the remaining depth."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        with self._lock:
            if count > self._pending:
                raise ConfigurationError(
                    f"released {count} tickets with only {self._pending} "
                    "in flight"
                )
            self._pending -= count
            return self._pending

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"AdmissionController(pending={self._pending}, "
                f"max_pending={self._max_pending}, shed={self._shed})"
            )
