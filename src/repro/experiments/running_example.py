"""The worked example of Sections IV and V (Figure 2, Eq. 7-13 and 18-19).

Reproduces, on the 7-record toy dataset, every number the paper walks
through: the aggregated vector distances, the raw tensor-slice distances,
the purified distances after Tucker decomposition with core size (3, 3, 2)
and the final 2-cluster concept distillation that groups "folk" with
"people" and isolates "laptop".
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.concepts import distill_concepts
from repro.core.cubelsi import CubeLSI
from repro.core.distances import aggregated_vector_distances, raw_slice_distances
from repro.datasets.toy import TOY_TAG_LABELS, running_example_folksonomy
from repro.experiments.common import ExperimentReport


def run(seed: int = 0) -> ExperimentReport:
    """Reproduce the running example end to end."""
    folksonomy = running_example_folksonomy()
    tensor = folksonomy.to_tensor()
    tags = folksonomy.tags  # ("t1", "t2", "t3")

    vector_distances = aggregated_vector_distances(
        folksonomy.to_tag_resource_matrix()
    )
    slice_distances = raw_slice_distances(tensor)

    cubelsi = CubeLSI(ranks=(3, 3, 2), max_iter=100, seed=seed)
    result = cubelsi.fit(folksonomy)
    purified = result.distances

    concept_model = distill_concepts(
        purified, tags=tags, num_concepts=2, sigma=1.0, seed=seed
    )
    clusters = [
        tuple(TOY_TAG_LABELS[t] for t in cluster)
        for cluster in concept_model.as_clusters()
    ]

    def pair(matrix: np.ndarray, a: str, b: str) -> float:
        return float(matrix[tags.index(a), tags.index(b)])

    rows = []
    for label, matrix in (
        ("vector (Eq. 6)", vector_distances),
        ("tensor slice (Eq. 8)", slice_distances),
        ("purified CubeLSI (Eq. 17/20)", purified),
    ):
        rows.append(
            {
                "Distance": label,
                "d(folk, people)^2": round(pair(matrix, "t1", "t2") ** 2, 3),
                "d(folk, laptop)^2": round(pair(matrix, "t1", "t3") ** 2, 3),
                "d(people, laptop)^2": round(pair(matrix, "t2", "t3") ** 2, 3),
                "people closer to folk than laptop": bool(
                    pair(matrix, "t1", "t2") < pair(matrix, "t2", "t3")
                ),
            }
        )

    report = ExperimentReport(
        experiment_id="running-example",
        title="Section IV/V worked example (folk, people, laptop)",
        rows=rows,
    )
    report.notes.append(f"concept clusters: {clusters}")
    report.notes.append(
        "paper reference values: vector 9/14/5, slice 3/6/3, purified "
        "1.92/5.94/2.36 (exact purified values depend on the ALS optimum, "
        "the ordering is what matters)"
    )
    return report


def distances_summary(seed: int = 0) -> Dict[str, np.ndarray]:
    """The three distance matrices keyed by method (used by tests)."""
    folksonomy = running_example_folksonomy()
    tensor = folksonomy.to_tensor()
    cubelsi = CubeLSI(ranks=(3, 3, 2), max_iter=100, seed=seed)
    return {
        "vector": aggregated_vector_distances(folksonomy.to_tag_resource_matrix()),
        "slice": raw_slice_distances(tensor),
        "purified": cubelsi.fit(folksonomy).distances,
    }
