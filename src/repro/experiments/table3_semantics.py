"""Table III: accuracy of pairwise tag distances (JCN_avg and Rank_avg).

CubeLSI, CubeSim and LSI each produce a full pairwise tag-distance matrix;
for every judgeable tag each method nominates its most similar tag, and the
nominations are scored against the semantic reference (the synthetic
taxonomy standing in for WordNet) with the Jiang-Conrath distance.  The
paper's finding — CubeLSI < CubeSim < LSI on both averages — is the shape
this experiment reproduces.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.baselines.cubesim import CubeSimRanker
from repro.baselines.lsi import LsiRanker
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentReport,
    prepare_corpus,
)
from repro.semantics.evaluation import evaluate_tag_distances


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    profile_name: str = "bibsonomy",
    reduction_ratios=(25.0, 3.0, 40.0),
    num_concepts: int = 25,
) -> ExperimentReport:
    """Regenerate Table III (average JCN distance and average rank)."""
    corpus = prepare_corpus(profile_name=profile_name, scale=scale, seed=seed)
    folksonomy = corpus.cleaned
    lexicon = corpus.lexicon

    methods: Dict[str, np.ndarray] = {}

    cubelsi = CubeLSIRanker(
        reduction_ratios=reduction_ratios,
        num_concepts=num_concepts,
        seed=seed,
        min_rank=4,
    ).fit(folksonomy)
    methods["CubeLSI"] = cubelsi.tag_distances

    cubesim = CubeSimRanker(num_concepts=num_concepts, seed=seed).fit(folksonomy)
    methods["CubeSim"] = cubesim.tag_distances

    lsi = LsiRanker(
        reduction_ratio=reduction_ratios[1],
        num_concepts=num_concepts,
        seed=seed,
        min_rank=4,
    ).fit(folksonomy)
    methods["LSI"] = lsi.tag_distances

    report = ExperimentReport(
        experiment_id="table3",
        title="JCN_avg and Rank_avg of tag distances, cf. paper Table III",
    )
    accuracies = {}
    for name, distances in methods.items():
        accuracy = evaluate_tag_distances(
            distances, folksonomy.tags, lexicon, method=name
        )
        accuracies[name] = accuracy
        report.rows.append(accuracy.as_row())

    report.notes.append(
        f"judgeable tags (covered by the reference): "
        f"{accuracies['CubeLSI'].judgeable_tags} of {folksonomy.num_tags} "
        f"({lexicon.coverage_of(folksonomy.tags):.0%} coverage; the paper "
        "reports 50.3% WordNet coverage on Bibsonomy)"
    )
    report.notes.append(
        "paper reference (Bibsonomy): JCN 10.32 / 11.25 / 11.62 and rank "
        "12.55 / 15.69 / 16.06 for CubeLSI / CubeSim / LSI — lower is better"
    )
    return report
