"""Table V: offline pre-processing time of CubeLSI versus CubeSim.

Both methods have to compute pairwise tag distances and distil concepts; the
difference is that CubeSim computes distances from the raw tensor slices
(Eq. 8), whereas CubeLSI goes through the Tucker decomposition and the
Theorem-1/2 shortcut.  The paper's finding — CubeLSI is roughly an order of
magnitude faster, and CubeSim does not even finish on the largest dataset —
follows from the asymptotics and is reproduced here on the scaled corpora.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.baselines.cubesim import CubeSimRanker
from repro.datasets.profiles import PROFILES
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentReport,
    prepare_corpus,
)


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    profiles: Optional[Sequence[str]] = None,
    reduction_ratios: float = 50.0,
    num_concepts: Optional[int] = 45,
) -> ExperimentReport:
    """Regenerate Table V (pre-processing times of CubeLSI and CubeSim)."""
    names = list(profiles) if profiles is not None else list(PROFILES)
    per_method: Dict[str, Dict[str, float]] = {"CubeSim": {}, "CubeLSI": {}}

    for index, profile_name in enumerate(names):
        corpus = prepare_corpus(profile_name=profile_name, scale=scale, seed=seed + index)
        folksonomy = corpus.cleaned

        cubesim = CubeSimRanker(num_concepts=num_concepts, seed=seed).fit(folksonomy)
        per_method["CubeSim"][profile_name] = cubesim.timings.fit_seconds

        cubelsi = CubeLSIRanker(
            reduction_ratios=reduction_ratios, num_concepts=num_concepts, seed=seed
        ).fit(folksonomy)
        per_method["CubeLSI"][profile_name] = cubelsi.timings.fit_seconds

    report = ExperimentReport(
        experiment_id="table5",
        title="Pre-processing times (seconds) of CubeLSI and CubeSim, cf. paper Table V",
    )
    for method, timings in per_method.items():
        row: Dict[str, object] = {"Method": method}
        for profile_name in names:
            row[profile_name] = round(timings.get(profile_name, float("nan")), 4)
        report.rows.append(row)

    for profile_name in names:
        cubesim_time = per_method["CubeSim"][profile_name]
        cubelsi_time = per_method["CubeLSI"][profile_name]
        if cubelsi_time > 0:
            report.notes.append(
                f"{profile_name}: CubeSim / CubeLSI pre-processing ratio = "
                f"{cubesim_time / cubelsi_time:.1f}x (paper: >20x, with CubeSim "
                "not finishing on Delicious)"
            )
    return report
