"""Experiment drivers: one module per table / figure of the paper.

Every driver exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentReport` whose ``render()``
method prints the same rows or series the paper reports.  The pytest
benchmarks in ``benchmarks/`` call these drivers, so regenerating a table is
always one function call away:

====================  ============================================  =============================
Experiment            Paper result                                  Module
====================  ============================================  =============================
Table I               tag-pair semantic relations                   ``table1_tag_pairs``
Table II              dataset statistics raw vs cleaned             ``table2_datasets``
Table III             JCN / rank accuracy of tag distances          ``table3_semantics``
Table IV              sample tag clusters                           ``table4_clusters``
Figure 4              NDCG@N of six rankers on three datasets       ``fig4_ndcg``
Table V               pre-processing time CubeLSI vs CubeSim        ``table5_preprocessing``
Figure 5              pre-processing time vs reduction ratio        ``fig5_reduction_sweep``
Table VI              query time CubeLSI vs FolkRank                ``table6_query_time``
Table VII             memory of F-hat vs core + factor              ``table7_memory``
Running example       Section IV/V worked example                   ``running_example``
====================  ============================================  =============================
"""

from repro.experiments.common import ExperimentReport, PreparedCorpus, prepare_corpus

__all__ = [
    "ExperimentReport",
    "PreparedCorpus",
    "prepare_corpus",
]
