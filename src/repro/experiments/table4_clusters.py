"""Table IV: sample tag clusters produced by CubeLSI.

The paper shows qualitative examples of clusters CubeLSI discovers on the
Delicious dataset: synonym groups, cross-language cognates, morphological
variants and abbreviations.  This experiment runs the full CubeLSI pipeline
on the Delicious-profile corpus, inspects the resulting concepts and reports

* sample clusters labelled with the correlation type(s) they exhibit
  (derived from the vocabulary's tag-kind annotations), and
* cluster purity / coverage statistics against the generator ground truth.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.datasets.vocabulary import TagKind
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentReport,
    PreparedCorpus,
    prepare_corpus,
)


def _cluster_concepts(corpus: PreparedCorpus, cluster: Tuple[str, ...]) -> Counter:
    """How many member tags belong to each ground-truth concept."""
    truth = corpus.dataset.ground_truth
    concept_votes: Counter = Counter()
    for tag in cluster:
        for concept in truth.concepts_of_tag(tag):
            concept_votes[concept] += 1
    return concept_votes


def _correlation_types(corpus: PreparedCorpus, cluster: Tuple[str, ...]) -> List[str]:
    """Which Table IV correlation types the cluster exhibits."""
    vocabulary = corpus.dataset.ground_truth.vocabulary
    kinds = set()
    for concept in vocabulary.concepts:
        members = [tag for tag in cluster if tag in concept.tags]
        if len(members) < 2:
            continue
        member_kinds = {concept.tags[tag] for tag in members}
        if TagKind.COGNATE in member_kinds:
            kinds.add("cognates (cross-language)")
        if TagKind.MORPHOLOGICAL in member_kinds:
            kinds.add("inflection & derivation")
        if TagKind.ABBREVIATION in member_kinds:
            kinds.add("abbreviations")
        if member_kinds & {TagKind.CANONICAL, TagKind.SYNONYM}:
            kinds.add("synonyms")
    return sorted(kinds)


def cluster_purity(corpus: PreparedCorpus, clusters: List[Tuple[str, ...]]) -> float:
    """Fraction of clustered tags whose cluster's majority concept matches theirs."""
    total = 0
    agreeing = 0
    for cluster in clusters:
        votes = _cluster_concepts(corpus, cluster)
        if not votes:
            continue
        majority_concept, _count = votes.most_common(1)[0]
        truth = corpus.dataset.ground_truth
        for tag in cluster:
            concepts = truth.concepts_of_tag(tag)
            if not concepts:
                continue
            total += 1
            if majority_concept in concepts:
                agreeing += 1
    return agreeing / total if total else 0.0


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    profile_name: str = "delicious",
    reduction_ratios=(25.0, 3.0, 40.0),
    num_concepts: int = 30,
    max_rows: int = 10,
) -> ExperimentReport:
    """Regenerate Table IV (sample tag clusters)."""
    corpus = prepare_corpus(profile_name=profile_name, scale=scale, seed=seed)
    folksonomy = corpus.cleaned

    cubelsi = CubeLSIRanker(
        reduction_ratios=reduction_ratios,
        num_concepts=min(num_concepts, folksonomy.num_tags),
        seed=seed,
        min_rank=4,
    ).fit(folksonomy)
    clusters = cubelsi.concept_model.as_clusters()

    # Prefer multi-tag clusters that exhibit an identifiable correlation type.
    annotated: List[Dict[str, object]] = []
    for cluster in clusters:
        if len(cluster) < 2:
            continue
        types = _correlation_types(corpus, cluster)
        if not types:
            continue
        annotated.append(
            {
                "Type of correlation": "; ".join(types),
                "Tags": ", ".join(cluster),
            }
        )
    annotated.sort(key=lambda row: str(row["Type of correlation"]))

    report = ExperimentReport(
        experiment_id="table4",
        title="Sample tag clusters discovered by CubeLSI, cf. paper Table IV",
        rows=annotated[:max_rows],
    )
    purity = cluster_purity(corpus, clusters)
    multi = sum(1 for c in clusters if len(c) >= 2)
    report.notes.append(
        f"{len(clusters)} concepts distilled ({multi} with >= 2 tags); "
        f"cluster purity vs ground-truth concepts: {purity:.2f}"
    )
    return report
