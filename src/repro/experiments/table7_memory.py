"""Table VII: memory requirements of the dense F-hat versus S and Y(2).

The naive purified-distance computation would need the dense reconstructed
tensor ``F_hat`` (|U| x |T| x |R| float64 values); Theorems 1 and 2 reduce
the requirement to the core tensor ``S`` plus the tag factor ``Y(2)``.  This
experiment reports both sizes for each dataset profile, in bytes, alongside
the ratio — the multi-order-of-magnitude gap is the paper's point.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.datasets.profiles import PROFILES
from repro.eval.reporting import format_bytes
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentReport,
    prepare_corpus,
)


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    profiles: Optional[Sequence[str]] = None,
    reduction_ratios: float = 50.0,
    num_concepts: Optional[int] = 45,
) -> ExperimentReport:
    """Regenerate Table VII (memory of F-hat vs S and Y(2))."""
    names = list(profiles) if profiles is not None else list(PROFILES)
    report = ExperimentReport(
        experiment_id="table7",
        title="Memory requirements of F-hat vs S and Y(2), cf. paper Table VII",
    )
    for index, profile_name in enumerate(names):
        corpus = prepare_corpus(profile_name=profile_name, scale=scale, seed=seed + index)
        ranker = CubeLSIRanker(
            reduction_ratios=reduction_ratios, num_concepts=num_concepts, seed=seed
        ).fit(corpus.cleaned)
        memory = ranker.offline_index.cubelsi_result.memory_report()

        dense_bytes = memory["dense_reconstruction_bytes"]
        compact_bytes = memory["core_plus_tag_factor_bytes"]
        report.rows.append(
            {
                "Dataset": profile_name,
                "F-hat (dense)": format_bytes(dense_bytes),
                "S and Y(2)": format_bytes(compact_bytes),
                "Reduction factor": round(dense_bytes / max(compact_bytes, 1), 1),
            }
        )
    report.notes.append(
        "paper reference: 7.0 TB vs 8.8 MB (Delicious), 98 GB vs 3.0 MB "
        "(Bibsonomy), 88 GB vs 1.8 MB (Last.fm)"
    )
    return report
