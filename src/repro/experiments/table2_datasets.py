"""Table II: dataset statistics, raw versus cleaned.

Generates the three profile corpora, runs the cleaning pipeline of Section
VI-A on each and reports |U|, |T|, |R|, |Y| before and after — the same
layout as the paper's Table II.  Absolute sizes are the scaled-down
synthetic ones; the paper's reference sizes are attached as notes so the
shape comparison is explicit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets.profiles import PROFILES
from repro.experiments.common import (
    DEFAULT_NUM_QUERIES,
    DEFAULT_SCALE,
    ExperimentReport,
    prepare_corpus,
)
from repro.tagging.stats import compute_statistics


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    profiles: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    """Regenerate Table II (dataset statistics raw vs cleaned)."""
    names = list(profiles) if profiles is not None else list(PROFILES)
    report = ExperimentReport(
        experiment_id="table2",
        title="Dataset statistics (raw vs cleaned), cf. paper Table II",
    )
    for index, name in enumerate(names):
        corpus = prepare_corpus(
            profile_name=name,
            scale=scale,
            seed=seed + index,
            num_queries=DEFAULT_NUM_QUERIES,
        )
        raw_stats = compute_statistics(corpus.raw, label="raw")
        cleaned_stats = compute_statistics(corpus.cleaned, label="cleaned")
        report.rows.append(raw_stats.as_row())
        report.rows.append(cleaned_stats.as_row())

        reference = PROFILES[name].paper_cleaned_sizes or {}
        if reference:
            report.notes.append(
                f"{name}: paper cleaned sizes for context: "
                + ", ".join(f"{k}={v}" for k, v in reference.items())
            )
        report.notes.append(
            f"{name}: cleaning removed "
            f"{corpus.cleaning_report.removed_system_assignments} system-tag "
            f"assignments in {corpus.cleaning_report.pruning_iterations} "
            "pruning iterations"
        )
    return report
