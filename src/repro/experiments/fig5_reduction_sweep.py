"""Figure 5: CubeLSI pre-processing time as a function of the reduction ratio.

The paper sweeps the reduction ratios c1 = c2 = c3 over {20, 30, 40, 50,
100, 150, 200} on the Bibsonomy dataset and shows pre-processing time
falling steeply as the ratios grow (smaller core tensors mean cheaper ALS
sweeps and cheaper distance kernels).  The same sweep is run here on the
Bibsonomy-profile corpus; with the scaled-down corpus the interesting ratio
range is smaller, so the default grid is proportionally lower but the
monotone-decreasing shape is the same.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentReport,
    prepare_corpus,
)

#: Default reduction-ratio grid (scaled-down analogue of the paper's 20..200).
DEFAULT_RATIOS = (2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 40.0)


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    profile_name: str = "bibsonomy",
    ratios: Sequence[float] = DEFAULT_RATIOS,
    num_concepts: Optional[int] = 25,
    repeats: int = 1,
) -> ExperimentReport:
    """Regenerate Figure 5 (pre-processing time vs reduction ratio)."""
    corpus = prepare_corpus(profile_name=profile_name, scale=scale, seed=seed)
    folksonomy = corpus.cleaned

    times: List[float] = []
    ranks_used: List[str] = []
    for ratio in ratios:
        best = float("inf")
        ranks = ""
        for _ in range(max(1, repeats)):
            ranker = CubeLSIRanker(
                reduction_ratios=ratio,
                num_concepts=num_concepts,
                seed=seed,
                min_rank=2,
            ).fit(folksonomy)
            best = min(best, ranker.timings.fit_seconds)
            ranks = "x".join(str(r) for r in ranker.offline_index.cubelsi_result.ranks)
        times.append(best)
        ranks_used.append(ranks)

    report = ExperimentReport(
        experiment_id="fig5",
        title=(
            f"CubeLSI pre-processing time vs reduction ratio on {profile_name}, "
            "cf. paper Fig. 5"
        ),
        series={"cubelsi_preprocessing_seconds": times},
        series_x=[float(r) for r in ratios],
        series_x_label="reduction ratio",
    )
    for ratio, seconds, ranks in zip(ratios, times, ranks_used):
        report.rows.append(
            {
                "Reduction ratio": ratio,
                "Core dimensions": ranks,
                "Pre-processing (s)": round(seconds, 4),
            }
        )
    if times[0] > 0 and times[-1] > 0:
        report.notes.append(
            f"speedup from the smallest to the largest ratio: "
            f"{times[0] / times[-1]:.1f}x (paper shows a steeply decreasing curve)"
        )
    return report
