"""Table I: tag pairs and their semantic relations.

The paper illustrates that CubeLSI's judgments of tag relatedness agree with
human judgment where traditional LSI's do not, on pairs such as
("comedy", "humour") — related — and ("shopping", "photography") — unrelated.

Here the "human" column is the generator ground truth (two tags are related
iff they can express a common concept), and each method's verdict is derived
from its own distance matrix: a pair is judged related ('Y') when each tag
lies within the other's closest ``relatedness_quantile`` of candidates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.baselines.lsi import LsiRanker
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentReport,
    PreparedCorpus,
    prepare_corpus,
)

#: Pairs evaluated by default: planted synonym pairs (expected related) and
#: cross-domain pairs (expected unrelated), chosen from the built-in
#: vocabulary to parallel the flavour of the paper's examples.
DEFAULT_RELATED_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("comedy", "humour"),
    ("virus", "antivirus"),
    ("wireless", "wifi"),
    ("movie", "films"),
    ("england", "britain"),
)
DEFAULT_UNRELATED_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("cancer", "shopping"),
    ("shopping", "photography"),
    ("wedding", "laptop"),
    ("recipes", "javascript"),
)


def _verdict(
    distances: np.ndarray,
    tags: Sequence[str],
    pair: Tuple[str, str],
    relatedness_quantile: float,
) -> Optional[bool]:
    """Whether a method judges ``pair`` as related (None if a tag is missing)."""
    tag_list = list(tags)
    if pair[0] not in tag_list or pair[1] not in tag_list:
        return None
    i, j = tag_list.index(pair[0]), tag_list.index(pair[1])

    def related_from(source: int, target: int) -> bool:
        row = distances[source].copy()
        row[source] = np.inf
        threshold = np.quantile(row[np.isfinite(row)], relatedness_quantile)
        return bool(distances[source, target] <= threshold)

    return related_from(i, j) and related_from(j, i)


def _ground_truth(corpus: PreparedCorpus, pair: Tuple[str, str]) -> Optional[bool]:
    truth = corpus.dataset.ground_truth
    concepts_a = truth.concepts_of_tag(pair[0])
    concepts_b = truth.concepts_of_tag(pair[1])
    if not concepts_a or not concepts_b:
        return None
    return bool(concepts_a & concepts_b)


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    profile_name: str = "delicious",
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    relatedness_quantile: float = 0.2,
    reduction_ratios=(25.0, 3.0, 40.0),
    num_concepts: int = 30,
) -> ExperimentReport:
    """Regenerate Table I (tag pairs and their semantic relations)."""
    corpus = prepare_corpus(profile_name=profile_name, scale=scale, seed=seed)
    folksonomy = corpus.cleaned

    cubelsi = CubeLSIRanker(
        reduction_ratios=reduction_ratios,
        num_concepts=num_concepts,
        seed=seed,
        min_rank=4,
    ).fit(folksonomy)
    lsi = LsiRanker(
        reduction_ratio=reduction_ratios[1],
        num_concepts=num_concepts,
        seed=seed,
        min_rank=4,
    ).fit(folksonomy)

    evaluated_pairs: List[Tuple[str, str]] = list(
        pairs if pairs is not None else DEFAULT_RELATED_PAIRS + DEFAULT_UNRELATED_PAIRS
    )

    report = ExperimentReport(
        experiment_id="table1",
        title="Tag pairs and their semantic relations, cf. paper Table I",
    )
    agreement = {"cubelsi": 0, "lsi": 0}
    judged = 0
    for pair in evaluated_pairs:
        human = _ground_truth(corpus, pair)
        cube_verdict = _verdict(
            cubelsi.tag_distances, folksonomy.tags, pair, relatedness_quantile
        )
        lsi_verdict = _verdict(
            lsi.tag_distances, folksonomy.tags, pair, relatedness_quantile
        )
        if human is None or cube_verdict is None or lsi_verdict is None:
            continue
        judged += 1
        agreement["cubelsi"] += int(cube_verdict == human)
        agreement["lsi"] += int(lsi_verdict == human)
        report.rows.append(
            {
                "Tag pair": f"<{pair[0]}, {pair[1]}>",
                "Human-judged": "Y" if human else "N",
                "CubeLSI": "Y" if cube_verdict else "N",
                "LSI": "Y" if lsi_verdict else "N",
            }
        )

    if judged:
        report.notes.append(
            f"agreement with ground truth over {judged} pairs: "
            f"CubeLSI {agreement['cubelsi']}/{judged}, LSI {agreement['lsi']}/{judged}"
        )
    else:
        report.notes.append(
            "none of the requested pairs survived cleaning; re-run with a "
            "larger scale"
        )
    return report
