"""Figure 4: NDCG@N of the six ranking methods on the three datasets.

For every dataset profile the simulated query workload is run through all
six rankers and the mean NDCG@N curve is recorded for
N ∈ {1..10, 15, 20}.  The paper's qualitative findings to look for:

* the tagger-aware methods (CubeLSI, CubeSim, FolkRank) outperform the
  tag-only methods (Freq, LSI, BOW), and
* CubeLSI has the best curve on every dataset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import build_all_rankers
from repro.datasets.profiles import PROFILES
from repro.eval.harness import DEFAULT_NDCG_CUTOFFS, RankingEvaluation, RankingExperiment
from repro.experiments.common import (
    DEFAULT_NUM_QUERIES,
    DEFAULT_SCALE,
    ExperimentReport,
    prepare_corpus,
)


def run_single_dataset(
    profile_name: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    num_queries: int = DEFAULT_NUM_QUERIES,
    cutoffs: Sequence[int] = DEFAULT_NDCG_CUTOFFS,
    ranker_names: Optional[Sequence[str]] = None,
    reduction_ratios=(25.0, 3.0, 40.0),
    num_concepts: Optional[int] = 45,
) -> RankingEvaluation:
    """Run the Figure 4 experiment for one dataset and return raw results."""
    corpus = prepare_corpus(
        profile_name=profile_name, scale=scale, seed=seed, num_queries=num_queries
    )
    rankers = build_all_rankers(
        names=ranker_names,
        reduction_ratios=reduction_ratios,
        num_concepts=num_concepts,
        seed=seed,
    )
    experiment = RankingExperiment(corpus.cleaned, corpus.workload, cutoffs=cutoffs)
    return experiment.run(rankers)


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    num_queries: int = DEFAULT_NUM_QUERIES,
    cutoffs: Sequence[int] = DEFAULT_NDCG_CUTOFFS,
    profiles: Optional[Sequence[str]] = None,
    ranker_names: Optional[Sequence[str]] = None,
    reduction_ratios=(25.0, 3.0, 40.0),
    num_concepts: Optional[int] = 45,
) -> Dict[str, ExperimentReport]:
    """Regenerate Figure 4: one report (NDCG series per method) per dataset."""
    names = list(profiles) if profiles is not None else list(PROFILES)
    reports: Dict[str, ExperimentReport] = {}
    for index, profile_name in enumerate(names):
        evaluation = run_single_dataset(
            profile_name,
            scale=scale,
            seed=seed + index,
            num_queries=num_queries,
            cutoffs=cutoffs,
            ranker_names=ranker_names,
            reduction_ratios=reduction_ratios,
            num_concepts=num_concepts,
        )
        report = ExperimentReport(
            experiment_id=f"fig4-{profile_name}",
            title=f"NDCG@N of ranking methods on {profile_name}, cf. paper Fig. 4",
            series={
                method: evaluation.methods[method].ndcg_series(cutoffs)
                for method in evaluation.method_names()
            },
            series_x=[float(c) for c in cutoffs],
            series_x_label="NDCG@N",
        )
        tagger_aware = [m for m in ("cubelsi", "cubesim", "folkrank") if m in evaluation.methods]
        tag_only = [m for m in ("freq", "lsi", "bow") if m in evaluation.methods]
        if tagger_aware and tag_only:
            mid_cutoff = cutoffs[len(cutoffs) // 2]
            aware_mean = sum(
                evaluation.methods[m].ndcg_by_cutoff[mid_cutoff] for m in tagger_aware
            ) / len(tagger_aware)
            only_mean = sum(
                evaluation.methods[m].ndcg_by_cutoff[mid_cutoff] for m in tag_only
            ) / len(tag_only)
            report.notes.append(
                f"mean NDCG@{mid_cutoff}: tagger-aware {aware_mean:.3f} vs "
                f"tag-only {only_mean:.3f}; best method at @{mid_cutoff}: "
                f"{evaluation.best_method_at(mid_cutoff)}"
            )
        reports[profile_name] = report
    return reports


def ndcg_summary(
    reports: Dict[str, ExperimentReport], cutoff_index: int = 4
) -> List[Dict[str, object]]:
    """A compact cross-dataset summary table (one row per method)."""
    rows: Dict[str, Dict[str, object]] = {}
    for dataset, report in reports.items():
        for method, series in report.series.items():
            rows.setdefault(method, {"Method": method})[dataset] = round(
                series[cutoff_index], 4
            )
    return list(rows.values())
