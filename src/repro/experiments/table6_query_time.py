"""Table VI: online query-processing time of CubeLSI versus FolkRank.

CubeLSI answers a query with sparse dot products against a pre-built
concept index; FolkRank has to run a personalised PageRank over the full
tripartite graph for every query.  The paper reports CubeLSI being orders of
magnitude faster; the same gap (scaled) appears here.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.baselines.folkrank import FolkRankRanker
from repro.datasets.profiles import PROFILES
from repro.experiments.common import (
    DEFAULT_NUM_QUERIES,
    DEFAULT_SCALE,
    ExperimentReport,
    prepare_corpus,
)


def run(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    num_queries: int = DEFAULT_NUM_QUERIES,
    profiles: Optional[Sequence[str]] = None,
    reduction_ratios=(25.0, 3.0, 40.0),
    num_concepts: Optional[int] = 45,
) -> ExperimentReport:
    """Regenerate Table VI (total query-processing time over the workload)."""
    names = list(profiles) if profiles is not None else list(PROFILES)
    totals: Dict[str, Dict[str, float]] = {"FolkRank": {}, "CubeLSI": {}}

    for index, profile_name in enumerate(names):
        corpus = prepare_corpus(
            profile_name=profile_name,
            scale=scale,
            seed=seed + index,
            num_queries=num_queries,
        )
        folksonomy = corpus.cleaned
        queries = [list(q.tags) for q in corpus.workload]

        folkrank = FolkRankRanker().fit(folksonomy)
        folkrank.rank_batch(queries, top_k=20)
        totals["FolkRank"][profile_name] = folkrank.timings.query_seconds_total

        cubelsi = CubeLSIRanker(
            reduction_ratios=reduction_ratios,
            num_concepts=num_concepts,
            seed=seed,
            min_rank=4,
        ).fit(folksonomy)
        # One batched pass: the matrix backend scores the whole workload
        # with a single sparse matmul (the paper's cheap-online claim).
        cubelsi.rank_batch(queries, top_k=20)
        totals["CubeLSI"][profile_name] = cubelsi.timings.query_seconds_total

    report = ExperimentReport(
        experiment_id="table6",
        title=(
            "Total query-processing time (seconds) over the workload, "
            "cf. paper Table VI"
        ),
    )
    for method, timings in totals.items():
        row: Dict[str, object] = {"Method": method}
        for profile_name in names:
            row[profile_name] = round(timings.get(profile_name, float("nan")), 4)
        report.rows.append(row)

    for profile_name in names:
        folkrank_time = totals["FolkRank"][profile_name]
        cubelsi_time = totals["CubeLSI"][profile_name]
        if cubelsi_time > 0:
            report.notes.append(
                f"{profile_name}: FolkRank / CubeLSI query-time ratio = "
                f"{folkrank_time / cubelsi_time:.1f}x over {num_queries} queries "
                "(paper: 13x-158x)"
            )
    return report
