"""Shared infrastructure for the experiment drivers.

``prepare_corpus`` generates, cleans and packages one profile dataset
(together with its query workload and semantic lexicon) and memoises the
result per process, so a benchmark session that regenerates several tables
does not rebuild the same corpus repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.datasets.generator import SyntheticDataset
from repro.datasets.profiles import PROFILES, generate_profile_dataset
from repro.datasets.queries import QueryWorkload, build_query_workload
from repro.eval.reporting import format_series, format_table
from repro.semantics.lexicon import SemanticLexicon, build_lexicon
from repro.tagging.cleaning import CleaningConfig, CleaningReport, clean_folksonomy
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError

#: Default scale of the experiment corpora (kept laptop-friendly).
DEFAULT_SCALE = 1.0
#: Default number of simulated queries (the paper's study used 128).
DEFAULT_NUM_QUERIES = 64
#: Default minimum support of the cleaning pipeline (the paper uses 5).
DEFAULT_MIN_SUPPORT = 5


@dataclass
class PreparedCorpus:
    """One profile dataset, cleaned and paired with its evaluation artefacts."""

    profile_name: str
    dataset: SyntheticDataset
    raw: Folksonomy
    cleaned: Folksonomy
    cleaning_report: CleaningReport
    workload: QueryWorkload
    lexicon: SemanticLexicon


@dataclass
class ExperimentReport:
    """Uniform result object returned by every experiment driver."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    series_x: List[float] = field(default_factory=list)
    series_x_label: str = "N"
    notes: List[str] = field(default_factory=list)

    def render(self, digits: int = 4) -> str:
        """Plain-text rendering: rows first, then series, then notes."""
        parts: List[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.rows, digits=digits))
        if self.series:
            parts.append(
                format_series(
                    self.series,
                    x_values=self.series_x,
                    x_label=self.series_x_label,
                    digits=digits,
                )
            )
        if self.notes:
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def row_lookup(self, key_column: str) -> Dict[object, Dict[str, object]]:
        """Index the rows by the value of ``key_column``."""
        return {row[key_column]: row for row in self.rows if key_column in row}


@lru_cache(maxsize=32)
def prepare_corpus(
    profile_name: str = "delicious",
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    num_queries: int = DEFAULT_NUM_QUERIES,
    min_support: int = DEFAULT_MIN_SUPPORT,
) -> PreparedCorpus:
    """Generate + clean one profile corpus and build its workload and lexicon.

    The result is cached per parameter combination for the lifetime of the
    process, which keeps multi-table benchmark sessions fast.
    """
    if profile_name not in PROFILES:
        raise ConfigurationError(
            f"unknown profile {profile_name!r}; available: {sorted(PROFILES)}"
        )
    dataset = generate_profile_dataset(
        PROFILES[profile_name], scale=scale, seed=seed, include_noise_tags=True
    )
    cleaned, report = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=min_support)
    )
    workload = build_query_workload(
        dataset, num_queries=num_queries, seed=seed + 1000, folksonomy=cleaned
    )
    lexicon = build_lexicon(dataset, folksonomy=cleaned)
    return PreparedCorpus(
        profile_name=profile_name,
        dataset=dataset,
        raw=dataset.folksonomy,
        cleaned=cleaned,
        cleaning_report=report,
        workload=workload,
        lexicon=lexicon,
    )


def prepare_all_corpora(
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    num_queries: int = DEFAULT_NUM_QUERIES,
    profiles: Optional[Sequence[str]] = None,
) -> Dict[str, PreparedCorpus]:
    """Prepare every (or the selected) profile corpus."""
    names = list(profiles) if profiles is not None else list(PROFILES)
    return {
        name: prepare_corpus(
            profile_name=name, scale=scale, seed=seed + index, num_queries=num_queries
        )
        for index, name in enumerate(names)
    }
