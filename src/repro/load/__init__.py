"""Workload simulation and deterministic replay for the serving stack.

Everything the repo's parity suites check is serial and hand-enumerated;
this package drives the serving engines the way production would —
sustained mixed read/write traffic from many concurrent clients — while
keeping every run reproducible from one seed:

* :mod:`repro.load.workload` — seeded :class:`WorkloadGenerator` emitting
  mixed traces (Zipf-skewed queries, cache-hot repeats, add/update/remove
  batches, refresh ticks) that are valid by construction when replayed in
  order;
* :mod:`repro.load.runner` — :class:`WorkloadRunner` replaying a trace
  serially (the golden reference) or across N worker threads with
  mutations admitted in trace order, recording per-op-kind latency
  histograms (with per-tenant sub-books), throughput and an
  epoch-observation audit;
* :mod:`repro.load.scenarios` — named, seeded production-shaped profiles
  (:data:`SCENARIO_NAMES`): flash crowds, diurnal arrival curves,
  multi-tenant skew, rebuild storms and a chaos profile whose
  :class:`FaultPlan` kills/stalls shard-pool workers at trace-scheduled
  points (:func:`run_chaos`);
* :mod:`repro.load.invariants` — :func:`check_replay_parity` (the parity
  bar: zero errors, state convergence, 1e-9 probe parity, monotone
  epochs) plus per-scenario invariants via :func:`check_scenario`
  (dedup amortization, pacing fidelity, tenant partitioning, typed
  degraded modes and bounded chaos recovery).
"""

from repro.load.workload import (
    MUTATE,
    QUERY,
    REFRESH,
    Operation,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadTrace,
)
from repro.load.runner import (
    LatencyHistogram,
    WorkloadReport,
    WorkloadRunner,
    merge_workload_reports,
    quiesced_rankings,
)
from repro.load.scenarios import (
    DEFAULT_TENANTS,
    FAULT_KILL,
    FAULT_KINDS,
    FAULT_RESTART,
    FAULT_STALL,
    SCENARIO_CHAOS,
    SCENARIO_DIURNAL,
    SCENARIO_FLASH_CROWD,
    SCENARIO_MULTI_TENANT,
    SCENARIO_NAMES,
    SCENARIO_REBUILD_STORM,
    ChaosOutcome,
    FaultAction,
    FaultPlan,
    ScenarioTrace,
    build_scenario,
    run_chaos,
)
from repro.load.invariants import (
    PARITY_TOL,
    ReplayParityReport,
    ScenarioVerdict,
    check_chaos,
    check_diurnal,
    check_flash_crowd,
    check_multi_tenant,
    check_rebuild_storm,
    check_replay_parity,
    check_scenario,
)

__all__ = [
    "MUTATE",
    "QUERY",
    "REFRESH",
    "Operation",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadTrace",
    "LatencyHistogram",
    "WorkloadReport",
    "WorkloadRunner",
    "merge_workload_reports",
    "quiesced_rankings",
    "DEFAULT_TENANTS",
    "FAULT_KILL",
    "FAULT_KINDS",
    "FAULT_RESTART",
    "FAULT_STALL",
    "SCENARIO_CHAOS",
    "SCENARIO_DIURNAL",
    "SCENARIO_FLASH_CROWD",
    "SCENARIO_MULTI_TENANT",
    "SCENARIO_NAMES",
    "SCENARIO_REBUILD_STORM",
    "ChaosOutcome",
    "FaultAction",
    "FaultPlan",
    "ScenarioTrace",
    "build_scenario",
    "run_chaos",
    "PARITY_TOL",
    "ReplayParityReport",
    "ScenarioVerdict",
    "check_chaos",
    "check_diurnal",
    "check_flash_crowd",
    "check_multi_tenant",
    "check_rebuild_storm",
    "check_replay_parity",
    "check_scenario",
]
