"""Workload simulation and deterministic replay for the serving stack.

Everything the repo's parity suites check is serial and hand-enumerated;
this package drives the serving engines the way production would —
sustained mixed read/write traffic from many concurrent clients — while
keeping every run reproducible from one seed:

* :mod:`repro.load.workload` — seeded :class:`WorkloadGenerator` emitting
  mixed traces (Zipf-skewed queries, cache-hot repeats, add/update/remove
  batches, refresh ticks) that are valid by construction when replayed in
  order;
* :mod:`repro.load.runner` — :class:`WorkloadRunner` replaying a trace
  serially (the golden reference) or across N worker threads with
  mutations admitted in trace order, recording per-op-kind latency
  histograms, throughput and an epoch-observation audit;
* :mod:`repro.load.invariants` — :func:`check_replay_parity`, asserting
  that a concurrent replay errors nowhere, converges to the serial final
  state, ranks the trace's evaluation probes identically to 1e-9 after
  quiescing, and never let any reader observe the epoch run backwards.
"""

from repro.load.workload import (
    MUTATE,
    QUERY,
    REFRESH,
    Operation,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadTrace,
)
from repro.load.runner import (
    LatencyHistogram,
    WorkloadReport,
    WorkloadRunner,
    quiesced_rankings,
)
from repro.load.invariants import (
    PARITY_TOL,
    ReplayParityReport,
    check_replay_parity,
)

__all__ = [
    "MUTATE",
    "QUERY",
    "REFRESH",
    "Operation",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadTrace",
    "LatencyHistogram",
    "WorkloadReport",
    "WorkloadRunner",
    "quiesced_rankings",
    "PARITY_TOL",
    "ReplayParityReport",
    "check_replay_parity",
]
