"""Deterministic mixed-workload trace generation.

A :class:`WorkloadGenerator` turns a folksonomy into a reproducible stream
of serving operations — the traffic shape the ROADMAP's "heavy traffic
from many concurrent clients" north star demands but the hand-enumerated
parity suites never produce:

* **Zipf-skewed queries** — tag popularity in folksonomies is heavy-tailed,
  so query tags are drawn from a Zipf distribution over the vocabulary
  (a deterministic, seeded permutation decides which tags form the head);
* **cache-hot repeats** — a fraction of queries repeats a recently issued
  query verbatim, the access pattern the LRU result cache exists for;
* **mutations** — add/update/remove batches over the live resource set,
  generated against a simulated corpus so that every batch is valid when
  the trace is replayed *in order*;
* **refresh ticks** — explicit eager refreshes interleaved into the
  stream, forcing the lazily-folded statistics path to run mid-traffic.

Everything is derived from one integer seed through one
:class:`numpy.random.Generator`, so two generators with equal config and
seed emit byte-identical traces — the property that makes a trace a
*golden* artefact: replay it serially for the reference answer, replay it
concurrently for the stress run, and compare.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.errors import ConfigurationError

#: Operation kinds appearing in a trace.
QUERY = "query"
MUTATE = "mutate"
REFRESH = "refresh"


@dataclass(frozen=True)
class Operation:
    """One replayable serving operation.

    ``kind`` selects which payload fields are meaningful: queries carry
    ``query_tags`` and ``top_k``; mutations carry the three buckets plus
    ``mutation_seq`` — their zero-based position among the trace's
    mutations, which a concurrent replayer uses to apply them in exactly
    the serial order (queries carry no ordering constraint).

    Scenario profiles (:mod:`repro.load.scenarios`) stamp two optional
    annotations: ``tenant`` attributes the operation to a named client
    (empty = untenanted), which the replay runner threads through
    per-tenant admission and latency books; ``arrival_offset`` is the
    operation's scheduled dispatch time in seconds from replay start
    (negative = dispatch immediately), honoured when the runner replays
    with ``pace=True``.
    """

    index: int
    kind: str
    query_tags: Tuple[str, ...] = ()
    top_k: Optional[int] = None
    added: Dict[str, Dict[str, float]] = field(default_factory=dict)
    updated: Dict[str, Dict[str, float]] = field(default_factory=dict)
    removed: Tuple[str, ...] = ()
    mutation_seq: int = -1
    tenant: str = ""
    arrival_offset: float = -1.0


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a generated workload trace.

    The operation mix is ``query_fraction`` queries, ``refresh_fraction``
    eager refresh ticks, and mutations for the remainder — the default is
    the paper-serving-realistic 90/10 read/write split with occasional
    refresh ticks.
    """

    num_operations: int = 400
    query_fraction: float = 0.9
    refresh_fraction: float = 0.02
    zipf_exponent: float = 1.1
    hot_fraction: float = 0.3
    hot_window: int = 16
    min_query_tags: int = 1
    max_query_tags: int = 3
    unknown_tag_fraction: float = 0.05
    top_k: Optional[int] = 10
    add_weight: float = 0.5
    update_weight: float = 0.3
    remove_weight: float = 0.2
    max_mutation_batch: int = 3
    max_bag_tags: int = 4
    min_live_resources: int = 8
    num_eval_queries: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_operations < 1:
            raise ConfigurationError(
                f"num_operations must be >= 1, got {self.num_operations}"
            )
        if not 0.0 <= self.query_fraction <= 1.0:
            raise ConfigurationError(
                f"query_fraction must be in [0, 1], got {self.query_fraction}"
            )
        if not 0.0 <= self.refresh_fraction <= 1.0:
            raise ConfigurationError(
                f"refresh_fraction must be in [0, 1], got {self.refresh_fraction}"
            )
        if self.query_fraction + self.refresh_fraction > 1.0:
            raise ConfigurationError(
                "query_fraction + refresh_fraction must not exceed 1.0"
            )
        if self.zipf_exponent <= 0.0:
            raise ConfigurationError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if self.hot_window < 1:
            raise ConfigurationError(
                f"hot_window must be >= 1, got {self.hot_window}"
            )
        if not 1 <= self.min_query_tags <= self.max_query_tags:
            raise ConfigurationError(
                "need 1 <= min_query_tags <= max_query_tags, got "
                f"{self.min_query_tags}..{self.max_query_tags}"
            )
        if self.top_k is not None and self.top_k < 1:
            raise ConfigurationError(
                f"top_k must be >= 1 when given, got {self.top_k}"
            )
        weights = (self.add_weight, self.update_weight, self.remove_weight)
        if min(weights) < 0.0 or sum(weights) <= 0.0:
            raise ConfigurationError(
                "mutation weights must be non-negative with a positive sum"
            )
        if self.max_mutation_batch < 1:
            raise ConfigurationError(
                f"max_mutation_batch must be >= 1, got {self.max_mutation_batch}"
            )
        if self.min_live_resources < 1:
            raise ConfigurationError(
                f"min_live_resources must be >= 1, got {self.min_live_resources}"
            )


@dataclass(frozen=True)
class WorkloadTrace:
    """A generated operation stream plus its fixed evaluation probes.

    ``eval_queries`` are fresh (never-replayed) queries sampled from the
    same Zipf head; after a replay quiesces, ranking them against the
    final index is the parity probe the invariant checker compares across
    serial and concurrent runs.
    """

    operations: Tuple[Operation, ...]
    eval_queries: Tuple[Tuple[str, ...], ...]
    config: WorkloadConfig

    @property
    def num_mutations(self) -> int:
        """Mutation batches in the trace (== the final epoch delta)."""
        return sum(1 for op in self.operations if op.kind == MUTATE)

    def op_counts(self) -> Dict[str, int]:
        """Operations per kind (for reports and mix assertions)."""
        counts: Dict[str, int] = {}
        for op in self.operations:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.operations)


class WorkloadGenerator:
    """Seeded generator of :class:`WorkloadTrace` streams over a corpus."""

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config or WorkloadConfig()

    def generate(self, folksonomy) -> WorkloadTrace:
        """Generate one deterministic trace over ``folksonomy``.

        The generator simulates the live resource set as it emits
        mutations, so a trace replayed *in operation order* never issues
        an invalid batch (no duplicate adds, no removes of missing
        resources, never draining the corpus below
        ``min_live_resources``).  Concurrent replayers must therefore
        apply mutations in ``mutation_seq`` order — which is also what
        makes their final state comparable to the serial golden replay.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        tags = sorted(folksonomy.tags)
        if not tags:
            raise ConfigurationError("cannot generate a workload over zero tags")
        zipf_probs = self._zipf_probabilities(rng, len(tags))

        live = sorted(folksonomy.resources)
        if len(live) < config.min_live_resources:
            raise ConfigurationError(
                f"corpus has {len(live)} resources but the workload floor is "
                f"{config.min_live_resources}"
            )
        operations: List[Operation] = []
        hot_queries: List[Tuple[str, ...]] = []
        mutation_seq = 0
        fresh_counter = 0

        # Clamp + renormalise: with query_fraction + refresh_fraction at
        # exactly 1.0 the float remainder can be a tiny negative, which
        # rng.choice rejects as a malformed probability vector.
        kind_probs = np.array(
            [
                config.query_fraction,
                config.refresh_fraction,
                max(
                    0.0,
                    1.0 - config.query_fraction - config.refresh_fraction,
                ),
            ]
        )
        kind_probs = kind_probs / kind_probs.sum()
        for index in range(config.num_operations):
            kind = [QUERY, REFRESH, MUTATE][
                int(rng.choice(3, p=kind_probs))
            ]
            if kind == MUTATE and len(live) <= config.min_live_resources:
                # Too close to the floor for a guaranteed-valid batch;
                # degrade to a query so the trace length stays exact.
                kind = QUERY
            if kind == QUERY:
                query = self._draw_query(rng, tags, zipf_probs, hot_queries)
                hot_queries.append(query)
                del hot_queries[: -config.hot_window]
                operations.append(
                    Operation(
                        index=index,
                        kind=QUERY,
                        query_tags=query,
                        top_k=config.top_k,
                    )
                )
            elif kind == REFRESH:
                operations.append(Operation(index=index, kind=REFRESH))
            else:
                added, updated, removed, fresh_counter = self._draw_mutation(
                    rng, tags, zipf_probs, live, fresh_counter
                )
                for resource in removed:
                    live.remove(resource)
                for resource in added:
                    self._insort(live, resource)
                operations.append(
                    Operation(
                        index=index,
                        kind=MUTATE,
                        added=added,
                        updated=updated,
                        removed=tuple(removed),
                        mutation_seq=mutation_seq,
                    )
                )
                mutation_seq += 1

        eval_queries = tuple(
            self._fresh_query(rng, tags, zipf_probs)
            for _ in range(config.num_eval_queries)
        )
        return WorkloadTrace(
            operations=tuple(operations),
            eval_queries=eval_queries,
            config=config,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _zipf_probabilities(
        self, rng: np.random.Generator, num_tags: int
    ) -> np.ndarray:
        """Zipf weights over the tag list, head chosen by a seeded shuffle.

        Without the shuffle the lexicographically-smallest tags would
        always form the head, which would correlate query popularity with
        the ranking tie-break order; the permutation decorrelates them
        while staying fully determined by the seed.
        """
        ranks = rng.permutation(num_tags) + 1
        weights = 1.0 / np.power(ranks.astype(np.float64), self.config.zipf_exponent)
        return weights / weights.sum()

    def _fresh_query(
        self,
        rng: np.random.Generator,
        tags: Sequence[str],
        zipf_probs: np.ndarray,
    ) -> Tuple[str, ...]:
        config = self.config
        size = int(
            rng.integers(config.min_query_tags, config.max_query_tags + 1)
        )
        size = min(size, len(tags))
        chosen = rng.choice(len(tags), size=size, replace=False, p=zipf_probs)
        query = [tags[i] for i in chosen]
        if rng.random() < config.unknown_tag_fraction:
            # An out-of-vocabulary tag exercises the unknown-term paths
            # (dropped under plain idf, max-idf mass under smoothing).
            query.append(f"wl-unknown-{int(rng.integers(1000))}")
        return tuple(query)

    def _draw_query(
        self,
        rng: np.random.Generator,
        tags: Sequence[str],
        zipf_probs: np.ndarray,
        hot_queries: Sequence[Tuple[str, ...]],
    ) -> Tuple[str, ...]:
        if hot_queries and rng.random() < self.config.hot_fraction:
            return hot_queries[int(rng.integers(len(hot_queries)))]
        return self._fresh_query(rng, tags, zipf_probs)

    def _draw_bag(
        self,
        rng: np.random.Generator,
        tags: Sequence[str],
        zipf_probs: np.ndarray,
    ) -> Dict[str, float]:
        size = int(rng.integers(1, self.config.max_bag_tags + 1))
        size = min(size, len(tags))
        chosen = rng.choice(len(tags), size=size, replace=False, p=zipf_probs)
        return {tags[i]: float(rng.integers(1, 4)) for i in chosen}

    def _draw_mutation(
        self,
        rng: np.random.Generator,
        tags: Sequence[str],
        zipf_probs: np.ndarray,
        live: List[str],
        fresh_counter: int,
    ) -> Tuple[
        Dict[str, Dict[str, float]],
        Dict[str, Dict[str, float]],
        List[str],
        int,
    ]:
        config = self.config
        weights = np.array(
            [config.add_weight, config.update_weight, config.remove_weight]
        )
        weights = weights / weights.sum()
        batch_size = int(rng.integers(1, config.max_mutation_batch + 1))
        added: Dict[str, Dict[str, float]] = {}
        updated: Dict[str, Dict[str, float]] = {}
        removed: List[str] = []
        touched: set = set()
        headroom = len(live) - config.min_live_resources
        for _ in range(batch_size):
            op = int(rng.choice(3, p=weights))
            if op == 0:
                resource = f"wl-{fresh_counter:05d}"
                fresh_counter += 1
                added[resource] = self._draw_bag(rng, tags, zipf_probs)
                touched.add(resource)
                headroom += 1
                continue
            # update/remove need an untouched live victim; fall back to an
            # add when the batch already touched everything reachable.
            candidates = [r for r in live if r not in touched]
            if not candidates or (op == 2 and headroom <= 0):
                resource = f"wl-{fresh_counter:05d}"
                fresh_counter += 1
                added[resource] = self._draw_bag(rng, tags, zipf_probs)
                touched.add(resource)
                headroom += 1
                continue
            victim = candidates[int(rng.integers(len(candidates)))]
            touched.add(victim)
            if op == 1:
                updated[victim] = self._draw_bag(rng, tags, zipf_probs)
            else:
                removed.append(victim)
                headroom -= 1
        return added, updated, removed, fresh_counter

    @staticmethod
    def _insort(live: List[str], resource: str) -> None:
        """Insert keeping ``live`` sorted (victim draws stay deterministic)."""
        bisect.insort(live, resource)
