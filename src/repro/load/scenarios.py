"""Named workload scenarios: production-shaped traffic from one seed.

The base :class:`~repro.load.workload.WorkloadGenerator` emits one world:
a steady 90/10 Zipf mix.  This module grows it into a scenario engine —
five named, seeded profiles, each reproducing a production incident
shape (the pairing the operations runbook documents):

* ``flash_crowd`` — a sudden hot-key concentration: mid-trace, queries
  collapse onto a handful of crowd keys, the access pattern that makes
  or breaks in-flight dedup and the result cache;
* ``diurnal`` — the same mix, but arrivals follow a sinusoidal load
  curve via per-operation ``arrival_offset`` stamps, replayed with the
  runner's ``pace=True``;
* ``multi_tenant`` — queries split across named tenants with skewed
  traffic shares and *per-tenant* Zipf heads, feeding per-tenant
  admission quotas and latency books;
* ``rebuild_storm`` — a write-heavy mutation burst (the shape that
  races a background refit);
* ``chaos`` — a query stream plus a deterministic :class:`FaultPlan`
  that kills and stalls shard-pool workers at trace-scheduled points,
  then restores them, executed by :func:`run_chaos`.

Everything stays reproducible: one ``(scenario, seed)`` pair yields one
byte-identical :class:`ScenarioTrace`, fault schedule included, so a
chaos run is as replayable as a parity probe.  The matching per-scenario
invariants live in :mod:`repro.load.invariants`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.load.runner import (
    WorkloadReport,
    WorkloadRunner,
    merge_workload_reports,
    quiesced_rankings,
)
from repro.load.workload import (
    QUERY,
    Operation,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadTrace,
)
from repro.utils.errors import ConfigurationError

#: The named scenario profiles :func:`build_scenario` understands.
SCENARIO_FLASH_CROWD = "flash_crowd"
SCENARIO_DIURNAL = "diurnal"
SCENARIO_MULTI_TENANT = "multi_tenant"
SCENARIO_REBUILD_STORM = "rebuild_storm"
SCENARIO_CHAOS = "chaos"
SCENARIO_NAMES = (
    SCENARIO_FLASH_CROWD,
    SCENARIO_DIURNAL,
    SCENARIO_MULTI_TENANT,
    SCENARIO_REBUILD_STORM,
    SCENARIO_CHAOS,
)

#: Fault kinds a :class:`FaultAction` can schedule.
FAULT_KILL = "kill"
FAULT_STALL = "stall"
FAULT_RESTART = "restart"
FAULT_KINDS = (FAULT_KILL, FAULT_STALL, FAULT_RESTART)

#: Default tenants (name, traffic share) for the multi-tenant profile.
DEFAULT_TENANTS: Tuple[Tuple[str, float], ...] = (
    ("tenant-a", 0.6),
    ("tenant-b", 0.3),
    ("tenant-c", 0.1),
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: *before* operation ``at_op`` is dispatched,
    do ``kind`` to shard ``shard_id`` (``seconds`` sizes a stall)."""

    at_op: int
    kind: str
    shard_id: int
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if self.at_op < 0:
            raise ConfigurationError(f"at_op must be >= 0, got {self.at_op}")
        if self.shard_id < 0:
            raise ConfigurationError(
                f"shard_id must be >= 0, got {self.shard_id}"
            )
        if self.kind == FAULT_STALL and not self.seconds > 0.0:
            raise ConfigurationError(
                f"a stall needs seconds > 0, got {self.seconds}"
            )

    def describe(self) -> str:
        detail = f" for {self.seconds:g}s" if self.kind == FAULT_STALL else ""
        return f"op {self.at_op}: {self.kind} shard {self.shard_id}{detail}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded fault schedule over one trace replay.

    Actions are sorted by ``at_op`` and the plan is **self-restoring**:
    every killed or stalled shard is followed by a later ``restart`` of
    the same shard, so a plan that executes to completion always leaves
    the pool fully healthy — the precondition for the chaos invariant's
    post-revival parity probe.
    """

    actions: Tuple[FaultAction, ...]
    num_shards: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        ops = [action.at_op for action in self.actions]
        if ops != sorted(ops):
            raise ConfigurationError("fault actions must be sorted by at_op")
        for action in self.actions:
            if action.shard_id >= self.num_shards:
                raise ConfigurationError(
                    f"fault targets shard {action.shard_id} but the plan "
                    f"covers {self.num_shards} shard(s)"
                )
        unrestored = self.unrestored_shards()
        if unrestored:
            raise ConfigurationError(
                "fault plan is not self-restoring: shard(s) "
                f"{sorted(unrestored)} end the plan killed/stalled without "
                "a later restart"
            )

    def unrestored_shards(self) -> List[int]:
        """Shards left faulted by the schedule (must be empty)."""
        faulted: set = set()
        for action in self.actions:
            if action.kind in (FAULT_KILL, FAULT_STALL):
                faulted.add(action.shard_id)
            else:
                faulted.discard(action.shard_id)
        return sorted(faulted)

    @property
    def faulted_shards(self) -> Tuple[int, ...]:
        """Every shard the plan touches with a kill or stall."""
        return tuple(
            sorted(
                {
                    action.shard_id
                    for action in self.actions
                    if action.kind in (FAULT_KILL, FAULT_STALL)
                }
            )
        )

    def describe(self) -> List[str]:
        return [action.describe() for action in self.actions]

    @classmethod
    def generate(
        cls,
        seed: int,
        num_shards: int,
        num_operations: int,
        num_faults: int = 2,
        stall_seconds: float = 1.5,
    ) -> "FaultPlan":
        """A seeded schedule: faults in the trace's middle half, each
        restored before the trace ends.

        Faults land in ``[n/4, 3n/4)`` so the replay is warm when they
        fire and has room to prove recovery after the restarts; the
        matching restart lands strictly later, before ``num_operations``.
        Per-shard windows never overlap — a shard's next fault is
        scheduled strictly after its previous restart, so every kill
        targets a live worker and every stall targets a serving one.
        When a shard runs out of room for another fault-plus-restart
        pair, that fault is dropped: ``num_faults`` is an upper bound,
        and the first fault always fits.
        """
        if num_operations < 8:
            raise ConfigurationError(
                f"need >= 8 operations to schedule faults, got "
                f"{num_operations}"
            )
        if num_faults < 1:
            raise ConfigurationError(
                f"num_faults must be >= 1, got {num_faults}"
            )
        rng = np.random.default_rng(seed)
        window_lo = num_operations // 4
        window_hi = max(window_lo + 1, (3 * num_operations) // 4)
        actions: List[FaultAction] = []
        # Spread faults over distinct shards first (a seeded permutation),
        # wrapping onto already-faulted shards only when num_faults
        # exceeds num_shards; free_after serializes each shard's windows.
        order = [int(shard) for shard in rng.permutation(num_shards)]
        free_after: Dict[int, int] = {}
        for index in range(num_faults):
            shard = order[index % num_shards]
            lo = max(window_lo, free_after.get(shard, window_lo - 1) + 1)
            if lo >= window_hi:
                continue  # this shard has no room left in the window
            at_op = int(rng.integers(lo, window_hi))
            if at_op + 1 >= num_operations:
                continue  # no room for the strictly-later restart
            kind = FAULT_KILL if rng.random() < 0.5 else FAULT_STALL
            actions.append(
                FaultAction(
                    at_op=at_op,
                    kind=kind,
                    shard_id=shard,
                    seconds=stall_seconds if kind == FAULT_STALL else 0.0,
                )
            )
            restart_at = int(rng.integers(at_op + 1, num_operations))
            actions.append(
                FaultAction(at_op=restart_at, kind=FAULT_RESTART, shard_id=shard)
            )
            free_after[shard] = restart_at
        # Python's sort is stable, so a restart scheduled at the same
        # at_op as a later fault keeps its relative order per shard.
        actions.sort(key=lambda action: action.at_op)
        return cls(actions=tuple(actions), num_shards=num_shards, seed=seed)


@dataclass(frozen=True)
class ScenarioTrace:
    """One built scenario: the trace plus its scenario-specific payload."""

    scenario: str
    trace: WorkloadTrace
    fault_plan: Optional[FaultPlan] = None
    tenants: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIO_NAMES:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {SCENARIO_NAMES}"
            )


def build_scenario(
    name: str,
    folksonomy,
    seed: int = 0,
    num_operations: int = 160,
    num_shards: int = 4,
    top_k: Optional[int] = 10,
    crowd_keys: int = 2,
    crowd_fraction: float = 0.5,
    duration_seconds: float = 0.8,
    tenants: Sequence[Tuple[str, float]] = DEFAULT_TENANTS,
    num_faults: int = 2,
    stall_seconds: float = 1.5,
) -> ScenarioTrace:
    """Build one named scenario trace over ``folksonomy``.

    Deterministic: equal ``(name, seed, knobs)`` yield byte-identical
    traces (and fault schedules), exactly like the base generator.  The
    per-scenario knobs are ignored by the profiles that don't use them:
    ``crowd_keys``/``crowd_fraction`` shape the flash crowd,
    ``duration_seconds`` spans the diurnal curve, ``tenants`` names the
    multi-tenant split, and ``num_shards``/``num_faults``/
    ``stall_seconds`` feed the chaos :class:`FaultPlan`.
    """
    builders = {
        SCENARIO_FLASH_CROWD: _build_flash_crowd,
        SCENARIO_DIURNAL: _build_diurnal,
        SCENARIO_MULTI_TENANT: _build_multi_tenant,
        SCENARIO_REBUILD_STORM: _build_rebuild_storm,
        SCENARIO_CHAOS: _build_chaos,
    }
    if name not in builders:
        raise ConfigurationError(
            f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
        )
    return builders[name](
        folksonomy,
        seed=seed,
        num_operations=num_operations,
        num_shards=num_shards,
        top_k=top_k,
        crowd_keys=crowd_keys,
        crowd_fraction=crowd_fraction,
        duration_seconds=duration_seconds,
        tenants=tenants,
        num_faults=num_faults,
        stall_seconds=stall_seconds,
    )


def _query_only_config(
    num_operations: int, seed: int, top_k: Optional[int]
) -> WorkloadConfig:
    """A mutation-free mix — the shape a read-only pool can replay."""
    return WorkloadConfig(
        num_operations=num_operations,
        query_fraction=0.98,
        refresh_fraction=0.02,
        seed=seed,
        top_k=top_k,
    )


def _build_flash_crowd(folksonomy, **kw) -> ScenarioTrace:
    """Mid-trace, queries collapse onto a handful of crowd keys.

    The trace is mutation-free so the profile also replays against the
    read-only process pool; the crowd window covers the middle
    ``crowd_fraction`` of the trace, inside which every query is one of
    ``crowd_keys`` fixed queries — the dedup/cache stress.
    """
    config = _query_only_config(kw["num_operations"], kw["seed"], kw["top_k"])
    base = WorkloadGenerator(config).generate(folksonomy)
    rng = np.random.default_rng(config.seed + 1)
    queries = [op for op in base.operations if op.kind == QUERY]
    if len(queries) < kw["crowd_keys"]:
        raise ConfigurationError(
            f"trace has {len(queries)} queries but the crowd needs "
            f"{kw['crowd_keys']} keys"
        )
    keys = [
        queries[int(i)].query_tags
        for i in rng.choice(len(queries), size=kw["crowd_keys"], replace=False)
    ]
    total = len(base.operations)
    span = int(total * kw["crowd_fraction"])
    window_lo = (total - span) // 2
    window_hi = window_lo + span
    operations = []
    for op in base.operations:
        if op.kind == QUERY and window_lo <= op.index < window_hi:
            op = replace(
                op, query_tags=keys[int(rng.integers(len(keys)))]
            )
        operations.append(op)
    trace = WorkloadTrace(
        operations=tuple(operations),
        eval_queries=base.eval_queries,
        config=config,
    )
    return ScenarioTrace(
        scenario=SCENARIO_FLASH_CROWD,
        trace=trace,
        description=(
            f"{kw['crowd_keys']} crowd keys over ops "
            f"[{window_lo}, {window_hi}) of {total}"
        ),
    )


def _build_diurnal(folksonomy, **kw) -> ScenarioTrace:
    """The steady mix with sinusoidal arrival pacing.

    Inter-arrival gaps follow the inverse of a one-cycle sinusoidal
    density (peak traffic mid-trace, troughs at the edges), normalised
    so the last arrival lands at ``duration_seconds`` — short enough
    for tests, shaped enough that a paced replay's wall time proves the
    curve was honoured.
    """
    config = WorkloadConfig(
        num_operations=kw["num_operations"], seed=kw["seed"], top_k=kw["top_k"]
    )
    base = WorkloadGenerator(config).generate(folksonomy)
    n = len(base.operations)
    phases = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    density = 1.0 + 0.8 * np.sin(phases - np.pi / 2.0)  # trough at t=0
    gaps = 1.0 / np.maximum(density, 0.2)
    offsets = np.concatenate(([0.0], np.cumsum(gaps)[:-1]))
    if offsets[-1] > 0.0:
        offsets = offsets * (kw["duration_seconds"] / offsets[-1])
    operations = tuple(
        replace(op, arrival_offset=float(offsets[i]))
        for i, op in enumerate(base.operations)
    )
    trace = WorkloadTrace(
        operations=operations, eval_queries=base.eval_queries, config=config
    )
    return ScenarioTrace(
        scenario=SCENARIO_DIURNAL,
        trace=trace,
        description=(
            f"sinusoidal arrivals over {kw['duration_seconds']:g}s "
            f"({n} ops)"
        ),
    )


def _build_multi_tenant(folksonomy, **kw) -> ScenarioTrace:
    """Queries attributed to tenants with skewed shares and skews.

    Each tenant draws from its *own* seeded Zipf head over the shared
    vocabulary, so tenants disagree about which tags are hot — the
    shape that makes per-tenant books and quotas meaningful.  Mutations
    and refreshes stay untenanted (they are operator traffic).
    """
    tenants = tuple(kw["tenants"])
    if not tenants:
        raise ConfigurationError("multi_tenant needs >= 1 tenant")
    shares = np.array([share for _, share in tenants], dtype=np.float64)
    if shares.min() <= 0.0:
        raise ConfigurationError("tenant shares must be positive")
    shares = shares / shares.sum()
    config = WorkloadConfig(
        num_operations=kw["num_operations"], seed=kw["seed"], top_k=kw["top_k"]
    )
    generator = WorkloadGenerator(config)
    base = generator.generate(folksonomy)
    tags = sorted(folksonomy.tags)
    rng = np.random.default_rng(config.seed + 2)
    tenant_rngs = [
        np.random.default_rng(config.seed * 31 + index + 7)
        for index in range(len(tenants))
    ]
    tenant_probs = [
        generator._zipf_probabilities(tenant_rng, len(tags))
        for tenant_rng in tenant_rngs
    ]
    operations = []
    for op in base.operations:
        if op.kind == QUERY:
            choice = int(rng.choice(len(tenants), p=shares))
            query = generator._fresh_query(
                tenant_rngs[choice], tags, tenant_probs[choice]
            )
            op = replace(op, tenant=tenants[choice][0], query_tags=query)
        operations.append(op)
    trace = WorkloadTrace(
        operations=tuple(operations),
        eval_queries=base.eval_queries,
        config=config,
    )
    return ScenarioTrace(
        scenario=SCENARIO_MULTI_TENANT,
        trace=trace,
        tenants=tuple(name for name, _ in tenants),
        description=(
            "tenant shares "
            + ", ".join(f"{name}={share:g}" for name, share in tenants)
        ),
    )


def _build_rebuild_storm(folksonomy, **kw) -> ScenarioTrace:
    """A write-heavy burst: ~60% mutations in large batches."""
    config = WorkloadConfig(
        num_operations=kw["num_operations"],
        query_fraction=0.35,
        refresh_fraction=0.05,
        max_mutation_batch=5,
        seed=kw["seed"],
        top_k=kw["top_k"],
    )
    trace = WorkloadGenerator(config).generate(folksonomy)
    return ScenarioTrace(
        scenario=SCENARIO_REBUILD_STORM,
        trace=trace,
        description=(
            f"{trace.num_mutations} mutation batches in {len(trace)} ops"
        ),
    )


def _build_chaos(folksonomy, **kw) -> ScenarioTrace:
    """A query stream plus the seeded worker-fault schedule."""
    config = _query_only_config(kw["num_operations"], kw["seed"], kw["top_k"])
    trace = WorkloadGenerator(config).generate(folksonomy)
    plan = FaultPlan.generate(
        seed=kw["seed"],
        num_shards=kw["num_shards"],
        num_operations=kw["num_operations"],
        num_faults=kw["num_faults"],
        stall_seconds=kw["stall_seconds"],
    )
    return ScenarioTrace(
        scenario=SCENARIO_CHAOS,
        trace=trace,
        fault_plan=plan,
        description="; ".join(plan.describe()),
    )


# ---------------------------------------------------------------------- #
# Chaos execution
# ---------------------------------------------------------------------- #
@dataclass
class ChaosOutcome:
    """What one chaos run did: the merged replay report, the fault log,
    recovery timing, the pool's final health and the post-revival
    quiesced probe rankings (the reconvergence evidence)."""

    scenario: ScenarioTrace
    report: WorkloadReport
    fault_log: List[str]
    recovery_seconds: float
    wall_seconds: float
    post_rankings: Tuple[int, List[list]]
    health: Dict[str, object] = field(default_factory=dict)


def run_chaos(
    save_dir,
    scenario: ScenarioTrace,
    num_workers: int = 4,
    request_timeout: float = 0.75,
    heartbeat_timeout: float = 0.25,
    recovery_timeout: float = 30.0,
) -> ChaosOutcome:
    """Replay a chaos scenario against a strict-reads process pool.

    The trace is split at each :class:`FaultAction`'s ``at_op``; every
    segment replays concurrently, the scheduled fault fires between
    segments, and the segment reports merge into one.  The pool runs
    with ``strict_reads=True`` so a degraded fan-out surfaces as a typed
    :class:`~repro.search.shardpool.ShardPoolDegraded` *error* in the
    report instead of a silently truncated ranking presented as
    complete — the property the chaos invariant asserts.

    ``recovery_seconds`` measures from just before the plan's final
    restoring action until the first fully-complete read afterwards
    (bounded by ``recovery_timeout``).  After the replay the pool
    quiesces and ranks the trace's evaluation probes — the caller
    compares them against a golden engine at 1e-9 via
    :func:`~repro.load.invariants.check_chaos`.
    """
    # Deferred: repro.load must stay importable without dragging the
    # multiprocessing pool machinery in at import time.
    from repro.search.shardpool import ShardPoolConfig, ShardProcessPool

    if scenario.scenario != SCENARIO_CHAOS:
        raise ConfigurationError(
            f"run_chaos needs a chaos scenario, got {scenario.scenario!r}"
        )
    plan = scenario.fault_plan
    if plan is None:
        raise ConfigurationError("chaos scenario carries no fault plan")
    if scenario.trace.num_mutations:
        raise ConfigurationError(
            "chaos traces must be mutation-free (the pool is read-only)"
        )

    pool = ShardProcessPool(
        save_dir,
        ShardPoolConfig(
            request_timeout=request_timeout,
            heartbeat_timeout=heartbeat_timeout,
            strict_reads=True,
        ),
    )
    if pool.num_shards != plan.num_shards:
        pool.close()
        raise ConfigurationError(
            f"fault plan covers {plan.num_shards} shard(s) but the save "
            f"has {pool.num_shards}"
        )
    try:
        started = time.perf_counter()
        reports: List[WorkloadReport] = []
        fault_log: List[str] = []
        recovery_started: Optional[float] = None
        operations = scenario.trace.operations
        cut = 0
        schedule = list(plan.actions) + [None]  # trailing segment
        last_restoring_index = max(
            (
                index
                for index, action in enumerate(plan.actions)
                if action.kind == FAULT_RESTART
            ),
            default=-1,
        )
        for index, action in enumerate(schedule):
            upto = len(operations) if action is None else action.at_op
            segment = operations[cut:upto]
            cut = upto
            if segment:
                sub_trace = WorkloadTrace(
                    operations=tuple(segment),
                    eval_queries=scenario.trace.eval_queries,
                    config=scenario.trace.config,
                )
                reports.append(
                    WorkloadRunner(pool, sub_trace).run_concurrent(num_workers)
                )
            if action is None:
                continue
            fault_log.append(action.describe())
            if action.kind == FAULT_KILL:
                pool.kill_worker(action.shard_id)
            elif action.kind == FAULT_STALL:
                pool.inject_stall(action.shard_id, action.seconds)
            else:
                if index == last_restoring_index:
                    recovery_started = time.perf_counter()
                pool.restart_worker(action.shard_id)

        # Recovery: first fully-complete read after the last restore.
        if recovery_started is None:
            recovery_started = time.perf_counter()
        probe = [list(query) for query in scenario.trace.eval_queries[:1]]
        deadline = recovery_started + recovery_timeout
        while True:
            try:
                outcome = pool.rank_batch_detailed(
                    probe, top_k=scenario.trace.config.top_k
                )
                if outcome.complete:
                    break
            except Exception:  # noqa: BLE001 - still degraded; keep probing
                pass
            if time.perf_counter() > deadline:
                break
            time.sleep(0.01)
        recovery_seconds = time.perf_counter() - recovery_started

        report = merge_workload_reports(reports, mode="chaos")
        post_rankings = quiesced_rankings(pool, scenario.trace)
        return ChaosOutcome(
            scenario=scenario,
            report=report,
            fault_log=fault_log,
            recovery_seconds=recovery_seconds,
            wall_seconds=time.perf_counter() - started,
            post_rankings=post_rankings,
            health=pool.health(),
        )
    finally:
        pool.close()
