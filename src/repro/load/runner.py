"""Trace replay: serial golden runs and concurrent stress runs.

:class:`WorkloadRunner` replays a :class:`~repro.load.workload.WorkloadTrace`
against a serving engine (monolithic :class:`~repro.search.engine.SearchEngine`
or :class:`~repro.search.sharding.ShardedSearchEngine` — anything with the
``snapshot_rank_batch`` / ``apply_mutations`` / ``refresh`` surface):

* **serially** — one thread, trace order; the replay every other run is
  judged against;
* **concurrently** — N worker threads pull operations from a shared
  cursor.  Queries execute wherever they land; mutation batches pass
  through an ordering gate that admits them strictly in ``mutation_seq``
  order, so the final index state is *defined* to equal the serial
  replay's (queries interleave freely in between — that interleaving is
  the stress).

Every operation is timed into a per-kind :class:`LatencyHistogram`
(log-spaced buckets, mergeable across workers without locks), every query
goes through the engine's epoch-consistent ``snapshot_rank_batch`` and
feeds an :class:`~repro.search.incremental.EpochObservationLog`, and every
worker exception is captured — a :class:`WorkloadReport` then carries
throughput, latency quantiles, the epoch audit and the error list back to
the invariant checker.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.load.workload import MUTATE, QUERY, REFRESH, Operation, WorkloadTrace
from repro.search.incremental import EpochObservationLog
from repro.utils.errors import ConfigurationError
from repro.utils.timing import format_duration

#: Lower edge of the first latency bucket (1 microsecond).
_BUCKET_FLOOR = 1e-6
#: Geometric bucket growth factor; 40 buckets span 1us .. ~18min.
_BUCKET_FACTOR = 2.0
_NUM_BUCKETS = 40


class LatencyHistogram:
    """Log-spaced latency histogram with exact count/sum/min/max.

    Buckets grow geometrically from one microsecond, so one histogram
    covers cache-hit lookups and multi-second refreshes alike; quantile
    estimates are conservative upper bucket edges (see :meth:`quantile`).
    Instances are cheap and *not* thread-safe by design: each replay
    worker records into its own set and the runner :meth:`merge`\\ s them
    afterwards, which keeps the measurement itself off the hot path's
    lock profile.

    A histogram can carry labelled **sub-histograms** (per-tenant or
    per-scenario latency books): :meth:`record` with a ``label`` counts
    the sample once in the aggregate and once in that label's child,
    and :meth:`merge` folds children recursively.  The aggregate is
    always the top-level counts alone — children are a *breakdown* of
    it, never an addition to it, so summing a report's aggregate with
    its children would double-count and the accessors keep them apart.
    """

    def __init__(self) -> None:
        self._counts = [0] * (_NUM_BUCKETS + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0
        self._children: Dict[str, "LatencyHistogram"] = {}

    def record(self, seconds: float, label: Optional[str] = None) -> None:
        if seconds < 0.0:
            raise ConfigurationError(
                f"latency must be non-negative, got {seconds}"
            )
        self._observe(seconds)
        if label is not None:
            self._ensure_child(label)._observe(seconds)

    def _observe(self, seconds: float) -> None:
        """Count one sample into this histogram's own buckets only."""
        bucket = 0
        edge = _BUCKET_FLOOR
        while bucket < _NUM_BUCKETS and seconds >= edge:
            bucket += 1
            edge *= _BUCKET_FACTOR
        self._counts[bucket] += 1
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    def _ensure_child(self, label: str) -> "LatencyHistogram":
        child = self._children.get(label)
        if child is None:
            child = self._children[label] = LatencyHistogram()
        return child

    def _fold(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s own buckets (not its children) into ours."""
        for bucket, count in enumerate(other._counts):
            self._counts[bucket] += count
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.min_seconds = min(self.min_seconds, other.min_seconds)
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    def merge(
        self, other: "LatencyHistogram", label: Optional[str] = None
    ) -> None:
        """Fold ``other``'s samples into this histogram.

        ``other``'s aggregate goes into our aggregate exactly once; its
        children merge into our same-named children, so per-label counts
        stay a partition of the aggregate across any merge tree (the
        per-worker → per-run merge in the replay runner).  With
        ``label``, ``other``'s aggregate is *additionally* recorded
        under that child — the per-scenario book when whole reports are
        folded into a cross-scenario one.
        """
        self._fold(other)
        if label is not None:
            self._ensure_child(label)._fold(other)
        for name, child in other._children.items():
            self._ensure_child(name)._fold(child)

    def child(self, label: str) -> Optional["LatencyHistogram"]:
        """The sub-histogram recorded under ``label`` (None if unseen)."""
        return self._children.get(label)

    def children(self) -> Dict[str, "LatencyHistogram"]:
        """All labelled sub-histograms (a shallow copy of the mapping)."""
        return dict(self._children)

    @property
    def labeled_count(self) -> int:
        """Samples carrying any label — never more than :attr:`count`."""
        return sum(child.count for child in self._children.values())

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def bucket_upper_bounds(self) -> List[float]:
        """Exclusive upper edge of every bucket; the last is ``+inf``.

        Public so exporters (the serving metrics registry's
        Prometheus-style text format) can render the histogram without
        reaching into the private counts.
        """
        return [
            _BUCKET_FLOOR * (_BUCKET_FACTOR**bucket)
            for bucket in range(_NUM_BUCKETS)
        ] + [float("inf")]

    def bucket_counts(self) -> List[int]:
        """Per-bucket sample counts, aligned with :meth:`bucket_upper_bounds`."""
        return list(self._counts)

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket containing the ``q``-quantile sample.

        A deliberately *conservative* estimate: with factor-2 buckets the
        true quantile may be up to one bucket factor (2x) below the
        returned edge, never above it — the safe direction for latency
        reporting and gating.  Clamped to the observed ``max_seconds`` so
        the estimate never exceeds a latency that actually happened.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for bucket, count in enumerate(self._counts):
            seen += count
            if seen >= target and count:
                upper = _BUCKET_FLOOR * (_BUCKET_FACTOR**bucket)
                return min(upper, self.max_seconds)
        return self.max_seconds

    def summary(self) -> str:
        """One line: count, mean, p50/p99, min/max."""
        if self.count == 0:
            return "no samples"
        return (
            f"n={self.count} mean={format_duration(self.mean_seconds)} "
            f"p50={format_duration(self.quantile(0.5))} "
            f"p99={format_duration(self.quantile(0.99))} "
            f"min={format_duration(self.min_seconds)} "
            f"max={format_duration(self.max_seconds)}"
        )


@dataclass
class WorkloadReport:
    """What one replay did: timing, latency, epoch audit, errors."""

    mode: str
    num_workers: int
    wall_seconds: float
    op_counts: Dict[str, int]
    latencies: Dict[str, LatencyHistogram]
    errors: List[str]
    epoch_log: EpochObservationLog
    final_epoch: int
    final_resources: int
    cache_stats: Optional[Dict[str, object]] = None
    quiesce_seconds: float = 0.0
    #: Exception class names parallel to ``errors`` — the typed-failure
    #: ledger scenario invariants assert over (e.g. a chaos replay may
    #: only ever see ShardPoolDegraded/Overloaded here, never a bare
    #: RuntimeError or a missing entry).
    error_kinds: List[str] = field(default_factory=list)

    @property
    def total_operations(self) -> int:
        return sum(self.op_counts.values())

    @property
    def ops_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_operations / self.wall_seconds

    def summary(self) -> str:
        """Multi-line human-readable report (the CI latency artefact)."""
        lines = [
            f"replay mode={self.mode} workers={self.num_workers}: "
            f"{self.total_operations} ops in "
            f"{format_duration(self.wall_seconds)} "
            f"({self.ops_per_second:,.0f} ops/s), "
            f"quiesce {format_duration(self.quiesce_seconds)}",
            f"final state: epoch={self.final_epoch} "
            f"resources={self.final_resources} "
            f"errors={len(self.errors)}",
        ]
        for kind in sorted(self.latencies):
            lines.append(f"  {kind:<8s} {self.latencies[kind].summary()}")
        if self.cache_stats is not None:
            lines.append(f"  cache    {self.cache_stats}")
        regressions = self.epoch_log.regressions()
        lines.append(
            f"  epochs   {len(self.epoch_log)} observations, "
            f"max={self.epoch_log.max_epoch}, "
            f"regressions={len(regressions)}"
        )
        for error in self.errors[:3]:
            lines.append(f"  error: {error.splitlines()[-1]}")
        return "\n".join(lines)

    def tenant_latencies(self, kind: str) -> Dict[str, LatencyHistogram]:
        """Per-label sub-histograms of one op kind (per-tenant books)."""
        histogram = self.latencies.get(kind)
        return histogram.children() if histogram is not None else {}


def merge_workload_reports(
    reports: Sequence[WorkloadReport], mode: str = "merged"
) -> WorkloadReport:
    """Fold several replay reports into one (the chaos-segment merge).

    Wall times and op counts add, error lists (and their typed kinds)
    concatenate in order, per-kind latency histograms merge with their
    labelled children intact, and the epoch observations replay into one
    combined audit log.  Final state comes from the *last* report — the
    segments are one trace replayed in order, so the last segment's
    quiesced state is the run's.
    """
    if not reports:
        raise ConfigurationError("cannot merge zero workload reports")
    latencies: Dict[str, LatencyHistogram] = {}
    op_counts: Dict[str, int] = {}
    errors: List[str] = []
    error_kinds: List[str] = []
    epoch_log = EpochObservationLog()
    wall = 0.0
    for report in reports:
        wall += report.wall_seconds
        for kind, count in report.op_counts.items():
            op_counts[kind] = op_counts.get(kind, 0) + count
        for kind, histogram in report.latencies.items():
            latencies.setdefault(kind, LatencyHistogram()).merge(histogram)
        errors.extend(report.errors)
        error_kinds.extend(report.error_kinds)
        for reader, epoch in report.epoch_log.observations():
            epoch_log.record(reader, epoch)
    last = reports[-1]
    return WorkloadReport(
        mode=mode,
        num_workers=max(report.num_workers for report in reports),
        wall_seconds=wall,
        op_counts=op_counts,
        latencies=latencies,
        errors=errors,
        epoch_log=epoch_log,
        final_epoch=last.final_epoch,
        final_resources=last.final_resources,
        cache_stats=last.cache_stats,
        quiesce_seconds=last.quiesce_seconds,
        error_kinds=error_kinds,
    )


class _MutationGate:
    """Admits mutation batches strictly in ``mutation_seq`` order."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._completed = 0

    def await_turn(self, seq: int) -> None:
        with self._cond:
            while self._completed < seq:
                self._cond.wait()

    def complete(self) -> None:
        with self._cond:
            self._completed += 1
            self._cond.notify_all()


class _SharedCursor:
    """Hands trace operations to workers exactly once, in trace order."""

    def __init__(self, operations) -> None:
        self._operations = operations
        self._next = 0
        self._lock = threading.Lock()

    def next_op(self) -> Optional[Operation]:
        with self._lock:
            if self._next >= len(self._operations):
                return None
            op = self._operations[self._next]
            self._next += 1
            return op


class WorkloadRunner:
    """Replays one trace against one engine, serially or concurrently."""

    def __init__(self, engine, trace: WorkloadTrace) -> None:
        self.engine = engine
        self.trace = trace

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run_serial(self) -> WorkloadReport:
        """Replay the trace on the calling thread, in trace order.

        This is the golden reference: with mutations ordered and queries
        deterministic, two serial replays of one trace on equal engines
        are byte-identical.
        """
        epoch_log = EpochObservationLog()
        errors: List[str] = []
        error_kinds: List[str] = []
        latencies = self._empty_latencies()
        started = time.perf_counter()
        for op in self.trace.operations:
            self._execute(
                op, "serial", latencies, epoch_log, errors, error_kinds
            )
        wall = time.perf_counter() - started
        return self._finish(
            "serial", 0, wall, latencies, epoch_log, errors, error_kinds
        )

    def run_concurrent(
        self, num_workers: int, frontend=None, pace: bool = False
    ) -> WorkloadReport:
        """Replay the trace across ``num_workers`` threads.

        Workers pull operations from a shared cursor; queries execute
        immediately while mutation batches wait at the ordering gate for
        their ``mutation_seq`` turn — so the final state matches the
        serial replay while reads and writes genuinely race in between.

        With ``frontend`` (a :class:`repro.serve.BatchingFrontend` built
        around this runner's engine, duck-typed to avoid a load <-> serve
        import cycle), queries are *submitted* instead of executed: each
        worker blocks on its own future while the front-end coalesces the
        racing submissions into micro-batched engine reads.  The observed
        epoch then comes from the resolved
        :class:`~repro.serve.frontend.QueryResponse`, so the epoch audit
        covers the batching path end to end.  Mutations and refreshes
        keep going straight to the engine — the front-end is a read-only
        surface.  The caller owns the front-end's lifecycle (it is not
        closed here).

        With ``pace`` the workers honour each operation's
        ``arrival_offset`` (the diurnal load-curve scenarios stamp one):
        an operation is dispatched no earlier than ``offset`` seconds
        after the replay started, so the trace's arrival *shape* — not
        just its contents — reaches the engine.  Unstamped operations
        (``arrival_offset < 0``) dispatch immediately.
        """
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        epoch_log = EpochObservationLog()
        errors: List[str] = []
        error_kinds: List[str] = []
        errors_lock = threading.Lock()
        cursor = _SharedCursor(self.trace.operations)
        gate = _MutationGate()
        worker_latencies = [self._empty_latencies() for _ in range(num_workers)]
        started = time.perf_counter()

        def worker(worker_id: int) -> None:
            latencies = worker_latencies[worker_id]
            while True:
                op = cursor.next_op()
                if op is None:
                    return
                if pace and op.arrival_offset >= 0.0:
                    # Arrival pacing models *when* traffic shows up, so
                    # the sleep stays outside the timed region below.
                    delay = started + op.arrival_offset - time.perf_counter()
                    if delay > 0.0:
                        time.sleep(delay)
                self._execute(
                    op,
                    f"worker-{worker_id}",
                    latencies,
                    epoch_log,
                    errors,
                    error_kinds,
                    errors_lock=errors_lock,
                    gate=gate,
                    frontend=frontend,
                )

        threads = [
            threading.Thread(
                target=worker, args=(worker_id,), name=f"workload-{worker_id}"
            )
            for worker_id in range(num_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        merged = self._empty_latencies()
        for latencies in worker_latencies:
            for kind, histogram in latencies.items():
                merged[kind].merge(histogram)
        return self._finish(
            "concurrent",
            num_workers,
            wall,
            merged,
            epoch_log,
            errors,
            error_kinds,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _empty_latencies() -> Dict[str, LatencyHistogram]:
        return {kind: LatencyHistogram() for kind in (QUERY, MUTATE, REFRESH)}

    def _execute(
        self,
        op: Operation,
        reader: str,
        latencies: Dict[str, LatencyHistogram],
        epoch_log: EpochObservationLog,
        errors: List[str],
        error_kinds: List[str],
        errors_lock: Optional[threading.Lock] = None,
        gate: Optional[_MutationGate] = None,
        frontend=None,
    ) -> None:
        if op.kind == MUTATE and gate is not None:
            # Wait *outside* the timed region: the gate models trace
            # ordering, not engine latency.
            gate.await_turn(op.mutation_seq)
        started = time.perf_counter()
        try:
            if op.kind == QUERY:
                if frontend is not None:
                    if op.tenant:
                        future = frontend.submit(
                            list(op.query_tags),
                            top_k=op.top_k,
                            tenant=op.tenant,
                        )
                    else:
                        future = frontend.submit(
                            list(op.query_tags), top_k=op.top_k
                        )
                    response = future.result()
                    epoch_log.record(reader, response.epoch)
                else:
                    epoch, _results = self.engine.snapshot_rank_batch(
                        [list(op.query_tags)], top_k=op.top_k
                    )
                    epoch_log.record(reader, epoch)
            elif op.kind == MUTATE:
                self.engine.apply_mutations(
                    added=op.added, updated=op.updated, removed=op.removed
                )
            elif op.kind == REFRESH:
                self.engine.refresh()
            else:
                raise ConfigurationError(f"unknown operation kind {op.kind!r}")
        except Exception as exc:  # noqa: BLE001 - replay must survive + report
            message = f"op {op.index} ({op.kind}): {traceback.format_exc()}"
            if errors_lock is None:
                errors.append(message)
                error_kinds.append(type(exc).__name__)
            else:
                with errors_lock:
                    errors.append(message)
                    error_kinds.append(type(exc).__name__)
        finally:
            if op.kind == MUTATE and gate is not None:
                gate.complete()
            latencies[op.kind].record(
                time.perf_counter() - started, label=op.tenant or None
            )

    def _finish(
        self,
        mode: str,
        num_workers: int,
        wall: float,
        latencies: Dict[str, LatencyHistogram],
        epoch_log: EpochObservationLog,
        errors: List[str],
        error_kinds: List[str],
    ) -> WorkloadReport:
        quiesce_started = time.perf_counter()
        self.engine.refresh()
        quiesce = time.perf_counter() - quiesce_started
        cache = getattr(self.engine, "cache", None)
        return WorkloadReport(
            mode=mode,
            num_workers=num_workers,
            wall_seconds=wall,
            op_counts=self.trace.op_counts(),
            latencies=latencies,
            errors=errors,
            epoch_log=epoch_log,
            final_epoch=self.engine.epoch,
            final_resources=self.engine.num_indexed_resources,
            cache_stats=cache.stats() if cache is not None else None,
            quiesce_seconds=quiesce,
            error_kinds=error_kinds,
        )


def quiesced_rankings(
    engine, trace: WorkloadTrace
) -> Tuple[int, List[List]]:
    """The engine's post-quiesce answers to the trace's evaluation probes.

    Refreshes the engine, then ranks ``trace.eval_queries`` through the
    epoch-consistent snapshot read — the pair the invariant checker
    compares between serial and concurrent replays.
    """
    engine.refresh()
    return engine.snapshot_rank_batch(
        [list(query) for query in trace.eval_queries],
        top_k=trace.config.top_k,
    )
