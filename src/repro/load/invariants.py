"""Replay invariants: what must hold after any replay of one trace.

The contract the serving layer's read/write discipline buys, stated as
checkable properties over a serial golden replay and a concurrent stress
replay of the *same* trace on *equally built* engines:

1. **zero errors** — no operation of either replay may raise;
2. **state convergence** — final epoch and resource count agree (the
   mutation gate makes the concurrent final state well-defined);
3. **ranking parity** — after both engines quiesce, the trace's fixed
   evaluation probes rank identically to 1e-9 (tie groups may permute,
   exactly the tolerance of the sharded parity suites);
4. **epoch monotonicity** — no replay worker ever observed the index
   epoch run backwards through its epoch-consistent snapshot reads.

:func:`check_replay_parity` builds both engines from one factory, runs
both replays, verifies all four properties and returns a
:class:`ReplayParityReport` with the verdict and both workload reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.load.runner import WorkloadReport, WorkloadRunner, quiesced_rankings
from repro.load.workload import WorkloadTrace
from repro.utils.errors import ConfigurationError

#: The ranking parity tolerance shared with the sharded parity suites.
PARITY_TOL = 1e-9


@dataclass
class ReplayParityReport:
    """Verdict of one serial-vs-concurrent replay comparison."""

    serial: WorkloadReport
    concurrent: WorkloadReport
    violations: List[str]
    mismatched_probes: List[int]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """Multi-line verdict + both replay summaries (CI artefact body)."""
        lines = [
            "replay parity: " + ("OK" if self.ok else "VIOLATED"),
        ]
        lines.extend(f"  violation: {violation}" for violation in self.violations)
        lines.append("-- serial golden --")
        lines.append(self.serial.summary())
        lines.append(f"-- concurrent x{self.concurrent.num_workers} --")
        lines.append(self.concurrent.summary())
        return "\n".join(lines)


def check_replay_parity(
    build_engine: Callable[[], object],
    trace: WorkloadTrace,
    num_workers: int = 4,
    tol: float = PARITY_TOL,
    serial_report: Optional[WorkloadReport] = None,
    serial_engine: Optional[object] = None,
    serial_rankings: Optional[Tuple[int, List[list]]] = None,
    frontend_config: Optional[object] = None,
    concurrent_build_engine: Optional[Callable[[], object]] = None,
) -> ReplayParityReport:
    """Replay ``trace`` serially and concurrently; verify the invariants.

    ``build_engine`` must return a *freshly built, identically configured*
    engine on every call — each replay mutates its own instance.  Engines
    exposing ``close`` (the sharded fan-out pool) are closed before
    returning.  Callers that already hold a serial golden run (e.g. a
    sweep comparing several worker counts against one golden) can pass
    ``serial_report`` plus either ``serial_rankings`` (the
    :func:`~repro.load.runner.quiesced_rankings` pair, so the probes are
    not re-ranked per call) or ``serial_engine`` to derive them; a
    caller-provided serial engine is *not* closed here.

    ``concurrent_build_engine`` swaps in a different factory for the
    *concurrent* side only — the pool-backed replay mode: the serial
    golden runs on the in-process engine while the stress replay drives
    e.g. a :class:`~repro.search.shardpool.ShardProcessPool` over the
    same saved index, re-proving the invariants across process
    boundaries.  The two factories must describe the same corpus at the
    same epoch; a read-only concurrent engine (the pool) additionally
    requires a query-only trace (``refresh_fraction`` may stay — the
    pool's ``refresh`` is a no-op — but mutations would raise).

    With ``frontend_config`` (a :class:`repro.serve.FrontendConfig`), the
    *concurrent* replay routes every query through a
    :class:`~repro.serve.frontend.BatchingFrontend` wrapped around the
    concurrent engine — worker submissions coalesce into micro-batched
    engine reads — while the serial golden stays direct, so the exact
    same invariants (zero errors, state convergence, post-quiesce probe
    parity, epoch monotonicity) are re-proven *through the batching
    path*.  The front-end is drained and closed before the quiesced
    probes are ranked.
    """
    # Deferred: repro.eval.workload wraps this checker, so importing the
    # comparator at module scope would make repro.load and repro.eval
    # mutually dependent at import time.
    from repro.eval.sharding import rankings_match

    if num_workers < 1:
        raise ConfigurationError(
            f"num_workers must be >= 1, got {num_workers}"
        )
    own_serial = serial_report is None
    if own_serial:
        serial_engine = build_engine()
        serial_report = WorkloadRunner(serial_engine, trace).run_serial()
    elif serial_rankings is None and serial_engine is None:
        raise ConfigurationError(
            "serial_report without serial_rankings or serial_engine: the "
            "quiesced golden rankings cannot be recovered"
        )
    if serial_rankings is None:
        serial_rankings = quiesced_rankings(serial_engine, trace)

    concurrent_engine = (concurrent_build_engine or build_engine)()
    try:
        if frontend_config is not None:
            # Deferred for the same reason as rankings_match above:
            # repro.serve reuses repro.load's LatencyHistogram.
            from repro.serve.frontend import BatchingFrontend

            with BatchingFrontend(
                concurrent_engine, frontend_config, name="replay"
            ) as frontend:
                concurrent_report = WorkloadRunner(
                    concurrent_engine, trace
                ).run_concurrent(num_workers, frontend=frontend)
        else:
            concurrent_report = WorkloadRunner(
                concurrent_engine, trace
            ).run_concurrent(num_workers)

        violations: List[str] = []
        mismatched: List[int] = []
        for label, report in (
            ("serial", serial_report),
            ("concurrent", concurrent_report),
        ):
            if report.errors:
                violations.append(
                    f"{label} replay raised {len(report.errors)} error(s); "
                    f"first: {report.errors[0].splitlines()[-1]}"
                )
        if concurrent_report.final_epoch != serial_report.final_epoch:
            violations.append(
                f"final epoch diverged: serial {serial_report.final_epoch} "
                f"vs concurrent {concurrent_report.final_epoch}"
            )
        if concurrent_report.final_resources != serial_report.final_resources:
            violations.append(
                "final resource count diverged: serial "
                f"{serial_report.final_resources} vs concurrent "
                f"{concurrent_report.final_resources}"
            )
        regressions = concurrent_report.epoch_log.regressions()
        if regressions:
            reader, seen, then = regressions[0]
            violations.append(
                f"epoch ran backwards for {reader}: observed {seen} then "
                f"{then} ({len(regressions)} regression(s) total)"
            )

        want_epoch, want = serial_rankings
        got_epoch, got = quiesced_rankings(concurrent_engine, trace)
        if want_epoch != got_epoch:
            violations.append(
                f"quiesced epochs diverged: serial {want_epoch} vs "
                f"concurrent {got_epoch}"
            )
        truncated = trace.config.top_k is not None
        for probe, (got_results, want_results) in enumerate(zip(got, want)):
            if not rankings_match(
                got_results, want_results, tol=tol, truncated=truncated
            ):
                mismatched.append(probe)
        if mismatched:
            violations.append(
                f"{len(mismatched)} of {len(want)} evaluation probes "
                f"diverged beyond {tol:g} (first: probe {mismatched[0]}, "
                f"query {trace.eval_queries[mismatched[0]]!r})"
            )
        return ReplayParityReport(
            serial=serial_report,
            concurrent=concurrent_report,
            violations=violations,
            mismatched_probes=mismatched,
        )
    finally:
        closer = getattr(concurrent_engine, "close", None)
        if callable(closer):
            closer()
        if own_serial:
            closer = getattr(serial_engine, "close", None)
            if callable(closer):
                closer()
