"""Replay invariants: what must hold after any replay of one trace.

The contract the serving layer's read/write discipline buys, stated as
checkable properties over a serial golden replay and a concurrent stress
replay of the *same* trace on *equally built* engines:

1. **zero errors** — no operation of either replay may raise;
2. **state convergence** — final epoch and resource count agree (the
   mutation gate makes the concurrent final state well-defined);
3. **ranking parity** — after both engines quiesce, the trace's fixed
   evaluation probes rank identically to 1e-9 (tie groups may permute,
   exactly the tolerance of the sharded parity suites);
4. **epoch monotonicity** — no replay worker ever observed the index
   epoch run backwards through its epoch-consistent snapshot reads.

:func:`check_replay_parity` builds both engines from one factory, runs
both replays, verifies all four properties and returns a
:class:`ReplayParityReport` with the verdict and both workload reports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.load.runner import WorkloadReport, WorkloadRunner, quiesced_rankings
from repro.load.scenarios import (
    SCENARIO_CHAOS,
    SCENARIO_DIURNAL,
    SCENARIO_FLASH_CROWD,
    SCENARIO_MULTI_TENANT,
    SCENARIO_REBUILD_STORM,
    ChaosOutcome,
    ScenarioTrace,
)
from repro.load.workload import QUERY, WorkloadTrace
from repro.utils.errors import ConfigurationError

#: The ranking parity tolerance shared with the sharded parity suites.
PARITY_TOL = 1e-9


@dataclass
class ReplayParityReport:
    """Verdict of one serial-vs-concurrent replay comparison.

    In swap-during-replay mode ``generations_advanced`` counts the hot
    swaps that landed mid-replay and ``scratch_mismatched_probes`` lists
    probes where the post-swap engine diverged from a scratch rebuild of
    the final corpus under the post-swap concept model (the swap-mode
    parity oracle — the serial golden ranks under the *old* model and
    cannot be compared across a refit).
    """

    serial: WorkloadReport
    concurrent: WorkloadReport
    violations: List[str]
    mismatched_probes: List[int]
    generations_advanced: int = 0
    scratch_mismatched_probes: List[int] = field(default_factory=list)
    #: The front-end's ``stats()`` snapshot taken right after the
    #: concurrent replay drained (None when no front-end was involved) —
    #: the evidence scenario checkers read coalescing/cache/shed numbers
    #: from without keeping the front-end alive past the replay.
    frontend_stats: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """Multi-line verdict + both replay summaries (CI artefact body)."""
        lines = [
            "replay parity: " + ("OK" if self.ok else "VIOLATED"),
        ]
        if self.generations_advanced:
            lines.append(
                f"  hot swaps landed mid-replay: {self.generations_advanced}"
            )
        lines.extend(f"  violation: {violation}" for violation in self.violations)
        lines.append("-- serial golden --")
        lines.append(self.serial.summary())
        lines.append(f"-- concurrent x{self.concurrent.num_workers} --")
        lines.append(self.concurrent.summary())
        return "\n".join(lines)


def check_replay_parity(
    build_engine: Callable[[], object],
    trace: WorkloadTrace,
    num_workers: int = 4,
    tol: float = PARITY_TOL,
    serial_report: Optional[WorkloadReport] = None,
    serial_engine: Optional[object] = None,
    serial_rankings: Optional[Tuple[int, List[list]]] = None,
    frontend_config: Optional[object] = None,
    concurrent_build_engine: Optional[Callable[[], object]] = None,
    swap_during_replay: Optional[Callable[[], object]] = None,
    pace: bool = False,
    allowed_error_kinds: Sequence[str] = (),
) -> ReplayParityReport:
    """Replay ``trace`` serially and concurrently; verify the invariants.

    ``build_engine`` must return a *freshly built, identically configured*
    engine on every call — each replay mutates its own instance.  Engines
    exposing ``close`` (the sharded fan-out pool) are closed before
    returning.  Callers that already hold a serial golden run (e.g. a
    sweep comparing several worker counts against one golden) can pass
    ``serial_report`` plus either ``serial_rankings`` (the
    :func:`~repro.load.runner.quiesced_rankings` pair, so the probes are
    not re-ranked per call) or ``serial_engine`` to derive them; a
    caller-provided serial engine is *not* closed here.

    ``concurrent_build_engine`` swaps in a different factory for the
    *concurrent* side only — the pool-backed replay mode: the serial
    golden runs on the in-process engine while the stress replay drives
    e.g. a :class:`~repro.search.shardpool.ShardProcessPool` over the
    same saved index, re-proving the invariants across process
    boundaries.  The two factories must describe the same corpus at the
    same epoch; a read-only concurrent engine (the pool) additionally
    requires a query-only trace (``refresh_fraction`` may stay — the
    pool's ``refresh`` is a no-op — but mutations would raise).

    With ``frontend_config`` (a :class:`repro.serve.FrontendConfig`), the
    *concurrent* replay routes every query through a
    :class:`~repro.serve.frontend.BatchingFrontend` wrapped around the
    concurrent engine — worker submissions coalesce into micro-batched
    engine reads — while the serial golden stays direct, so the exact
    same invariants (zero errors, state convergence, post-quiesce probe
    parity, epoch monotonicity) are re-proven *through the batching
    path*.  The front-end is drained and closed before the quiesced
    probes are ranked.

    ``swap_during_replay`` turns on **swap mode**: the callable (e.g. a
    bound :meth:`~repro.search.lifecycle.RefitCoordinator.refit`) runs on
    a side thread *while* the concurrent replay hammers the engine —
    which must then be a folksonomy-tracking
    :class:`~repro.search.lifecycle.EngineHandle` (pass it via
    ``concurrent_build_engine``).  The invariants adapt to the hot swap:
    zero errors, resource convergence and per-reader epoch monotonicity
    hold unchanged; the final-epoch check becomes ``serial + generations
    advanced`` (each swap stamps its engine ``old epoch + 1``); and probe
    parity is judged against a **scratch rebuild** of the handle's final
    folksonomy under the *post-swap* concept model instead of the serial
    golden (the refit replaced the model, so the golden's rankings are
    incomparable — but fold-in through the new model must still equal a
    scratch build at ``tol``, the PR 2 invariant carried across the
    swap).  A swap callable that raises, or that completes without
    advancing the handle's generation, is itself a violation.

    ``pace`` makes the *concurrent* replay honour per-operation
    ``arrival_offset`` stamps (the diurnal scenario); the serial golden
    stays unpaced — pacing shapes arrivals, not answers.

    ``allowed_error_kinds`` names exception classes (by ``__name__``)
    that the **concurrent** replay may raise without violating the
    zero-error bar — scenarios that deliberately shed load pass
    ``("Overloaded",)`` so a typed rejection is not confused with a
    wrong answer.  The serial golden must still be error-free, every
    error must carry a recorded kind, and all the remaining invariants
    (state convergence, probe parity, epoch monotonicity) apply
    unchanged.
    """
    # Deferred: repro.eval.workload wraps this checker, so importing the
    # comparator at module scope would make repro.load and repro.eval
    # mutually dependent at import time.
    from repro.eval.sharding import rankings_match

    if num_workers < 1:
        raise ConfigurationError(
            f"num_workers must be >= 1, got {num_workers}"
        )
    own_serial = serial_report is None
    if own_serial:
        serial_engine = build_engine()
        serial_report = WorkloadRunner(serial_engine, trace).run_serial()
    elif serial_rankings is None and serial_engine is None:
        raise ConfigurationError(
            "serial_report without serial_rankings or serial_engine: the "
            "quiesced golden rankings cannot be recovered"
        )
    if serial_rankings is None:
        serial_rankings = quiesced_rankings(serial_engine, trace)

    concurrent_engine = (concurrent_build_engine or build_engine)()
    try:
        swap_outcome: dict = {}
        swap_thread: Optional[threading.Thread] = None
        generation_before = getattr(concurrent_engine, "generation", 0) or 0
        if swap_during_replay is not None:

            def _run_swap() -> None:
                try:
                    swap_outcome["value"] = swap_during_replay()
                except BaseException as error:  # noqa: BLE001 - reported
                    swap_outcome["error"] = error

            swap_thread = threading.Thread(
                target=_run_swap, name="swap-during-replay", daemon=True
            )
            swap_thread.start()

        frontend_stats: Optional[Dict[str, object]] = None
        if frontend_config is not None:
            # Deferred for the same reason as rankings_match above:
            # repro.serve reuses repro.load's LatencyHistogram.
            from repro.serve.frontend import BatchingFrontend

            with BatchingFrontend(
                concurrent_engine, frontend_config, name="replay"
            ) as frontend:
                concurrent_report = WorkloadRunner(
                    concurrent_engine, trace
                ).run_concurrent(num_workers, frontend=frontend, pace=pace)
                if swap_thread is not None:
                    # Joined with the front-end still open: the refit may
                    # need a last micro-batch window to drain, and its
                    # swap must land on a *serving* front-end to prove
                    # zero-pause.
                    swap_thread.join()
                frontend_stats = frontend.stats()
        else:
            concurrent_report = WorkloadRunner(
                concurrent_engine, trace
            ).run_concurrent(num_workers, pace=pace)
            if swap_thread is not None:
                swap_thread.join()

        violations: List[str] = []
        mismatched: List[int] = []
        scratch_mismatched: List[int] = []
        generations_advanced = 0
        if swap_during_replay is not None:
            if "error" in swap_outcome:
                violations.append(
                    f"swap-during-replay raised: {swap_outcome['error']!r}"
                )
            generations_advanced = (
                (getattr(concurrent_engine, "generation", 0) or 0)
                - generation_before
            )
            if generations_advanced < 1 and "error" not in swap_outcome:
                violations.append(
                    "swap-during-replay completed without advancing the "
                    "engine generation"
                )
        for label, report in (
            ("serial", serial_report),
            ("concurrent", concurrent_report),
        ):
            if not report.errors:
                continue
            # Only the concurrent side may claim an allowance, and only
            # for errors whose recorded kind is explicitly allowed — an
            # error without a kind entry is untyped and always counts.
            allowed = set(allowed_error_kinds) if label == "concurrent" else ()
            kinds = list(report.error_kinds)
            if len(kinds) < len(report.errors):
                kinds += ["<unrecorded>"] * (len(report.errors) - len(kinds))
            disallowed = [
                index
                for index, kind in enumerate(kinds)
                if kind not in allowed
            ]
            if disallowed:
                first = disallowed[0]
                violations.append(
                    f"{label} replay raised {len(disallowed)} disallowed "
                    f"error(s) of {len(report.errors)}; first "
                    f"({kinds[first]}): "
                    f"{report.errors[first].splitlines()[-1]}"
                )
        # Each hot swap stamps the incoming engine ``old epoch + 1``, so in
        # swap mode the concurrent side legitimately runs ahead of the
        # serial golden by exactly the number of swaps that landed.  The
        # report's final epoch was captured when the replay drained — a
        # swap may land *after* that (it is only joined later), so read
        # the live epoch post-join.
        concurrent_final_epoch = (
            concurrent_engine.epoch
            if swap_during_replay is not None
            else concurrent_report.final_epoch
        )
        expected_epoch = serial_report.final_epoch + generations_advanced
        if concurrent_final_epoch != expected_epoch:
            violations.append(
                f"final epoch diverged: serial {serial_report.final_epoch} "
                f"+ {generations_advanced} swap(s) expects {expected_epoch} "
                f"but concurrent finished at {concurrent_final_epoch}"
            )
        if concurrent_report.final_resources != serial_report.final_resources:
            violations.append(
                "final resource count diverged: serial "
                f"{serial_report.final_resources} vs concurrent "
                f"{concurrent_report.final_resources}"
            )
        regressions = concurrent_report.epoch_log.regressions()
        if regressions:
            reader, seen, then = regressions[0]
            violations.append(
                f"epoch ran backwards for {reader}: observed {seen} then "
                f"{then} ({len(regressions)} regression(s) total)"
            )

        truncated = trace.config.top_k is not None
        got_epoch, got = quiesced_rankings(concurrent_engine, trace)
        if swap_during_replay is None:
            want_epoch, want = serial_rankings
            if want_epoch != got_epoch:
                violations.append(
                    f"quiesced epochs diverged: serial {want_epoch} vs "
                    f"concurrent {got_epoch}"
                )
            for probe, (got_results, want_results) in enumerate(
                zip(got, want)
            ):
                if not rankings_match(
                    got_results, want_results, tol=tol, truncated=truncated
                ):
                    mismatched.append(probe)
            if mismatched:
                violations.append(
                    f"{len(mismatched)} of {len(want)} evaluation probes "
                    f"diverged beyond {tol:g} (first: probe {mismatched[0]}, "
                    f"query {trace.eval_queries[mismatched[0]]!r})"
                )
        else:
            # Swap mode: the serial golden ranks under the pre-refit
            # concept model and is incomparable.  The oracle instead is a
            # scratch rebuild of the final corpus under the *post-swap*
            # model (deep-copied through its JSON codec so the scratch
            # build cannot share — or allocate into — the live model):
            # journal-replayed fold-in must equal it at ``tol``.
            from repro.search.engine import (
                SearchEngine,
                concept_model_from_json,
                concept_model_to_json,
            )

            final_folksonomy = getattr(concurrent_engine, "folksonomy", None)
            final_model = getattr(concurrent_engine, "concept_model", None)
            if final_folksonomy is None or final_model is None:
                violations.append(
                    "swap mode needs a folksonomy-tracking EngineHandle on "
                    "the concurrent side; got "
                    f"{type(concurrent_engine).__name__} without one"
                )
            else:
                scratch = SearchEngine.build(
                    final_folksonomy,
                    concept_model_from_json(concept_model_to_json(final_model)),
                )
                scratch.refresh()
                _, want_scratch = scratch.snapshot_rank_batch(
                    [list(query) for query in trace.eval_queries],
                    top_k=trace.config.top_k,
                )
                for probe, (got_results, want_results) in enumerate(
                    zip(got, want_scratch)
                ):
                    if not rankings_match(
                        got_results, want_results, tol=tol, truncated=truncated
                    ):
                        scratch_mismatched.append(probe)
                if scratch_mismatched:
                    violations.append(
                        f"{len(scratch_mismatched)} of {len(want_scratch)} "
                        "probes diverged from the scratch rebuild beyond "
                        f"{tol:g} after the swap (first: probe "
                        f"{scratch_mismatched[0]}, query "
                        f"{trace.eval_queries[scratch_mismatched[0]]!r})"
                    )
        return ReplayParityReport(
            serial=serial_report,
            concurrent=concurrent_report,
            violations=violations,
            mismatched_probes=mismatched,
            generations_advanced=generations_advanced,
            scratch_mismatched_probes=scratch_mismatched,
            frontend_stats=frontend_stats,
        )
    finally:
        closer = getattr(concurrent_engine, "close", None)
        if callable(closer):
            closer()
        if own_serial:
            closer = getattr(serial_engine, "close", None)
            if callable(closer):
                closer()


# ---------------------------------------------------------------------- #
# Per-scenario invariants (beyond the parity bar)
# ---------------------------------------------------------------------- #
@dataclass
class ScenarioVerdict:
    """One scenario's verdict: its violations plus the measured evidence.

    ``details`` carries the numbers the checker judged (amortization
    ratio, shed rate, recovery seconds, per-tenant counts, …) so report
    rows and bench gates read the same figures the invariant did.
    """

    scenario: str
    violations: List[str]
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"scenario {self.scenario}: "
            + ("OK" if self.ok else "VIOLATED")
        ]
        lines.extend(f"  violation: {item}" for item in self.violations)
        for key in sorted(self.details):
            lines.append(f"  {key}: {self.details[key]}")
        return "\n".join(lines)


def _typed_error_violations(
    report: WorkloadReport, allowed: Sequence[str], violations: List[str]
) -> None:
    """Every error must be recorded with an allowed exception kind."""
    kinds = list(report.error_kinds)
    if len(kinds) != len(report.errors):
        violations.append(
            f"{len(report.errors)} error(s) but only {len(kinds)} recorded "
            "kind(s) — untyped failures slipped through"
        )
        return
    bad = sorted({kind for kind in kinds if kind not in set(allowed)})
    if bad:
        violations.append(
            f"untyped/disallowed error kinds {bad}; allowed: {list(allowed)}"
        )


def check_flash_crowd(
    parity: ReplayParityReport,
    min_amortization: float = 0.2,
    max_shed_rate: float = 0.5,
) -> ScenarioVerdict:
    """Flash crowd: dedup/cache amortization, bounded shed, right answers.

    The crowd's repeats must be *absorbed* — at least
    ``min_amortization`` of admitted queries resolved by in-flight
    coalescing or a cache hit rather than a fresh engine scoring — while
    any load shedding stays typed (``Overloaded`` only), under
    ``max_shed_rate``, and never corrupts an answer (the parity bar's
    probe check stands in for "zero wrong answers").
    """
    violations = list(parity.violations)
    details: Dict[str, object] = {}
    _typed_error_violations(
        parity.concurrent, ("Overloaded",), violations
    )
    stats = parity.frontend_stats
    if stats is None:
        violations.append(
            "flash_crowd needs the front-end replay path (pass "
            "frontend_config) to measure dedup amortization"
        )
    else:
        counters = stats.get("counters", {})
        submitted = int(counters.get("submitted", 0))
        coalesced = int(counters.get("coalesced", 0))
        shed = int(counters.get("shed", 0))
        cache = stats.get("cache") or {}
        hits = int(cache.get("hits", 0))
        amortization = (coalesced + hits) / max(submitted, 1)
        shed_rate = shed / max(submitted + shed, 1)
        details.update(
            submitted=submitted,
            coalesced=coalesced,
            cache_hits=hits,
            amortization=round(amortization, 4),
            shed=shed,
            shed_rate=round(shed_rate, 4),
        )
        if amortization < min_amortization:
            violations.append(
                f"crowd repeats were not amortized: {amortization:.1%} of "
                f"{submitted} admitted queries coalesced or hit the cache "
                f"(floor {min_amortization:.0%})"
            )
        if shed_rate > max_shed_rate:
            violations.append(
                f"shed rate {shed_rate:.1%} exceeds the "
                f"{max_shed_rate:.0%} bound"
            )
    return ScenarioVerdict(SCENARIO_FLASH_CROWD, violations, details)


def check_diurnal(
    parity: ReplayParityReport, scenario: ScenarioTrace
) -> ScenarioVerdict:
    """Diurnal: the paced replay actually honoured the arrival curve.

    The concurrent wall time must cover the last scheduled arrival —
    a replay that finished earlier dispatched operations before their
    offsets, i.e. pacing silently did not happen — on top of the
    unchanged parity bar.
    """
    violations = list(parity.violations)
    offsets = [
        op.arrival_offset
        for op in scenario.trace.operations
        if op.arrival_offset >= 0.0
    ]
    span = max(offsets) if offsets else 0.0
    details: Dict[str, object] = {
        "arrival_span_seconds": round(span, 4),
        "concurrent_wall_seconds": round(parity.concurrent.wall_seconds, 4),
    }
    if not offsets:
        violations.append("diurnal trace carries no arrival_offset stamps")
    elif parity.concurrent.wall_seconds < span:
        violations.append(
            f"paced replay finished in {parity.concurrent.wall_seconds:.3f}s "
            f"but the arrival curve spans {span:.3f}s — pacing was ignored"
        )
    return ScenarioVerdict(SCENARIO_DIURNAL, violations, details)


def check_multi_tenant(
    parity: ReplayParityReport, scenario: ScenarioTrace
) -> ScenarioVerdict:
    """Multi-tenant: per-tenant books exist and partition the aggregate.

    Every tenant that sent traffic must have a query sub-histogram in
    the concurrent report, the per-tenant counts must sum to exactly
    the tenant-attributed query count (no double-counting into the
    aggregate), and — when the replay went through the front-end — the
    admission snapshot must break pending/shed out per tenant.
    """
    violations = list(parity.violations)
    details: Dict[str, object] = {}
    queries = parity.concurrent.latencies.get(QUERY)
    children = queries.children() if queries is not None else {}
    expected = {
        op.tenant
        for op in scenario.trace.operations
        if op.kind == QUERY and op.tenant
    }
    tenant_query_ops = sum(
        1
        for op in scenario.trace.operations
        if op.kind == QUERY and op.tenant
    )
    missing = sorted(expected - set(children))
    if missing:
        violations.append(
            f"tenants {missing} sent queries but have no latency book"
        )
    labeled = sum(child.count for child in children.values())
    aggregate = queries.count if queries is not None else 0
    details.update(
        tenants=sorted(expected),
        labeled_samples=labeled,
        tenant_query_ops=tenant_query_ops,
        aggregate_samples=aggregate,
        per_tenant_counts={
            name: child.count for name, child in sorted(children.items())
        },
    )
    if labeled != tenant_query_ops:
        violations.append(
            f"per-tenant books hold {labeled} samples but the trace "
            f"attributed {tenant_query_ops} queries to tenants — the "
            "breakdown does not partition the traffic"
        )
    if labeled > aggregate:
        violations.append(
            f"per-tenant books hold {labeled} samples against an aggregate "
            f"of {aggregate} — children double-counted into the total"
        )
    stats = parity.frontend_stats
    if stats is not None:
        admission = stats.get("admission", {})
        tenant_stats = admission.get("tenants", {})
        absent = sorted(expected - set(tenant_stats))
        if absent:
            violations.append(
                f"admission stats carry no per-tenant entries for {absent}"
            )
        else:
            details["admission_tenants"] = tenant_stats
    return ScenarioVerdict(SCENARIO_MULTI_TENANT, violations, details)


def check_rebuild_storm(
    parity: ReplayParityReport,
    scenario: ScenarioTrace,
    min_mutation_fraction: float = 0.4,
) -> ScenarioVerdict:
    """Rebuild storm: genuinely write-heavy, still converging exactly.

    The parity bar already proves the hard part (state convergence and
    probe parity under racing writes — and, in swap mode, across a hot
    refit); this checker asserts the storm was real: the mutation share
    of the trace meets the floor and the epoch actually advanced once
    per mutation batch.
    """
    violations = list(parity.violations)
    total = len(scenario.trace.operations)
    mutations = scenario.trace.num_mutations
    fraction = mutations / max(total, 1)
    details: Dict[str, object] = {
        "mutation_batches": mutations,
        "mutation_fraction": round(fraction, 4),
        "final_epoch": parity.concurrent.final_epoch,
        "generations_advanced": parity.generations_advanced,
    }
    if fraction < min_mutation_fraction:
        violations.append(
            f"storm too gentle: {fraction:.1%} mutations "
            f"(floor {min_mutation_fraction:.0%})"
        )
    expected_epoch = (
        parity.serial.final_epoch + parity.generations_advanced
    )
    if mutations and expected_epoch < mutations:
        violations.append(
            f"epoch advanced to {expected_epoch} for {mutations} mutation "
            "batches — writes were lost or folded"
        )
    return ScenarioVerdict(SCENARIO_REBUILD_STORM, violations, details)


def check_chaos(
    outcome: ChaosOutcome,
    golden_rankings: Tuple[int, List[list]],
    tol: float = PARITY_TOL,
    max_recovery_seconds: float = 10.0,
    max_wall_seconds: float = 120.0,
) -> ScenarioVerdict:
    """Chaos: typed degradation only, bounded time, exact reconvergence.

    Every error the faulted replay surfaced must be a typed degraded
    response (``ShardPoolDegraded`` under strict reads, ``Overloaded``
    under admission pressure) — never an untyped failure, and never a
    hang: the whole run and the post-restore recovery are wall-bounded.
    After the plan's restores, the quiesced pool must rank the trace's
    evaluation probes identically (``tol``) to the golden engine — the
    revived pool serves exactly what an unfaulted one would.
    """
    from repro.eval.sharding import rankings_match  # deferred, as above

    violations: List[str] = []
    report = outcome.report
    _typed_error_violations(
        report, ("ShardPoolDegraded", "Overloaded"), violations
    )
    if outcome.recovery_seconds > max_recovery_seconds:
        violations.append(
            f"post-restore recovery took {outcome.recovery_seconds:.2f}s "
            f"(bound {max_recovery_seconds:g}s)"
        )
    if outcome.wall_seconds > max_wall_seconds:
        violations.append(
            f"chaos run took {outcome.wall_seconds:.1f}s "
            f"(bound {max_wall_seconds:g}s) — something hung"
        )
    regressions = report.epoch_log.regressions()
    if regressions:
        reader, seen, then = regressions[0]
        violations.append(
            f"epoch ran backwards for {reader}: observed {seen} then {then}"
        )
    truncated = outcome.scenario.trace.config.top_k is not None
    _, want = golden_rankings
    _, got = outcome.post_rankings
    mismatched = [
        probe
        for probe, (ours, theirs) in enumerate(zip(got, want))
        if not rankings_match(ours, theirs, tol=tol, truncated=truncated)
    ]
    if mismatched:
        violations.append(
            f"{len(mismatched)} of {len(want)} post-revival probes diverged "
            f"from the golden beyond {tol:g} (first: probe {mismatched[0]})"
        )
    workers = outcome.health.get("workers", [])
    unhealthy = [
        worker["shard_id"]
        for worker in workers
        if worker.get("state") != "ready"
    ]
    if unhealthy:
        violations.append(
            f"shard(s) {unhealthy} not ready after the self-restoring plan"
        )
    details: Dict[str, object] = {
        "errors": len(report.errors),
        "degraded_errors": sum(
            1 for kind in report.error_kinds if kind == "ShardPoolDegraded"
        ),
        "recovery_seconds": round(outcome.recovery_seconds, 4),
        "wall_seconds": round(outcome.wall_seconds, 3),
        "fault_log": list(outcome.fault_log),
        "mismatched_probes": mismatched,
    }
    return ScenarioVerdict(SCENARIO_CHAOS, violations, details)


def check_scenario(
    scenario: ScenarioTrace,
    parity: Optional[ReplayParityReport] = None,
    chaos: Optional[ChaosOutcome] = None,
    golden_rankings: Optional[Tuple[int, List[list]]] = None,
    tol: float = PARITY_TOL,
    **thresholds,
) -> ScenarioVerdict:
    """Dispatch one scenario's outcome to its invariant checker.

    Non-chaos scenarios pass the :class:`ReplayParityReport` from
    :func:`check_replay_parity`; chaos passes the
    :class:`~repro.load.scenarios.ChaosOutcome` from
    :func:`~repro.load.scenarios.run_chaos` plus the golden engine's
    quiesced probe rankings.  ``thresholds`` forward to the specific
    checker (amortization floors, shed/recovery bounds, …).
    """
    name = scenario.scenario
    if name == SCENARIO_CHAOS:
        if chaos is None or golden_rankings is None:
            raise ConfigurationError(
                "chaos verdicts need chaos= (a ChaosOutcome) and "
                "golden_rankings="
            )
        return check_chaos(chaos, golden_rankings, tol=tol, **thresholds)
    if parity is None:
        raise ConfigurationError(
            f"scenario {name!r} needs parity= (a ReplayParityReport)"
        )
    if name == SCENARIO_FLASH_CROWD:
        return check_flash_crowd(parity, **thresholds)
    if name == SCENARIO_DIURNAL:
        return check_diurnal(parity, scenario, **thresholds)
    if name == SCENARIO_MULTI_TENANT:
        return check_multi_tenant(parity, scenario, **thresholds)
    if name == SCENARIO_REBUILD_STORM:
        return check_rebuild_storm(parity, scenario, **thresholds)
    raise ConfigurationError(f"unknown scenario {name!r}")
