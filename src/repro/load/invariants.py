"""Replay invariants: what must hold after any replay of one trace.

The contract the serving layer's read/write discipline buys, stated as
checkable properties over a serial golden replay and a concurrent stress
replay of the *same* trace on *equally built* engines:

1. **zero errors** — no operation of either replay may raise;
2. **state convergence** — final epoch and resource count agree (the
   mutation gate makes the concurrent final state well-defined);
3. **ranking parity** — after both engines quiesce, the trace's fixed
   evaluation probes rank identically to 1e-9 (tie groups may permute,
   exactly the tolerance of the sharded parity suites);
4. **epoch monotonicity** — no replay worker ever observed the index
   epoch run backwards through its epoch-consistent snapshot reads.

:func:`check_replay_parity` builds both engines from one factory, runs
both replays, verifies all four properties and returns a
:class:`ReplayParityReport` with the verdict and both workload reports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.load.runner import WorkloadReport, WorkloadRunner, quiesced_rankings
from repro.load.workload import WorkloadTrace
from repro.utils.errors import ConfigurationError

#: The ranking parity tolerance shared with the sharded parity suites.
PARITY_TOL = 1e-9


@dataclass
class ReplayParityReport:
    """Verdict of one serial-vs-concurrent replay comparison.

    In swap-during-replay mode ``generations_advanced`` counts the hot
    swaps that landed mid-replay and ``scratch_mismatched_probes`` lists
    probes where the post-swap engine diverged from a scratch rebuild of
    the final corpus under the post-swap concept model (the swap-mode
    parity oracle — the serial golden ranks under the *old* model and
    cannot be compared across a refit).
    """

    serial: WorkloadReport
    concurrent: WorkloadReport
    violations: List[str]
    mismatched_probes: List[int]
    generations_advanced: int = 0
    scratch_mismatched_probes: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """Multi-line verdict + both replay summaries (CI artefact body)."""
        lines = [
            "replay parity: " + ("OK" if self.ok else "VIOLATED"),
        ]
        if self.generations_advanced:
            lines.append(
                f"  hot swaps landed mid-replay: {self.generations_advanced}"
            )
        lines.extend(f"  violation: {violation}" for violation in self.violations)
        lines.append("-- serial golden --")
        lines.append(self.serial.summary())
        lines.append(f"-- concurrent x{self.concurrent.num_workers} --")
        lines.append(self.concurrent.summary())
        return "\n".join(lines)


def check_replay_parity(
    build_engine: Callable[[], object],
    trace: WorkloadTrace,
    num_workers: int = 4,
    tol: float = PARITY_TOL,
    serial_report: Optional[WorkloadReport] = None,
    serial_engine: Optional[object] = None,
    serial_rankings: Optional[Tuple[int, List[list]]] = None,
    frontend_config: Optional[object] = None,
    concurrent_build_engine: Optional[Callable[[], object]] = None,
    swap_during_replay: Optional[Callable[[], object]] = None,
) -> ReplayParityReport:
    """Replay ``trace`` serially and concurrently; verify the invariants.

    ``build_engine`` must return a *freshly built, identically configured*
    engine on every call — each replay mutates its own instance.  Engines
    exposing ``close`` (the sharded fan-out pool) are closed before
    returning.  Callers that already hold a serial golden run (e.g. a
    sweep comparing several worker counts against one golden) can pass
    ``serial_report`` plus either ``serial_rankings`` (the
    :func:`~repro.load.runner.quiesced_rankings` pair, so the probes are
    not re-ranked per call) or ``serial_engine`` to derive them; a
    caller-provided serial engine is *not* closed here.

    ``concurrent_build_engine`` swaps in a different factory for the
    *concurrent* side only — the pool-backed replay mode: the serial
    golden runs on the in-process engine while the stress replay drives
    e.g. a :class:`~repro.search.shardpool.ShardProcessPool` over the
    same saved index, re-proving the invariants across process
    boundaries.  The two factories must describe the same corpus at the
    same epoch; a read-only concurrent engine (the pool) additionally
    requires a query-only trace (``refresh_fraction`` may stay — the
    pool's ``refresh`` is a no-op — but mutations would raise).

    With ``frontend_config`` (a :class:`repro.serve.FrontendConfig`), the
    *concurrent* replay routes every query through a
    :class:`~repro.serve.frontend.BatchingFrontend` wrapped around the
    concurrent engine — worker submissions coalesce into micro-batched
    engine reads — while the serial golden stays direct, so the exact
    same invariants (zero errors, state convergence, post-quiesce probe
    parity, epoch monotonicity) are re-proven *through the batching
    path*.  The front-end is drained and closed before the quiesced
    probes are ranked.

    ``swap_during_replay`` turns on **swap mode**: the callable (e.g. a
    bound :meth:`~repro.search.lifecycle.RefitCoordinator.refit`) runs on
    a side thread *while* the concurrent replay hammers the engine —
    which must then be a folksonomy-tracking
    :class:`~repro.search.lifecycle.EngineHandle` (pass it via
    ``concurrent_build_engine``).  The invariants adapt to the hot swap:
    zero errors, resource convergence and per-reader epoch monotonicity
    hold unchanged; the final-epoch check becomes ``serial + generations
    advanced`` (each swap stamps its engine ``old epoch + 1``); and probe
    parity is judged against a **scratch rebuild** of the handle's final
    folksonomy under the *post-swap* concept model instead of the serial
    golden (the refit replaced the model, so the golden's rankings are
    incomparable — but fold-in through the new model must still equal a
    scratch build at ``tol``, the PR 2 invariant carried across the
    swap).  A swap callable that raises, or that completes without
    advancing the handle's generation, is itself a violation.
    """
    # Deferred: repro.eval.workload wraps this checker, so importing the
    # comparator at module scope would make repro.load and repro.eval
    # mutually dependent at import time.
    from repro.eval.sharding import rankings_match

    if num_workers < 1:
        raise ConfigurationError(
            f"num_workers must be >= 1, got {num_workers}"
        )
    own_serial = serial_report is None
    if own_serial:
        serial_engine = build_engine()
        serial_report = WorkloadRunner(serial_engine, trace).run_serial()
    elif serial_rankings is None and serial_engine is None:
        raise ConfigurationError(
            "serial_report without serial_rankings or serial_engine: the "
            "quiesced golden rankings cannot be recovered"
        )
    if serial_rankings is None:
        serial_rankings = quiesced_rankings(serial_engine, trace)

    concurrent_engine = (concurrent_build_engine or build_engine)()
    try:
        swap_outcome: dict = {}
        swap_thread: Optional[threading.Thread] = None
        generation_before = getattr(concurrent_engine, "generation", 0) or 0
        if swap_during_replay is not None:

            def _run_swap() -> None:
                try:
                    swap_outcome["value"] = swap_during_replay()
                except BaseException as error:  # noqa: BLE001 - reported
                    swap_outcome["error"] = error

            swap_thread = threading.Thread(
                target=_run_swap, name="swap-during-replay", daemon=True
            )
            swap_thread.start()

        if frontend_config is not None:
            # Deferred for the same reason as rankings_match above:
            # repro.serve reuses repro.load's LatencyHistogram.
            from repro.serve.frontend import BatchingFrontend

            with BatchingFrontend(
                concurrent_engine, frontend_config, name="replay"
            ) as frontend:
                concurrent_report = WorkloadRunner(
                    concurrent_engine, trace
                ).run_concurrent(num_workers, frontend=frontend)
                if swap_thread is not None:
                    # Joined with the front-end still open: the refit may
                    # need a last micro-batch window to drain, and its
                    # swap must land on a *serving* front-end to prove
                    # zero-pause.
                    swap_thread.join()
        else:
            concurrent_report = WorkloadRunner(
                concurrent_engine, trace
            ).run_concurrent(num_workers)
            if swap_thread is not None:
                swap_thread.join()

        violations: List[str] = []
        mismatched: List[int] = []
        scratch_mismatched: List[int] = []
        generations_advanced = 0
        if swap_during_replay is not None:
            if "error" in swap_outcome:
                violations.append(
                    f"swap-during-replay raised: {swap_outcome['error']!r}"
                )
            generations_advanced = (
                (getattr(concurrent_engine, "generation", 0) or 0)
                - generation_before
            )
            if generations_advanced < 1 and "error" not in swap_outcome:
                violations.append(
                    "swap-during-replay completed without advancing the "
                    "engine generation"
                )
        for label, report in (
            ("serial", serial_report),
            ("concurrent", concurrent_report),
        ):
            if report.errors:
                violations.append(
                    f"{label} replay raised {len(report.errors)} error(s); "
                    f"first: {report.errors[0].splitlines()[-1]}"
                )
        # Each hot swap stamps the incoming engine ``old epoch + 1``, so in
        # swap mode the concurrent side legitimately runs ahead of the
        # serial golden by exactly the number of swaps that landed.  The
        # report's final epoch was captured when the replay drained — a
        # swap may land *after* that (it is only joined later), so read
        # the live epoch post-join.
        concurrent_final_epoch = (
            concurrent_engine.epoch
            if swap_during_replay is not None
            else concurrent_report.final_epoch
        )
        expected_epoch = serial_report.final_epoch + generations_advanced
        if concurrent_final_epoch != expected_epoch:
            violations.append(
                f"final epoch diverged: serial {serial_report.final_epoch} "
                f"+ {generations_advanced} swap(s) expects {expected_epoch} "
                f"but concurrent finished at {concurrent_final_epoch}"
            )
        if concurrent_report.final_resources != serial_report.final_resources:
            violations.append(
                "final resource count diverged: serial "
                f"{serial_report.final_resources} vs concurrent "
                f"{concurrent_report.final_resources}"
            )
        regressions = concurrent_report.epoch_log.regressions()
        if regressions:
            reader, seen, then = regressions[0]
            violations.append(
                f"epoch ran backwards for {reader}: observed {seen} then "
                f"{then} ({len(regressions)} regression(s) total)"
            )

        truncated = trace.config.top_k is not None
        got_epoch, got = quiesced_rankings(concurrent_engine, trace)
        if swap_during_replay is None:
            want_epoch, want = serial_rankings
            if want_epoch != got_epoch:
                violations.append(
                    f"quiesced epochs diverged: serial {want_epoch} vs "
                    f"concurrent {got_epoch}"
                )
            for probe, (got_results, want_results) in enumerate(
                zip(got, want)
            ):
                if not rankings_match(
                    got_results, want_results, tol=tol, truncated=truncated
                ):
                    mismatched.append(probe)
            if mismatched:
                violations.append(
                    f"{len(mismatched)} of {len(want)} evaluation probes "
                    f"diverged beyond {tol:g} (first: probe {mismatched[0]}, "
                    f"query {trace.eval_queries[mismatched[0]]!r})"
                )
        else:
            # Swap mode: the serial golden ranks under the pre-refit
            # concept model and is incomparable.  The oracle instead is a
            # scratch rebuild of the final corpus under the *post-swap*
            # model (deep-copied through its JSON codec so the scratch
            # build cannot share — or allocate into — the live model):
            # journal-replayed fold-in must equal it at ``tol``.
            from repro.search.engine import (
                SearchEngine,
                concept_model_from_json,
                concept_model_to_json,
            )

            final_folksonomy = getattr(concurrent_engine, "folksonomy", None)
            final_model = getattr(concurrent_engine, "concept_model", None)
            if final_folksonomy is None or final_model is None:
                violations.append(
                    "swap mode needs a folksonomy-tracking EngineHandle on "
                    "the concurrent side; got "
                    f"{type(concurrent_engine).__name__} without one"
                )
            else:
                scratch = SearchEngine.build(
                    final_folksonomy,
                    concept_model_from_json(concept_model_to_json(final_model)),
                )
                scratch.refresh()
                _, want_scratch = scratch.snapshot_rank_batch(
                    [list(query) for query in trace.eval_queries],
                    top_k=trace.config.top_k,
                )
                for probe, (got_results, want_results) in enumerate(
                    zip(got, want_scratch)
                ):
                    if not rankings_match(
                        got_results, want_results, tol=tol, truncated=truncated
                    ):
                        scratch_mismatched.append(probe)
                if scratch_mismatched:
                    violations.append(
                        f"{len(scratch_mismatched)} of {len(want_scratch)} "
                        "probes diverged from the scratch rebuild beyond "
                        f"{tol:g} after the swap (first: probe "
                        f"{scratch_mismatched[0]}, query "
                        f"{trace.eval_queries[scratch_mismatched[0]]!r})"
                    )
        return ReplayParityReport(
            serial=serial_report,
            concurrent=concurrent_report,
            violations=violations,
            mismatched_probes=mismatched,
            generations_advanced=generations_advanced,
            scratch_mismatched_probes=scratch_mismatched,
        )
    finally:
        closer = getattr(concurrent_engine, "close", None)
        if callable(closer):
            closer()
        if own_serial:
            closer = getattr(serial_engine, "close", None)
            if callable(closer):
                closer()
