"""Parameter and array validation helpers.

These functions centralise the defensive checks performed at public API
boundaries so the error messages stay consistent across the library.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.errors import ConfigurationError, DimensionError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_ratio(value: float, name: str, minimum: float = 1.0) -> float:
    """Validate a reduction ratio (must be >= ``minimum``)."""
    value = float(value)
    if value < minimum:
        raise ConfigurationError(
            f"{name} must be >= {minimum}, got {value}"
        )
    return value


def check_shape_2d(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` is two-dimensional and return it as ndarray."""
    array = np.asarray(array)
    if array.ndim != 2:
        raise DimensionError(
            f"{name} must be a 2-D array, got shape {array.shape}"
        )
    return array


def check_square(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` is a square 2-D matrix."""
    array = check_shape_2d(array, name)
    if array.shape[0] != array.shape[1]:
        raise DimensionError(
            f"{name} must be square, got shape {array.shape}"
        )
    return array


def check_same_length(a, b, name_a: str, name_b: str) -> Tuple:
    """Validate that two sequences have the same length."""
    if len(a) != len(b):
        raise DimensionError(
            f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have "
            "the same length"
        )
    return a, b


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` contains no NaN or infinity."""
    array = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(array)):
        raise DimensionError(f"{name} contains NaN or infinite values")
    return array
