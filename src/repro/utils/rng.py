"""Seedable random-number helpers.

All stochastic components in the library (the dataset generator, ALS
initialisation, k-means seeding, query sampling) accept either an integer
seed or an existing :class:`numpy.random.Generator`.  Funnelling the
conversion through :func:`make_rng` keeps experiment scripts reproducible and
avoids accidental reliance on global numpy state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for non-deterministic entropy, an ``int`` for a fixed seed,
        or an existing ``Generator``/``SeedSequence`` which is passed through
        (the same object is returned for a ``Generator``).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Useful when an experiment needs separate streams (e.g. one per dataset)
    that must not interfere with each other yet remain reproducible from one
    top-level seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def permutation(rng: np.random.Generator, items: Sequence) -> list:
    """Return ``items`` in a random order as a new list."""
    order = rng.permutation(len(items))
    return [items[i] for i in order]


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence,
    weights: Optional[Sequence[float]] = None,
):
    """Pick one element of ``items``; ``weights`` need not be normalised."""
    if not len(items):
        raise ValueError("cannot choose from an empty sequence")
    if weights is None:
        index = int(rng.integers(len(items)))
        return items[index]
    probs = np.asarray(weights, dtype=float)
    if probs.shape[0] != len(items):
        raise ValueError("weights must have the same length as items")
    total = probs.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    index = int(rng.choice(len(items), p=probs / total))
    return items[index]
