"""Shared utilities: configuration, randomness, timing, logging and validation.

The rest of the library is deliberately built on this thin layer so that all
stochastic behaviour flows through a single seedable entry point
(:func:`repro.utils.rng.make_rng`) and all experiment timing uses the same
:class:`repro.utils.timing.Stopwatch`.
"""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    DataFormatError,
    DimensionError,
    NotFittedError,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch, Timer, format_duration
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_ratio,
    check_shape_2d,
    check_square,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataFormatError",
    "DimensionError",
    "NotFittedError",
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
    "Timer",
    "format_duration",
    "check_positive_int",
    "check_probability",
    "check_ratio",
    "check_shape_2d",
    "check_square",
]
