"""Exception hierarchy used across the library.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class DataFormatError(ReproError):
    """Raised when an input file or record stream is malformed."""


class DimensionError(ReproError):
    """Raised when tensor/matrix shapes are inconsistent with an operation."""


class NotFittedError(ReproError):
    """Raised when a model is queried before :meth:`fit` has been called."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""
