"""Wall-clock timing helpers used by the efficiency experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


def format_duration(seconds: float) -> str:
    """Render a duration in a human-friendly unit (us, ms, s, min, h)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    if seconds < 3600.0:
        return f"{seconds / 60.0:.2f}min"
    return f"{seconds / 3600.0:.2f}h"


@dataclass
class Timer:
    """A single start/stop timer.

    ``Timer`` can be used either manually (``start()`` / ``stop()``) or as a
    context manager; ``elapsed`` holds the most recent measurement.
    """

    elapsed: float = 0.0
    _started_at: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class Stopwatch:
    """Accumulates named timing sections across an experiment.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.section("decomposition"):
    ...     pass
    >>> "decomposition" in watch.totals()
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        if seconds < 0:
            raise ValueError("cannot add a negative duration")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        """Total seconds accumulated per section."""
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        """Number of times each section was entered."""
        return dict(self._counts)

    def mean(self, name: str) -> float:
        """Average duration of one entry into ``name``."""
        if name not in self._totals:
            raise KeyError(f"no timing section named {name!r}")
        return self._totals[name] / self._counts[name]

    def report(self) -> str:
        """Multi-line human-readable summary, longest sections first."""
        lines = []
        for name, total in sorted(self._totals.items(), key=lambda kv: -kv[1]):
            count = self._counts[name]
            lines.append(
                f"{name:<40s} {format_duration(total):>10s}  (n={count}, "
                f"mean={format_duration(total / count)})"
            )
        return "\n".join(lines)
