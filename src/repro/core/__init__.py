"""The paper's primary contribution: CubeLSI.

* :mod:`repro.core.distances` — purified pairwise tag distances, both via the
  Theorem 1 / Theorem 2 shortcut (never materialising the reconstructed
  tensor) and via the naive materialised definition used to validate it.
* :mod:`repro.core.cubelsi` — Algorithm 1: Tucker-ALS on the tag-assignment
  tensor followed by shortcut distance computation.
* :mod:`repro.core.kmeans` / :mod:`repro.core.spectral` — clustering
  substrate (k-means and Ng-Jordan-Weiss spectral clustering) implemented
  from scratch.
* :mod:`repro.core.concepts` — concept distillation: clustering tags into
  concepts and mapping tag bags to concept bags.
* :mod:`repro.core.pipeline` — the full offline component of Figure 1,
  producing a searchable concept-space index (with delta fold-in for
  incremental serving).
* :mod:`repro.core.snapshots` — epoch-stamped on-disk checkpoints of
  serving indexes.
"""

from repro.core.distances import (
    sigma_from_core,
    sigma_from_singular_values,
    pairwise_distances_shortcut,
    pairwise_distances_materialized,
    tag_distance_matrix,
)
from repro.core.cubelsi import CubeLSI, CubeLSIResult
from repro.core.kmeans import KMeans, KMeansResult
from repro.core.spectral import SpectralClustering, SpectralClusteringResult
from repro.core.concepts import (
    Concept,
    ConceptModel,
    distill_concepts,
)
from repro.core.pipeline import CubeLSIPipeline, OfflineIndex
from repro.core.snapshots import IndexSnapshotStore

__all__ = [
    "sigma_from_core",
    "sigma_from_singular_values",
    "pairwise_distances_shortcut",
    "pairwise_distances_materialized",
    "tag_distance_matrix",
    "CubeLSI",
    "CubeLSIResult",
    "KMeans",
    "KMeansResult",
    "SpectralClustering",
    "SpectralClusteringResult",
    "Concept",
    "ConceptModel",
    "distill_concepts",
    "CubeLSIPipeline",
    "OfflineIndex",
    "IndexSnapshotStore",
]
