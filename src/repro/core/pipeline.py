"""The end-to-end offline CubeLSI pipeline (Figure 1, left column).

``CubeLSIPipeline.fit`` takes a (cleaned) folksonomy and produces an
:class:`OfflineIndex` containing everything the online component needs:

1. the third-order tensor is built from the tag assignments,
2. Tucker-ALS + Theorems 1/2 yield purified pairwise tag distances,
3. spectral clustering distils tags into concepts,
4. every resource's bag of tags is mapped to a bag of concepts and indexed
   with tf-idf weights.

The resulting :class:`~repro.search.engine.SearchEngine` answers queries with
plain cosine similarity — the cheap online step of Table VI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

from repro.core.concepts import ConceptModel, distill_concepts
from repro.core.cubelsi import CubeLSI, CubeLSIResult
from repro.tagging.folksonomy import Folksonomy
from repro.tagging.io import read_assignments_tsv, write_assignments_tsv
from repro.utils.errors import ConfigurationError, DataFormatError, NotFittedError
from repro.utils.rng import SeedLike
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # runtime import would close the core -> search -> core cycle
    from repro.search.engine import SearchEngine
    from repro.search.incremental import StalenessReport
    from repro.search.sharding import ShardedSearchEngine
    from repro.tagging.delta import FolksonomyDelta


#: JSON file holding OfflineIndex-level metadata in a save directory.
INDEX_METADATA_FILENAME = "offline_index.json"

#: Assignment log written next to the engine when the folksonomy is saved
#: along with the index (required for hot-applying deltas in a serving
#: process).
INDEX_ASSIGNMENTS_FILENAME = "assignments.tsv"


@dataclass
class OfflineIndex:
    """Everything produced by the offline component of Figure 1.

    Indexes restored with :meth:`load` carry only what online serving
    needs — the concept model and the compiled search engine; the training
    folksonomy and the raw decomposition result are ``None``.  The engine
    may be a monolithic :class:`~repro.search.engine.SearchEngine` or a
    :class:`~repro.search.sharding.ShardedSearchEngine`; both answer the
    same query/mutation/persistence API.
    """

    concept_model: ConceptModel
    engine: Union["SearchEngine", "ShardedSearchEngine"]
    timings: Dict[str, float]
    folksonomy: Optional[Folksonomy] = None
    cubelsi_result: Optional[CubeLSIResult] = None

    @property
    def num_concepts(self) -> int:
        return self.concept_model.num_concepts

    def preprocessing_seconds(self) -> float:
        """Total offline time (decomposition + distances + clustering + indexing)."""
        return float(sum(self.timings.values()))

    # ------------------------------------------------------------------ #
    # Incremental updates (fold-in; the offline analysis stays frozen)
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta: "FolksonomyDelta") -> "StalenessReport":
        """Fold a folksonomy delta into the serving index without a refit.

        The folksonomy is updated incrementally, each touched resource's new
        bag of tags is mapped through the *frozen* concept model, and the
        engine's backends fold the rows in (lazy idf/norm recompute).  The
        expensive Tucker/clustering stages are untouched; the returned
        staleness report says when the engine's refresh policy thinks a full
        refit is due.

        Requires the training folksonomy: either a freshly fitted index or
        one saved with ``include_folksonomy=True`` and reloaded.
        """
        if self.folksonomy is None:
            raise ConfigurationError(
                "this index carries no folksonomy (it was loaded from a save "
                "without one); save with include_folksonomy=True to enable "
                "hot-applying deltas"
            )
        before = self.folksonomy
        after = before.apply_delta(delta)

        added: Dict[str, Dict[str, float]] = {}
        updated: Dict[str, Dict[str, float]] = {}
        removed = []
        for resource in delta.touched_resources:
            had = before.has_resource(resource)
            has = after.has_resource(resource)
            if has and not had:
                added[resource] = dict(after.tag_bag(resource))
            elif had and not has:
                removed.append(resource)
            elif had and has:
                old_bag = before.tag_bag(resource)
                new_bag = after.tag_bag(resource)
                if old_bag != new_bag:
                    updated[resource] = dict(new_bag)

        report = self.engine.apply_mutations(
            added=added, updated=updated, removed=removed
        )
        self.folksonomy = after
        return report

    # ------------------------------------------------------------------ #
    # Persistence (offline indexing and online serving as two processes)
    # ------------------------------------------------------------------ #
    def save(
        self,
        directory: Union[str, Path],
        include_folksonomy: bool = False,
        num_shards: Optional[int] = None,
        mmap_ready: bool = False,
    ) -> Path:
        """Write the serving artefacts (engine + metadata) to ``directory``.

        With ``include_folksonomy=True`` the assignment log is saved next to
        the engine so that a serving process restoring the snapshot can keep
        hot-applying deltas (at the cost of a larger artefact).

        A sharded engine is written in the sharded layout (per-shard
        ``.npz`` dirs + ``shard_manifest.json``); ``num_shards`` partitions
        a monolithic engine on the fly into that layout, so the offline
        indexer can emit artefacts an N-process deployment loads one shard
        each from (:meth:`load` restores either layout transparently).
        ``mmap_ready=True`` writes the compiled arrays as raw ``.npy``
        files instead of a compressed ``.npz``, the layout
        :class:`~repro.search.shardpool.ShardProcessPool` workers
        memory-map so one host's worker fleet shares a single page-cache
        copy of the index.

        ``num_concepts`` records the *static* (distilled) concept count, the
        figure that is stable across the index's lifetime — dynamic
        (``own-concept``) concepts appear and disappear with mutations, so
        recording them here made a reloaded index disagree with its own
        metadata.
        """
        from repro.search.sharding import ShardedSearchEngine

        if include_folksonomy and self.folksonomy is None:
            raise ConfigurationError(
                "include_folksonomy=True but this index carries no folksonomy"
            )
        engine = self.engine
        if isinstance(engine, ShardedSearchEngine):
            if num_shards is not None and num_shards != engine.num_shards:
                raise ConfigurationError(
                    f"this index's engine already has {engine.num_shards} "
                    f"shards; cannot re-save it with num_shards={num_shards}"
                )
        elif num_shards is not None:
            engine = ShardedSearchEngine.from_engine(
                engine, num_shards=num_shards
            )
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        engine.save(path, mmap_ready=mmap_ready)
        self._drop_other_layout(
            path, sharded=isinstance(engine, ShardedSearchEngine)
        )
        metadata = {
            "timings": {name: float(value) for name, value in self.timings.items()},
            "dataset_name": self.folksonomy.name if self.folksonomy else None,
            "num_concepts": self.concept_model.num_persisted_concepts,
            "epoch": self.engine.epoch,
            "includes_folksonomy": bool(include_folksonomy and self.folksonomy),
            "sharded": isinstance(engine, ShardedSearchEngine),
            "num_shards": (
                engine.num_shards
                if isinstance(engine, ShardedSearchEngine)
                else None
            ),
        }
        assignments_path = path / INDEX_ASSIGNMENTS_FILENAME
        if include_folksonomy:
            write_assignments_tsv(self.folksonomy.assignments, assignments_path)
        elif assignments_path.exists():
            # Overwriting a directory that previously included the
            # folksonomy: a stale assignment log would pair the new engine
            # with an outdated corpus on load.
            assignments_path.unlink()
        (path / INDEX_METADATA_FILENAME).write_text(
            json.dumps(metadata), encoding="utf-8"
        )
        return path

    @staticmethod
    def _drop_other_layout(path: Path, sharded: bool) -> None:
        """Remove the other layout's artefacts when overwriting a save dir.

        A sharded save over a previous monolithic one (or vice versa) must
        not leave the outgoing layout's files behind — :meth:`load` keys on
        the shard manifest, so a stale manifest (or stale engine arrays)
        would pair the metadata with an outdated engine.
        """
        import shutil

        from repro.search.engine import ENGINE_FILENAME
        from repro.search.matrix_space import (
            ARRAYS_FILENAME,
            METADATA_FILENAME,
        )
        from repro.search.sharding import SHARD_MANIFEST_FILENAME

        if sharded:
            for name in (ENGINE_FILENAME, ARRAYS_FILENAME, METADATA_FILENAME):
                stale = path / name
                if stale.exists():
                    stale.unlink()
        else:
            manifest = path / SHARD_MANIFEST_FILENAME
            if manifest.exists():
                manifest.unlink()
            for stale_dir in path.glob("shard-[0-9]*"):
                if stale_dir.is_dir():
                    shutil.rmtree(stale_dir)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "OfflineIndex":
        """Restore a serving-ready index from :meth:`save` output.

        Detects the layout on disk: a ``shard_manifest.json`` restores a
        :class:`~repro.search.sharding.ShardedSearchEngine`, otherwise the
        monolithic engine is loaded.  Validates that the engine's persisted
        concept model matches the metadata's recorded ``num_concepts``
        (guards against artefact drift between the two files).
        """
        path = Path(directory)
        metadata_path = path / INDEX_METADATA_FILENAME
        if not metadata_path.exists():
            raise NotFittedError(f"no saved offline index under {path}")
        from repro.search.engine import SearchEngine
        from repro.search.sharding import (
            SHARD_MANIFEST_FILENAME,
            ShardedSearchEngine,
        )

        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
        if (path / SHARD_MANIFEST_FILENAME).exists():
            engine: Union[
                "SearchEngine", "ShardedSearchEngine"
            ] = ShardedSearchEngine.load(path)
        else:
            engine = SearchEngine.load(path)
        recorded = metadata.get("num_concepts")
        persisted = engine.concept_model.num_persisted_concepts
        if recorded is not None and int(recorded) != persisted:
            raise DataFormatError(
                f"saved index metadata records {recorded} concepts but the "
                f"persisted engine carries {persisted} static concepts; "
                "the artefacts are inconsistent"
            )
        folksonomy = None
        assignments_path = path / INDEX_ASSIGNMENTS_FILENAME
        if metadata.get("includes_folksonomy") and assignments_path.exists():
            folksonomy = Folksonomy(
                read_assignments_tsv(assignments_path),
                name=str(metadata.get("dataset_name") or "offline-index"),
            )
        return cls(
            concept_model=engine.concept_model,
            engine=engine,
            timings={
                name: float(value) for name, value in metadata["timings"].items()
            },
            folksonomy=folksonomy,
        )


class CubeLSIPipeline:
    """Configure once, then ``fit`` on any folksonomy.

    Parameters
    ----------
    reduction_ratios / ranks:
        Passed to :class:`~repro.core.cubelsi.CubeLSI` (the paper's default
        is a reduction ratio of 50 on every mode).
    num_concepts:
        Number of concepts for spectral clustering; ``None`` uses the
        eigenvalue coverage rule.
    sigma:
        Affinity bandwidth for spectral clustering.
    max_iter / tol:
        ALS stopping parameters.
    seed:
        Single seed driving ALS initialisation and k-means restarts.
    smooth_idf:
        Passed to the vector space (the paper uses plain idf).
    """

    def __init__(
        self,
        reduction_ratios: Optional[Union[float, Sequence[float]]] = None,
        ranks: Optional[Sequence[int]] = None,
        num_concepts: Optional[int] = None,
        sigma: float = 1.0,
        max_iter: int = 25,
        tol: float = 1e-6,
        seed: SeedLike = 0,
        smooth_idf: bool = False,
        min_rank: int = 8,
    ) -> None:
        self._cubelsi = CubeLSI(
            ranks=ranks,
            reduction_ratios=reduction_ratios,
            max_iter=max_iter,
            tol=tol,
            seed=seed,
            min_rank=min_rank,
        )
        if num_concepts is not None and num_concepts < 1:
            raise ConfigurationError("num_concepts must be >= 1 when given")
        self._num_concepts = num_concepts
        self._sigma = sigma
        self._seed = seed
        self._smooth_idf = smooth_idf
        self._last_index: Optional[OfflineIndex] = None

    def fit(self, folksonomy: Folksonomy) -> OfflineIndex:
        """Run the full offline pipeline on ``folksonomy``."""
        if folksonomy.num_assignments == 0:
            raise ConfigurationError("cannot index an empty folksonomy")
        watch = Stopwatch()

        with watch.section("cubelsi"):
            cubelsi_result = self._cubelsi.fit(folksonomy)

        with watch.section("concept_distillation"):
            concept_model = distill_concepts(
                cubelsi_result.distances,
                tags=folksonomy.tags,
                num_concepts=self._effective_num_concepts(folksonomy),
                sigma=self._sigma,
                seed=self._seed,
            )

        from repro.search.engine import SearchEngine

        with watch.section("indexing"):
            engine = SearchEngine.build(
                folksonomy,
                concept_model,
                smooth_idf=self._smooth_idf,
                name="cubelsi",
            )

        index = OfflineIndex(
            folksonomy=folksonomy,
            cubelsi_result=cubelsi_result,
            concept_model=concept_model,
            engine=engine,
            timings=watch.totals(),
        )
        self._last_index = index
        return index

    @property
    def last_index(self) -> OfflineIndex:
        if self._last_index is None:
            raise NotFittedError("CubeLSIPipeline has not been fitted yet")
        return self._last_index

    def _effective_num_concepts(self, folksonomy: Folksonomy) -> Optional[int]:
        """Clamp a stipulated concept count to the number of available tags."""
        if self._num_concepts is None:
            return None
        return min(self._num_concepts, folksonomy.num_tags)
