"""The end-to-end offline CubeLSI pipeline (Figure 1, left column).

``CubeLSIPipeline.fit`` takes a (cleaned) folksonomy and produces an
:class:`OfflineIndex` containing everything the online component needs:

1. the third-order tensor is built from the tag assignments,
2. Tucker-ALS + Theorems 1/2 yield purified pairwise tag distances,
3. spectral clustering distils tags into concepts,
4. every resource's bag of tags is mapped to a bag of concepts and indexed
   with tf-idf weights.

The resulting :class:`~repro.search.engine.SearchEngine` answers queries with
plain cosine similarity — the cheap online step of Table VI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

from repro.core.concepts import ConceptModel, distill_concepts
from repro.core.cubelsi import CubeLSI, CubeLSIResult
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError, NotFittedError
from repro.utils.rng import SeedLike
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # runtime import would close the core -> search -> core cycle
    from repro.search.engine import SearchEngine


#: JSON file holding OfflineIndex-level metadata in a save directory.
INDEX_METADATA_FILENAME = "offline_index.json"


@dataclass
class OfflineIndex:
    """Everything produced by the offline component of Figure 1.

    Indexes restored with :meth:`load` carry only what online serving
    needs — the concept model and the compiled search engine; the training
    folksonomy and the raw decomposition result are ``None``.
    """

    concept_model: ConceptModel
    engine: "SearchEngine"
    timings: Dict[str, float]
    folksonomy: Optional[Folksonomy] = None
    cubelsi_result: Optional[CubeLSIResult] = None

    @property
    def num_concepts(self) -> int:
        return self.concept_model.num_concepts

    def preprocessing_seconds(self) -> float:
        """Total offline time (decomposition + distances + clustering + indexing)."""
        return float(sum(self.timings.values()))

    # ------------------------------------------------------------------ #
    # Persistence (offline indexing and online serving as two processes)
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> Path:
        """Write the serving artefacts (engine + metadata) to ``directory``."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        self.engine.save(path)
        metadata = {
            "timings": {name: float(value) for name, value in self.timings.items()},
            "dataset_name": self.folksonomy.name if self.folksonomy else None,
            "num_concepts": self.num_concepts,
        }
        (path / INDEX_METADATA_FILENAME).write_text(
            json.dumps(metadata), encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "OfflineIndex":
        """Restore a serving-ready index from :meth:`save` output."""
        path = Path(directory)
        metadata_path = path / INDEX_METADATA_FILENAME
        if not metadata_path.exists():
            raise NotFittedError(f"no saved offline index under {path}")
        from repro.search.engine import SearchEngine

        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
        engine = SearchEngine.load(path)
        return cls(
            concept_model=engine.concept_model,
            engine=engine,
            timings={
                name: float(value) for name, value in metadata["timings"].items()
            },
        )


class CubeLSIPipeline:
    """Configure once, then ``fit`` on any folksonomy.

    Parameters
    ----------
    reduction_ratios / ranks:
        Passed to :class:`~repro.core.cubelsi.CubeLSI` (the paper's default
        is a reduction ratio of 50 on every mode).
    num_concepts:
        Number of concepts for spectral clustering; ``None`` uses the
        eigenvalue coverage rule.
    sigma:
        Affinity bandwidth for spectral clustering.
    max_iter / tol:
        ALS stopping parameters.
    seed:
        Single seed driving ALS initialisation and k-means restarts.
    smooth_idf:
        Passed to the vector space (the paper uses plain idf).
    """

    def __init__(
        self,
        reduction_ratios: Optional[Union[float, Sequence[float]]] = None,
        ranks: Optional[Sequence[int]] = None,
        num_concepts: Optional[int] = None,
        sigma: float = 1.0,
        max_iter: int = 25,
        tol: float = 1e-6,
        seed: SeedLike = 0,
        smooth_idf: bool = False,
        min_rank: int = 8,
    ) -> None:
        self._cubelsi = CubeLSI(
            ranks=ranks,
            reduction_ratios=reduction_ratios,
            max_iter=max_iter,
            tol=tol,
            seed=seed,
            min_rank=min_rank,
        )
        if num_concepts is not None and num_concepts < 1:
            raise ConfigurationError("num_concepts must be >= 1 when given")
        self._num_concepts = num_concepts
        self._sigma = sigma
        self._seed = seed
        self._smooth_idf = smooth_idf
        self._last_index: Optional[OfflineIndex] = None

    def fit(self, folksonomy: Folksonomy) -> OfflineIndex:
        """Run the full offline pipeline on ``folksonomy``."""
        if folksonomy.num_assignments == 0:
            raise ConfigurationError("cannot index an empty folksonomy")
        watch = Stopwatch()

        with watch.section("cubelsi"):
            cubelsi_result = self._cubelsi.fit(folksonomy)

        with watch.section("concept_distillation"):
            concept_model = distill_concepts(
                cubelsi_result.distances,
                tags=folksonomy.tags,
                num_concepts=self._effective_num_concepts(folksonomy),
                sigma=self._sigma,
                seed=self._seed,
            )

        from repro.search.engine import SearchEngine

        with watch.section("indexing"):
            engine = SearchEngine.build(
                folksonomy,
                concept_model,
                smooth_idf=self._smooth_idf,
                name="cubelsi",
            )

        index = OfflineIndex(
            folksonomy=folksonomy,
            cubelsi_result=cubelsi_result,
            concept_model=concept_model,
            engine=engine,
            timings=watch.totals(),
        )
        self._last_index = index
        return index

    @property
    def last_index(self) -> OfflineIndex:
        if self._last_index is None:
            raise NotFittedError("CubeLSIPipeline has not been fitted yet")
        return self._last_index

    def _effective_num_concepts(self, folksonomy: Folksonomy) -> Optional[int]:
        """Clamp a stipulated concept count to the number of available tags."""
        if self._num_concepts is None:
            return None
        return min(self._num_concepts, folksonomy.num_tags)
