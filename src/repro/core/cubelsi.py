"""Algorithm 1 of the paper: the CubeLSI tag semantic analysis.

Given a folksonomy (or its third-order tensor directly), CubeLSI

1. runs the Tucker-ALS decomposition with the requested core dimensions or
   reduction ratios (the paper's default is ``c1 = c2 = c3 = 50``),
2. builds the distance kernel ``Σ`` from the ALS by-product (Theorem 2) or
   the core tensor (Theorem 1), and
3. returns the full pairwise purified tag distance matrix ``D_hat`` without
   ever materialising the reconstructed tensor.

The result also exposes the memory accounting (paper Table VII) comparing
the dense reconstruction the naive approach would need against what the
shortcut actually stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.distances import (
    pairwise_distances_shortcut,
    sigma_from_core,
    sigma_from_singular_values,
    tag_distance_matrix,
)
from repro.tagging.folksonomy import Folksonomy
from repro.tensor.sparse import SparseTensor
from repro.tensor.tucker import TuckerDecomposition, tucker_als
from repro.utils.errors import ConfigurationError, DimensionError, NotFittedError
from repro.utils.rng import SeedLike
from repro.utils.timing import Stopwatch

#: The reduction ratio the paper uses for all reported experiments.
DEFAULT_REDUCTION_RATIO = 50.0


@dataclass
class CubeLSIResult:
    """Output of a CubeLSI run.

    Attributes
    ----------
    distances:
        Symmetric ``(|T|, |T|)`` matrix of purified tag distances ``D_hat``.
    decomposition:
        The underlying Tucker decomposition (core, factors, ``Λ₂``).
    tags:
        Tag labels in the row/column order of ``distances`` (``None`` when
        CubeLSI was fed a raw tensor without labels).
    timings:
        Seconds spent in the decomposition and in the distance computation.
    """

    distances: np.ndarray
    decomposition: TuckerDecomposition
    tags: Optional[Tuple[str, ...]]
    timings: dict
    _label_index: Optional[Dict[str, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_tags(self) -> int:
        return self.distances.shape[0]

    @property
    def ranks(self) -> Tuple[int, ...]:
        return self.decomposition.ranks

    def distance(self, tag_a: Union[int, str], tag_b: Union[int, str]) -> float:
        """Purified distance between two tags given by index or label."""
        return float(self.distances[self._index(tag_a), self._index(tag_b)])

    def nearest_tags(self, tag: Union[int, str], k: int = 5) -> list:
        """The ``k`` semantically closest tags to ``tag`` (excluding itself).

        Selects the ``k + 1`` smallest distances with ``argpartition``
        (O(|T|) instead of a full O(|T| log |T|) sort) and only sorts that
        candidate set; ties break deterministically by ascending tag index.
        """
        index = self._index(tag)
        row = self.distances[index]
        k = max(0, min(int(k), self.num_tags - 1))
        if k == 0:
            return []
        candidate_count = min(k + 1, row.size)
        if candidate_count < row.size:
            head = np.argpartition(row, candidate_count - 1)[:candidate_count]
            # Widen to the whole boundary tie group: argpartition keeps an
            # arbitrary subset of equal distances at the cut, but the
            # tie-break must see every tied index to pick the lowest ones.
            head = np.flatnonzero(row <= row[head].max())
        else:
            head = np.arange(row.size)
        ordered = head[np.lexsort((head, row[head]))]
        neighbours = [int(i) for i in ordered if i != index][:k]
        if self.tags is None:
            return [(int(i), float(self.distances[index, i])) for i in neighbours]
        return [(self.tags[i], float(self.distances[index, i])) for i in neighbours]

    def similarity_matrix(self, sigma: float = 1.0) -> np.ndarray:
        """Gaussian affinity ``exp(-D²/σ²)`` with zero diagonal (Section V step 1)."""
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        affinity = np.exp(-(self.distances**2) / (sigma**2))
        np.fill_diagonal(affinity, 0.0)
        return affinity

    def memory_report(self) -> dict:
        """Storage accounting behind Table VII (counts of float64 values and bytes)."""
        compressed_values = self.decomposition.compressed_size()
        core_values = int(np.prod(self.decomposition.ranks))
        tag_factor_values = int(self.decomposition.factors[1].size)
        dense_values = self.decomposition.dense_size()
        bytes_per_value = 8
        return {
            "dense_reconstruction_values": dense_values,
            "dense_reconstruction_bytes": dense_values * bytes_per_value,
            "core_plus_factors_values": compressed_values,
            "core_plus_factors_bytes": compressed_values * bytes_per_value,
            "core_plus_tag_factor_values": core_values + tag_factor_values,
            "core_plus_tag_factor_bytes": (core_values + tag_factor_values)
            * bytes_per_value,
        }

    def _index(self, tag: Union[int, str]) -> int:
        if isinstance(tag, (int, np.integer)):
            index = int(tag)
            if not 0 <= index < self.num_tags:
                raise DimensionError(f"tag index {index} out of range")
            return index
        if self.tags is None:
            raise ConfigurationError(
                "this CubeLSI result has no tag labels; address tags by index"
            )
        if self._label_index is None:
            # Built once: tuple.index would rescan O(|T|) labels per lookup.
            self._label_index = {
                label: position for position, label in enumerate(self.tags)
            }
        try:
            return self._label_index[tag]
        except KeyError as exc:
            raise KeyError(f"unknown tag {tag!r}") from exc


class CubeLSI:
    """The CubeLSI tag semantic analyser (offline component of Figure 1).

    Parameters
    ----------
    ranks:
        Explicit core dimensions ``(J1, J2, J3)``.
    reduction_ratios:
        Paper-style reduction ratios ``(c1, c2, c3)``; a single float applies
        the same ratio to all three modes.  Exactly one of ``ranks`` /
        ``reduction_ratios`` may be given; if neither is, the paper default
        ``c = 50`` is used (with a floor so tiny corpora keep a usable rank).
    max_iter / tol:
        ALS stopping parameters.
    use_theorem2:
        Build ``Σ`` from the ALS by-product (Theorem 2) rather than from the
        core unfolding (Theorem 1).
    seed:
        Seed for ALS initialisation.
    min_rank:
        Lower bound applied to ranks derived from reduction ratios, so small
        corpora still produce a meaningful latent space.
    """

    def __init__(
        self,
        ranks: Optional[Sequence[int]] = None,
        reduction_ratios: Optional[Union[float, Sequence[float]]] = None,
        max_iter: int = 25,
        tol: float = 1e-6,
        use_theorem2: bool = True,
        seed: SeedLike = 0,
        min_rank: int = 8,
    ) -> None:
        if ranks is not None and reduction_ratios is not None:
            raise ConfigurationError(
                "specify at most one of `ranks` and `reduction_ratios`"
            )
        self._ranks = tuple(int(r) for r in ranks) if ranks is not None else None
        if reduction_ratios is None:
            self._ratios: Optional[Tuple[float, float, float]] = (
                None if ranks is not None else (DEFAULT_REDUCTION_RATIO,) * 3
            )
        elif isinstance(reduction_ratios, (int, float)):
            self._ratios = (float(reduction_ratios),) * 3
        else:
            ratios = tuple(float(r) for r in reduction_ratios)
            if len(ratios) != 3:
                raise ConfigurationError(
                    "reduction_ratios must be a scalar or a length-3 sequence"
                )
            self._ratios = ratios
        self._max_iter = max_iter
        self._tol = tol
        self._use_theorem2 = use_theorem2
        self._seed = seed
        self._min_rank = max(1, int(min_rank))
        self._last_result: Optional[CubeLSIResult] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, data: Union[Folksonomy, SparseTensor, np.ndarray]) -> CubeLSIResult:
        """Run Algorithm 1 on a folksonomy or a raw order-3 tensor."""
        if isinstance(data, Folksonomy):
            tensor: Union[SparseTensor, np.ndarray] = data.to_tensor()
            tags: Optional[Tuple[str, ...]] = data.tags
        else:
            tensor = data
            tags = None
        shape = tuple(tensor.shape)
        if len(shape) != 3:
            raise DimensionError(
                f"CubeLSI expects an order-3 tensor, got order {len(shape)}"
            )

        ranks = self._resolve_ranks(shape)
        watch = Stopwatch()
        with watch.section("tucker_als"):
            decomposition = tucker_als(
                tensor,
                ranks=ranks,
                max_iter=self._max_iter,
                tol=self._tol,
                seed=self._seed,
            )
        with watch.section("tag_distances"):
            distances = tag_distance_matrix(
                decomposition, use_theorem2=self._use_theorem2
            )

        result = CubeLSIResult(
            distances=distances,
            decomposition=decomposition,
            tags=tags,
            timings=watch.totals(),
        )
        self._last_result = result
        return result

    @property
    def last_result(self) -> CubeLSIResult:
        """The most recent :class:`CubeLSIResult` (raises if never fitted)."""
        if self._last_result is None:
            raise NotFittedError("CubeLSI has not been fitted yet")
        return self._last_result

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _resolve_ranks(self, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if self._ranks is not None:
            return tuple(min(max(1, r), s) for r, s in zip(self._ranks, shape))
        assert self._ratios is not None
        resolved = []
        for size, ratio in zip(shape, self._ratios):
            rank = max(1, int(round(size / ratio)))
            rank = max(rank, min(self._min_rank, size))
            resolved.append(min(rank, size))
        return tuple(resolved)

    def sigma(self, decomposition: TuckerDecomposition) -> np.ndarray:
        """The kernel ``Σ`` this analyser would use for ``decomposition``."""
        if self._use_theorem2 and decomposition.lambda2.size >= decomposition.ranks[1]:
            return sigma_from_singular_values(
                decomposition.lambda2, rank=decomposition.ranks[1]
            )
        return sigma_from_core(decomposition.core)

    def distances_from_decomposition(
        self, decomposition: TuckerDecomposition
    ) -> np.ndarray:
        """Shortcut distances for an externally computed decomposition."""
        return pairwise_distances_shortcut(
            decomposition.factors[1], self.sigma(decomposition)
        )
