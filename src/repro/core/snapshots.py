"""Versioned on-disk snapshots of serving indexes.

An :class:`IndexSnapshotStore` manages a directory of epoch-stamped
:class:`~repro.core.pipeline.OfflineIndex` saves::

    root/
      epoch-00000000/   <- full offline fit
      epoch-00000042/   <- checkpoint after 42 mutation batches
      ...

The store is the persistence half of the incremental serving story: a
serving process restores the latest snapshot, keeps hot-applying
:class:`~repro.tagging.delta.FolksonomyDelta` batches via
``OfflineIndex.apply_delta``, and checkpoints whenever it likes; on restart
it resumes from the newest epoch instead of replaying the whole stream.
Snapshots are written with ``include_folksonomy=True`` so a restored index
can keep folding deltas in.

Alongside the epoch line the store keeps a *generation* line for the
lifecycle pipeline (:mod:`repro.search.lifecycle`)::

    root/
      gen-0001/         <- a published refit output
      gen-0002/         <- the next one
      CURRENT           <- atomic pointer at the serving generation

Epoch snapshots are *checkpoints of one engine's mutation stream*;
generation publishes are *whole new engines* (fresh Tucker fits).  A
refit publishes ``gen-N`` first, swaps it into serving, then flips the
``CURRENT`` pointer — a restart that reads :meth:`load_current` can
therefore never observe a generation that wasn't fully on disk, and
:meth:`gc_generations` never deletes the pointed-at generation.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from typing import List, Optional, Union

from repro.core.pipeline import OfflineIndex
from repro.utils.errors import ConfigurationError, NotFittedError

_EPOCH_DIR_PATTERN = re.compile(r"^epoch-(\d{8,})$")
_GENERATION_DIR_PATTERN = re.compile(r"^gen-(\d{4,})$")

#: File under the store root holding the atomic current-generation pointer.
CURRENT_POINTER_NAME = "CURRENT"


class IndexSnapshotStore:
    """Saves and restores epoch-stamped serving snapshots under a root dir."""

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def save(
        self,
        index: OfflineIndex,
        num_shards: Optional[int] = None,
        mmap_ready: bool = False,
    ) -> Path:
        """Checkpoint ``index`` under its engine's current epoch.

        Re-checkpointing the current epoch overwrites it in place, so a
        periodic checkpoint timer over a quiet corpus stays idempotent (no
        duplicate snapshots, no phantom epoch bumps).  Only when the
        engine's epoch has fallen *behind* the stored line — a full refit
        produces a fresh engine whose counter restarts at 0 after newer
        checkpoints exist — is the engine advanced to ``latest + 1``, so
        :meth:`load` always restores the newest state.  Checkpoint before
        refitting if the outgoing generation's snapshot must survive a
        same-epoch overwrite.

        Indexes whose engine is a
        :class:`~repro.search.sharding.ShardedSearchEngine` checkpoint in
        the sharded layout (per-shard ``.npz`` dirs + manifest), and
        ``num_shards`` shards a monolithic engine's checkpoint on the fly —
        either way :meth:`load` (via ``OfflineIndex.load``) restores the
        right engine, and an N-process deployment can point
        ``ShardedSearchEngine.load_shard`` — or a
        :class:`~repro.search.shardpool.ShardProcessPool` — at the
        snapshot directory (``mmap_ready=True`` writes the raw ``.npy``
        array layout pool workers memory-map).
        """
        if index.folksonomy is None:
            raise ConfigurationError(
                "snapshots persist the folksonomy so restored indexes can "
                "hot-apply deltas; this index carries none"
            )
        latest = self.latest_epoch()
        if latest is not None and index.engine.epoch < latest:
            index.engine.epoch = latest + 1
        directory = self._root / f"epoch-{index.engine.epoch:08d}"
        # Stage then rename so a crash mid-checkpoint can never leave a
        # torn directory that epochs() would count as the newest snapshot.
        staging = self._root / f".staging-epoch-{index.engine.epoch:08d}"
        if staging.exists():
            shutil.rmtree(staging)
        index.save(
            staging,
            include_folksonomy=True,
            num_shards=num_shards,
            mmap_ready=mmap_ready,
        )
        if directory.exists():
            # Retire the old snapshot with a rename (not an rmtree) so the
            # unprotected window between losing the old directory and
            # installing the new one is two metadata operations, not a
            # content-sized delete.
            retired = self._root / f".retired-epoch-{index.engine.epoch:08d}"
            if retired.exists():
                shutil.rmtree(retired)
            directory.replace(retired)
            staging.replace(directory)
            shutil.rmtree(retired)
        else:
            staging.replace(directory)
        return directory

    def prune(self, keep_last: int = 3) -> List[int]:
        """Delete all but the newest ``keep_last`` snapshots; returns epochs dropped."""
        if keep_last < 1:
            raise ConfigurationError(f"keep_last must be >= 1, got {keep_last}")
        epochs = self.epochs()
        doomed = epochs[:-keep_last] if len(epochs) > keep_last else []
        for epoch in doomed:
            shutil.rmtree(self._root / f"epoch-{epoch:08d}")
        return doomed

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def epochs(self) -> List[int]:
        """Epochs of all stored snapshots, ascending."""
        found = []
        for child in self._root.iterdir():
            match = _EPOCH_DIR_PATTERN.match(child.name)
            if match and child.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_epoch(self) -> Optional[int]:
        epochs = self.epochs()
        return epochs[-1] if epochs else None

    def load(self, epoch: Optional[int] = None) -> OfflineIndex:
        """Restore a snapshot (the newest one by default)."""
        if epoch is None:
            epoch = self.latest_epoch()
            if epoch is None:
                raise NotFittedError(f"no snapshots under {self._root}")
        directory = self._root / f"epoch-{epoch:08d}"
        if not directory.exists():
            raise NotFittedError(f"no snapshot for epoch {epoch} under {self._root}")
        return OfflineIndex.load(directory)

    # ------------------------------------------------------------------ #
    # Generation line (refit publishes)
    # ------------------------------------------------------------------ #
    def _generation_dir(self, generation: int) -> Path:
        return self._root / f"gen-{generation:04d}"

    def publish(
        self,
        index: OfflineIndex,
        generation: Optional[int] = None,
        make_current: bool = True,
        num_shards: Optional[int] = None,
        mmap_ready: bool = False,
    ) -> Path:
        """Write ``index`` as generation ``generation`` (next free by default).

        Publishing stages then renames, like :meth:`save`, so a torn write
        never becomes a listed generation.  ``make_current=False`` defers
        the pointer flip — the lifecycle coordinator publishes first,
        swaps serving, and only then calls :meth:`set_current`, so the
        pointer always names a generation that is actually serving.
        """
        if index.folksonomy is None:
            raise ConfigurationError(
                "published generations persist the folksonomy so the next "
                "refit can fit from them; this index carries none"
            )
        if generation is None:
            latest = self.latest_generation()
            generation = 1 if latest is None else latest + 1
        if generation < 1:
            raise ConfigurationError(f"generation must be >= 1, got {generation}")
        directory = self._generation_dir(generation)
        if directory.exists():
            raise ConfigurationError(
                f"generation {generation} already published under {self._root}; "
                "generations are immutable — publish the next number instead"
            )
        staging = self._root / f".staging-gen-{generation:04d}"
        if staging.exists():
            shutil.rmtree(staging)
        index.save(
            staging,
            include_folksonomy=True,
            num_shards=num_shards,
            mmap_ready=mmap_ready,
        )
        staging.replace(directory)
        if make_current:
            self.set_current(generation)
        return directory

    def set_current(self, generation: int) -> None:
        """Atomically point ``CURRENT`` at a published generation."""
        directory = self._generation_dir(generation)
        if not directory.exists():
            raise ConfigurationError(
                f"cannot mark generation {generation} current: nothing "
                f"published at {directory}"
            )
        pointer = self._root / CURRENT_POINTER_NAME
        # Write-then-rename: readers of the pointer see the old generation
        # or the new one, never a torn file.
        staging = self._root / f".{CURRENT_POINTER_NAME}.tmp"
        staging.write_text(
            json.dumps({"generation": generation, "path": directory.name}),
            encoding="utf-8",
        )
        os.replace(staging, pointer)

    def current_generation(self) -> Optional[int]:
        """The pointed-at generation, or ``None`` before any pointer flip."""
        pointer = self._root / CURRENT_POINTER_NAME
        if not pointer.exists():
            return None
        payload = json.loads(pointer.read_text(encoding="utf-8"))
        return int(payload["generation"])

    def generations(self) -> List[int]:
        """Numbers of all published generations, ascending."""
        found = []
        for child in self._root.iterdir():
            match = _GENERATION_DIR_PATTERN.match(child.name)
            if match and child.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_generation(self) -> Optional[int]:
        generations = self.generations()
        return generations[-1] if generations else None

    def load_generation(self, generation: int) -> OfflineIndex:
        directory = self._generation_dir(generation)
        if not directory.exists():
            raise NotFittedError(
                f"no generation {generation} published under {self._root}"
            )
        return OfflineIndex.load(directory)

    def load_current(self) -> OfflineIndex:
        """Restore the generation the ``CURRENT`` pointer names."""
        generation = self.current_generation()
        if generation is None:
            raise NotFittedError(
                f"no current generation under {self._root}; publish one first"
            )
        return self.load_generation(generation)

    def retire_generation(self, generation: int) -> None:
        """Delete one stale published generation (the current one is refused)."""
        if generation == self.current_generation():
            raise ConfigurationError(
                f"generation {generation} is the current serving generation; "
                "flip the pointer before retiring it"
            )
        directory = self._generation_dir(generation)
        if not directory.exists():
            raise NotFittedError(
                f"no generation {generation} published under {self._root}"
            )
        shutil.rmtree(directory)

    def gc_generations(self, keep_last: int = 2) -> List[int]:
        """Retire all but the newest ``keep_last`` generations.

        The current generation is always kept, even when it has fallen
        outside the newest window (a rolled-back pointer must stay
        loadable).  Returns the generations dropped.
        """
        if keep_last < 1:
            raise ConfigurationError(f"keep_last must be >= 1, got {keep_last}")
        generations = self.generations()
        current = self.current_generation()
        doomed = [
            generation
            for generation in generations[:-keep_last]
            if generation != current
        ]
        for generation in doomed:
            shutil.rmtree(self._generation_dir(generation))
        return doomed
