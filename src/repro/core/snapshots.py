"""Versioned on-disk snapshots of serving indexes.

An :class:`IndexSnapshotStore` manages a directory of epoch-stamped
:class:`~repro.core.pipeline.OfflineIndex` saves::

    root/
      epoch-00000000/   <- full offline fit
      epoch-00000042/   <- checkpoint after 42 mutation batches
      ...

The store is the persistence half of the incremental serving story: a
serving process restores the latest snapshot, keeps hot-applying
:class:`~repro.tagging.delta.FolksonomyDelta` batches via
``OfflineIndex.apply_delta``, and checkpoints whenever it likes; on restart
it resumes from the newest epoch instead of replaying the whole stream.
Snapshots are written with ``include_folksonomy=True`` so a restored index
can keep folding deltas in.
"""

from __future__ import annotations

import re
import shutil
from pathlib import Path
from typing import List, Optional, Union

from repro.core.pipeline import OfflineIndex
from repro.utils.errors import ConfigurationError, NotFittedError

_EPOCH_DIR_PATTERN = re.compile(r"^epoch-(\d{8,})$")


class IndexSnapshotStore:
    """Saves and restores epoch-stamped serving snapshots under a root dir."""

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def save(
        self,
        index: OfflineIndex,
        num_shards: Optional[int] = None,
        mmap_ready: bool = False,
    ) -> Path:
        """Checkpoint ``index`` under its engine's current epoch.

        Re-checkpointing the current epoch overwrites it in place, so a
        periodic checkpoint timer over a quiet corpus stays idempotent (no
        duplicate snapshots, no phantom epoch bumps).  Only when the
        engine's epoch has fallen *behind* the stored line — a full refit
        produces a fresh engine whose counter restarts at 0 after newer
        checkpoints exist — is the engine advanced to ``latest + 1``, so
        :meth:`load` always restores the newest state.  Checkpoint before
        refitting if the outgoing generation's snapshot must survive a
        same-epoch overwrite.

        Indexes whose engine is a
        :class:`~repro.search.sharding.ShardedSearchEngine` checkpoint in
        the sharded layout (per-shard ``.npz`` dirs + manifest), and
        ``num_shards`` shards a monolithic engine's checkpoint on the fly —
        either way :meth:`load` (via ``OfflineIndex.load``) restores the
        right engine, and an N-process deployment can point
        ``ShardedSearchEngine.load_shard`` — or a
        :class:`~repro.search.shardpool.ShardProcessPool` — at the
        snapshot directory (``mmap_ready=True`` writes the raw ``.npy``
        array layout pool workers memory-map).
        """
        if index.folksonomy is None:
            raise ConfigurationError(
                "snapshots persist the folksonomy so restored indexes can "
                "hot-apply deltas; this index carries none"
            )
        latest = self.latest_epoch()
        if latest is not None and index.engine.epoch < latest:
            index.engine.epoch = latest + 1
        directory = self._root / f"epoch-{index.engine.epoch:08d}"
        # Stage then rename so a crash mid-checkpoint can never leave a
        # torn directory that epochs() would count as the newest snapshot.
        staging = self._root / f".staging-epoch-{index.engine.epoch:08d}"
        if staging.exists():
            shutil.rmtree(staging)
        index.save(
            staging,
            include_folksonomy=True,
            num_shards=num_shards,
            mmap_ready=mmap_ready,
        )
        if directory.exists():
            # Retire the old snapshot with a rename (not an rmtree) so the
            # unprotected window between losing the old directory and
            # installing the new one is two metadata operations, not a
            # content-sized delete.
            retired = self._root / f".retired-epoch-{index.engine.epoch:08d}"
            if retired.exists():
                shutil.rmtree(retired)
            directory.replace(retired)
            staging.replace(directory)
            shutil.rmtree(retired)
        else:
            staging.replace(directory)
        return directory

    def prune(self, keep_last: int = 3) -> List[int]:
        """Delete all but the newest ``keep_last`` snapshots; returns epochs dropped."""
        if keep_last < 1:
            raise ConfigurationError(f"keep_last must be >= 1, got {keep_last}")
        epochs = self.epochs()
        doomed = epochs[:-keep_last] if len(epochs) > keep_last else []
        for epoch in doomed:
            shutil.rmtree(self._root / f"epoch-{epoch:08d}")
        return doomed

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def epochs(self) -> List[int]:
        """Epochs of all stored snapshots, ascending."""
        found = []
        for child in self._root.iterdir():
            match = _EPOCH_DIR_PATTERN.match(child.name)
            if match and child.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_epoch(self) -> Optional[int]:
        epochs = self.epochs()
        return epochs[-1] if epochs else None

    def load(self, epoch: Optional[int] = None) -> OfflineIndex:
        """Restore a snapshot (the newest one by default)."""
        if epoch is None:
            epoch = self.latest_epoch()
            if epoch is None:
                raise NotFittedError(f"no snapshots under {self._root}")
        directory = self._root / f"epoch-{epoch:08d}"
        if not directory.exists():
            raise NotFittedError(f"no snapshot for epoch {epoch} under {self._root}")
        return OfflineIndex.load(directory)
