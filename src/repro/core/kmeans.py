"""k-means clustering (Lloyd's algorithm with k-means++ seeding).

Used as the final step of the spectral clustering of Section V.  Implemented
from scratch so the library has no dependency beyond numpy, and so the
seeding / empty-cluster policies are explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.errors import ConfigurationError, DimensionError
from repro.utils.rng import SeedLike, make_rng


@dataclass
class KMeansResult:
    """Result of a k-means run."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int
    converged: bool

    @property
    def num_clusters(self) -> int:
        return self.centroids.shape[0]


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation and restarts.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``k``.
    max_iter:
        Maximum Lloyd iterations per restart.
    num_init:
        Number of independent restarts; the run with the lowest inertia wins.
    tol:
        Convergence threshold on centroid movement (squared Frobenius norm).
    seed:
        Seed for the initialisation.
    """

    def __init__(
        self,
        num_clusters: int,
        max_iter: int = 100,
        num_init: int = 4,
        tol: float = 1e-8,
        seed: SeedLike = 0,
    ) -> None:
        if num_clusters < 1:
            raise ConfigurationError(f"num_clusters must be >= 1, got {num_clusters}")
        if max_iter < 1:
            raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
        if num_init < 1:
            raise ConfigurationError(f"num_init must be >= 1, got {num_init}")
        self._num_clusters = num_clusters
        self._max_iter = max_iter
        self._num_init = num_init
        self._tol = tol
        self._seed = seed

    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster the rows of ``points`` into ``num_clusters`` groups."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise DimensionError("KMeans expects a 2-D array of row vectors")
        num_points = points.shape[0]
        if num_points == 0:
            raise DimensionError("cannot cluster an empty set of points")
        k = min(self._num_clusters, num_points)

        rng = make_rng(self._seed)
        best: Optional[KMeansResult] = None
        for _ in range(self._num_init):
            result = self._single_run(points, k, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _single_run(
        self, points: np.ndarray, k: int, rng: np.random.Generator
    ) -> KMeansResult:
        centroids = self._kmeans_plus_plus(points, k, rng)
        labels = np.zeros(points.shape[0], dtype=int)
        converged = False
        iterations = 0
        for iterations in range(1, self._max_iter + 1):
            distances = _squared_distances(points, centroids)
            labels = np.argmin(distances, axis=1)
            new_centroids = np.empty_like(centroids)
            empty_clusters = []
            for cluster in range(k):
                members = points[labels == cluster]
                if members.shape[0] == 0:
                    empty_clusters.append(cluster)
                else:
                    new_centroids[cluster] = members.mean(axis=0)
            if empty_clusters:
                # Re-seed empty clusters at the points farthest from their
                # assigned centroids, the standard fix that keeps k stable.
                # Each empty cluster takes the next-farthest *distinct* point:
                # handing the same farthest point to every cluster that
                # emptied in this iteration would leave duplicate centroids
                # (and the clusters empty again on the next assignment).
                farthest_first = np.argsort(-np.min(distances, axis=1), kind="stable")
                for cluster, point in zip(empty_clusters, farthest_first):
                    new_centroids[cluster] = points[point]
            movement = float(np.sum((new_centroids - centroids) ** 2))
            centroids = new_centroids
            if movement <= self._tol:
                converged = True
                break
        distances = _squared_distances(points, centroids)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(distances[np.arange(points.shape[0]), labels]))
        return KMeansResult(
            labels=labels,
            centroids=centroids,
            inertia=inertia,
            iterations=iterations,
            converged=converged,
        )

    @staticmethod
    def _kmeans_plus_plus(
        points: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding: spread the initial centroids out."""
        num_points = points.shape[0]
        centroids = np.empty((k, points.shape[1]), dtype=float)
        first = int(rng.integers(num_points))
        centroids[0] = points[first]
        closest = _squared_distances(points, centroids[:1]).ravel()
        for index in range(1, k):
            total = closest.sum()
            if total <= 0:
                choice = int(rng.integers(num_points))
            else:
                choice = int(rng.choice(num_points, p=closest / total))
            centroids[index] = points[choice]
            new_distances = _squared_distances(points, centroids[index : index + 1]).ravel()
            closest = np.minimum(closest, new_distances)
        return centroids


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every point and every centroid."""
    point_norms = np.sum(points * points, axis=1)[:, None]
    centroid_norms = np.sum(centroids * centroids, axis=1)[None, :]
    cross = points @ centroids.T
    return np.maximum(point_norms + centroid_norms - 2.0 * cross, 0.0)
