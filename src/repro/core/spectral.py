"""Ng-Jordan-Weiss spectral clustering (Section V of the paper).

The concept-distillation step clusters tags from their pairwise purified
distances:

1. ``A_ij = exp(-D_ij² / σ²)`` (zero diagonal) — the Gaussian affinity,
2. ``L = M^{-1/2} A M^{-1/2}`` with ``M`` the diagonal degree matrix,
3. take the eigenvectors of the ``k`` largest eigenvalues of ``L`` as rows,
   normalise each row to unit length,
4. run k-means on the rows; each cluster is a *concept*.

``k`` can be stipulated or chosen so the retained eigenvalues cover a target
fraction (the paper mentions 95%) of the spectrum mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.kmeans import KMeans
from repro.utils.errors import ConfigurationError, DimensionError
from repro.utils.rng import SeedLike
from repro.utils.validation import check_square


@dataclass
class SpectralClusteringResult:
    """Labels plus the intermediate spectral quantities (useful in tests)."""

    labels: np.ndarray
    affinity: np.ndarray
    normalized_laplacian: np.ndarray
    eigenvalues: np.ndarray
    embedding: np.ndarray
    num_clusters: int

    def clusters(self) -> list:
        """Cluster contents as a list of sorted index lists."""
        groups = []
        for cluster in range(self.num_clusters):
            groups.append(sorted(np.flatnonzero(self.labels == cluster).tolist()))
        return groups


def affinity_from_distances(distances: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Step 1: Gaussian affinity ``exp(-D²/σ²)`` with a zero diagonal."""
    distances = check_square(np.asarray(distances, dtype=float), "distances")
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    affinity = np.exp(-(distances**2) / (sigma**2))
    np.fill_diagonal(affinity, 0.0)
    return affinity


def normalized_laplacian(affinity: np.ndarray) -> np.ndarray:
    """Step 2: ``L = M^{-1/2} A M^{-1/2}`` (isolated rows keep a zero row)."""
    affinity = check_square(np.asarray(affinity, dtype=float), "affinity")
    degrees = affinity.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    return (inv_sqrt[:, None] * affinity) * inv_sqrt[None, :]


def choose_num_clusters(
    eigenvalues: np.ndarray, variance_target: float = 0.95, max_clusters: Optional[int] = None
) -> int:
    """Pick ``k`` so the top-k eigenvalues cover ``variance_target`` of the mass.

    ``eigenvalues`` must be sorted in decreasing order; negative eigenvalues
    are clipped to zero before computing coverage.
    """
    if not 0.0 < variance_target <= 1.0:
        raise ConfigurationError("variance_target must be in (0, 1]")
    values = np.clip(np.asarray(eigenvalues, dtype=float), 0.0, None)
    total = values.sum()
    if total <= 0:
        return 1
    coverage = np.cumsum(values) / total
    k = int(np.searchsorted(coverage, variance_target) + 1)
    k = max(1, min(k, values.shape[0]))
    if max_clusters is not None:
        k = min(k, max_clusters)
    return k


class SpectralClustering:
    """The full Ng-Jordan-Weiss pipeline over a pairwise distance matrix.

    Parameters
    ----------
    num_clusters:
        Number of concepts ``k``.  ``None`` lets the eigengap/variance rule
        choose it (``variance_target``).
    sigma:
        Bandwidth of the Gaussian affinity kernel.
    variance_target:
        Spectrum coverage used when ``num_clusters`` is ``None``.
    seed:
        Seed for the k-means stage.
    """

    def __init__(
        self,
        num_clusters: Optional[int] = None,
        sigma: float = 1.0,
        variance_target: float = 0.95,
        seed: SeedLike = 0,
        kmeans_restarts: int = 4,
    ) -> None:
        if num_clusters is not None and num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1 when given")
        self._num_clusters = num_clusters
        self._sigma = sigma
        self._variance_target = variance_target
        self._seed = seed
        self._kmeans_restarts = kmeans_restarts

    def fit(self, distances: np.ndarray) -> SpectralClusteringResult:
        """Cluster items given their pairwise distance matrix."""
        distances = np.asarray(distances, dtype=float)
        distances = check_square(distances, "distances")
        num_items = distances.shape[0]
        if num_items == 0:
            raise DimensionError("cannot cluster an empty distance matrix")

        affinity = affinity_from_distances(distances, sigma=self._sigma)
        laplacian = normalized_laplacian(affinity)
        # eigh returns ascending eigenvalues for symmetric matrices.
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        eigenvalues = eigenvalues[::-1]
        eigenvectors = eigenvectors[:, ::-1]

        if self._num_clusters is not None:
            k = min(self._num_clusters, num_items)
        else:
            k = choose_num_clusters(
                eigenvalues, variance_target=self._variance_target, max_clusters=num_items
            )

        embedding = eigenvectors[:, :k]
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        embedding = embedding / norms

        kmeans = KMeans(
            num_clusters=k,
            seed=self._seed,
            num_init=self._kmeans_restarts,
        )
        labels = kmeans.fit(embedding).labels

        return SpectralClusteringResult(
            labels=labels,
            affinity=affinity,
            normalized_laplacian=laplacian,
            eigenvalues=eigenvalues,
            embedding=embedding,
            num_clusters=k,
        )
