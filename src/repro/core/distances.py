"""Purified pairwise tag distances (Section IV-D, Theorems 1 and 2).

The purified tag distance is defined on the reconstructed tensor
``F_hat = S ×_1 Y(1) ×_2 Y(2) ×_3 Y(3)`` as the Frobenius norm of the
difference of two tag slices (Eq. 17):

    D_hat(i, j) = || F_hat[:, t_i, :] - F_hat[:, t_j, :] ||_F

Materialising ``F_hat`` is infeasible for real folksonomies (Table VII), so
the paper proves two shortcuts:

* **Theorem 1** — ``D_hat(i, j) = sqrt( x Σ xᵀ )`` with
  ``x = Y(2)_{t_i,:} - Y(2)_{t_j,:}`` and ``Σ`` computable from the core
  tensor alone.  Because the mode-1 and mode-3 factors have orthonormal
  columns, ``Σ = S_(2) S_(2)ᵀ`` where ``S_(2)`` is the mode-2 unfolding of
  the core.
* **Theorem 2** — at an ALS fixed point, ``Σ`` equals the squared diagonal
  matrix of the leading ``J_2`` mode-2 singular values ``Λ₂`` returned as a
  by-product of the ALS run, so not even the core unfolding product is
  needed.

This module implements both shortcuts *and* the naive materialised
definition; the test-suite checks they agree to numerical precision, which
is an executable proof-check of the theorems on small tensors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor.dense import unfold
from repro.tensor.tucker import TuckerDecomposition
from repro.utils.errors import DimensionError
from repro.utils.validation import check_shape_2d, check_square


def sigma_from_core(core: np.ndarray) -> np.ndarray:
    """Theorem 1 kernel: ``Σ = S_(2) S_(2)ᵀ`` from the core tensor.

    ``Σ`` is a ``J₂ × J₂`` symmetric positive semi-definite matrix; the
    purified distance between tags i and j is then
    ``sqrt((Y²ᵢ - Y²ⱼ) Σ (Y²ᵢ - Y²ⱼ)ᵀ)``.
    """
    core = np.asarray(core, dtype=float)
    if core.ndim < 2:
        raise DimensionError("sigma_from_core requires a core tensor of order >= 2")
    core_unfolding = unfold(core, 1)
    return core_unfolding @ core_unfolding.T


def sigma_from_singular_values(lambda2: np.ndarray, rank: Optional[int] = None) -> np.ndarray:
    """Theorem 2 kernel: ``Σ = diag(Λ₂[:J₂])²`` from the ALS by-product.

    Parameters
    ----------
    lambda2:
        The mode-2 singular values returned by the ALS
        (``TuckerDecomposition.lambda2``).
    rank:
        ``J₂``; defaults to ``len(lambda2)``.
    """
    lambda2 = np.asarray(lambda2, dtype=float).ravel()
    if rank is None:
        rank = lambda2.shape[0]
    if rank <= 0 or rank > lambda2.shape[0]:
        raise DimensionError(
            f"rank must be in [1, {lambda2.shape[0]}], got {rank}"
        )
    leading = lambda2[:rank]
    return np.diag(leading**2)


def pairwise_distances_shortcut(
    tag_factor: np.ndarray, sigma: np.ndarray
) -> np.ndarray:
    """All pairwise purified tag distances via Theorem 1 (Eq. 20 / 21).

    Parameters
    ----------
    tag_factor:
        The mode-2 factor matrix ``Y(2)`` of shape ``(|T|, J₂)``.
    sigma:
        The ``J₂ × J₂`` kernel from :func:`sigma_from_core` or
        :func:`sigma_from_singular_values`.

    Returns
    -------
    A symmetric ``(|T|, |T|)`` matrix of distances with a zero diagonal.

    Notes
    -----
    The quadratic form ``x Σ xᵀ`` expands to
    ``qᵢ + qⱼ - 2 Gᵢⱼ`` with ``G = Y Σ Yᵀ`` and ``q = diag(G)``, so the whole
    matrix is computed with two matrix products instead of ``O(|T|²)``
    explicit loops.  Tiny negative values produced by floating-point
    cancellation are clipped to zero before the square root.
    """
    tag_factor = check_shape_2d(tag_factor, "tag_factor")
    sigma = check_square(sigma, "sigma")
    if sigma.shape[0] != tag_factor.shape[1]:
        raise DimensionError(
            f"sigma is {sigma.shape} but tag_factor has {tag_factor.shape[1]} columns"
        )
    gram = tag_factor @ sigma @ tag_factor.T
    quadratic = np.diag(gram)
    squared = quadratic[:, None] + quadratic[None, :] - 2.0 * gram
    squared = np.maximum(squared, 0.0)
    distances = np.sqrt(squared)
    np.fill_diagonal(distances, 0.0)
    # Enforce exact symmetry against floating point drift.
    return (distances + distances.T) / 2.0


def pairwise_distances_materialized(decomposition: TuckerDecomposition) -> np.ndarray:
    """Naive purified distances by reconstructing ``F_hat`` (Eq. 17).

    Only usable on small tensors (tests, the running example); quadratic in
    ``|T|`` and linear in ``|U| x |R|`` per pair.  Serves as the reference
    implementation the shortcut is validated against.
    """
    reconstructed = decomposition.reconstruct()
    if reconstructed.ndim != 3:
        raise DimensionError(
            "materialized distances are defined for order-3 tensors only"
        )
    num_tags = reconstructed.shape[1]
    distances = np.zeros((num_tags, num_tags), dtype=float)
    for i in range(num_tags):
        slice_i = reconstructed[:, i, :]
        for j in range(i + 1, num_tags):
            difference = slice_i - reconstructed[:, j, :]
            value = float(np.sqrt(np.sum(difference * difference)))
            distances[i, j] = value
            distances[j, i] = value
    return distances


def tag_distance_matrix(
    decomposition: TuckerDecomposition,
    use_theorem2: bool = True,
) -> np.ndarray:
    """Pairwise purified tag distances for a fitted Tucker decomposition.

    Parameters
    ----------
    decomposition:
        Result of :func:`repro.tensor.tucker.tucker_als` on the
        user x tag x resource tensor.
    use_theorem2:
        If ``True`` the kernel ``Σ`` is built from the ALS singular-value
        by-product (Theorem 2, Algorithm 1 line (21)); otherwise it is built
        from the core tensor (Theorem 1).  The two agree at an ALS fixed
        point; Theorem 1 is the safer choice when the ALS was stopped early,
        and is therefore used as a fallback whenever the by-product is
        unavailable.
    """
    if decomposition.order != 3:
        raise DimensionError("CubeLSI distances require an order-3 decomposition")
    tag_factor = decomposition.factors[1]
    if use_theorem2 and decomposition.lambda2.size >= decomposition.ranks[1]:
        sigma = sigma_from_singular_values(
            decomposition.lambda2, rank=decomposition.ranks[1]
        )
    else:
        sigma = sigma_from_core(decomposition.core)
    return pairwise_distances_shortcut(tag_factor, sigma)


def raw_slice_distances(tensor) -> np.ndarray:
    """Unpurified tensor-slice distances ``||F[:,i,:] - F[:,j,:]||_F`` (Eq. 8).

    This is the distance the CubeSim baseline uses; it is deliberately slow
    (it works directly on the raw sparse slices) because that is the point
    the paper's Table V makes.
    """
    from repro.tensor.sparse import SparseTensor  # local import to avoid cycle

    if isinstance(tensor, SparseTensor):
        if tensor.ndim != 3:
            raise DimensionError("raw slice distances require an order-3 tensor")
        num_tags = tensor.shape[1]
        slices = [tensor.slice(1, t) for t in range(num_tags)]
        distances = np.zeros((num_tags, num_tags), dtype=float)
        for i in range(num_tags):
            for j in range(i + 1, num_tags):
                difference = (slices[i] - slices[j])
                value = float(np.sqrt(difference.multiply(difference).sum()))
                distances[i, j] = value
                distances[j, i] = value
        return distances

    dense = np.asarray(tensor, dtype=float)
    if dense.ndim != 3:
        raise DimensionError("raw slice distances require an order-3 tensor")
    num_tags = dense.shape[1]
    distances = np.zeros((num_tags, num_tags), dtype=float)
    for i in range(num_tags):
        for j in range(i + 1, num_tags):
            difference = dense[:, i, :] - dense[:, j, :]
            value = float(np.sqrt(np.sum(difference * difference)))
            distances[i, j] = value
            distances[j, i] = value
    return distances


def aggregated_vector_distances(tag_resource_matrix) -> np.ndarray:
    """Traditional IR distances on the user-aggregated tag-resource matrix (Eq. 6)."""
    import scipy.sparse as sp

    if sp.issparse(tag_resource_matrix):
        matrix = np.asarray(tag_resource_matrix.todense(), dtype=float)
    else:
        matrix = np.asarray(tag_resource_matrix, dtype=float)
    matrix = check_shape_2d(matrix, "tag_resource_matrix")
    squared_norms = np.sum(matrix * matrix, axis=1)
    gram = matrix @ matrix.T
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    squared = np.maximum(squared, 0.0)
    distances = np.sqrt(squared)
    np.fill_diagonal(distances, 0.0)
    return (distances + distances.T) / 2.0
