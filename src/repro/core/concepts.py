"""Concept distillation: clustering tags into concepts (Section V).

Once CubeLSI has produced pairwise tag distances, the tags are clustered
with spectral clustering; each cluster is a *concept*.  The
:class:`ConceptModel` then maps any bag of tags (a resource's annotations or
a user query) into a bag of concepts, which is the representation the
vector-space ranking of Section III operates on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.spectral import SpectralClustering
from repro.utils.errors import ConfigurationError, DimensionError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class Concept:
    """A distilled concept: an id and the tags assigned to it."""

    concept_id: int
    tags: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.tags:
            raise ConfigurationError("a concept must contain at least one tag")

    def __len__(self) -> int:
        return len(self.tags)

    def label(self, max_tags: int = 3) -> str:
        """A short human-readable label built from the first few tags."""
        shown = ", ".join(self.tags[:max_tags])
        suffix = ", ..." if len(self.tags) > max_tags else ""
        return f"[{shown}{suffix}]"


@dataclass
class ConceptModel:
    """Maps tags to concepts and tag bags to concept bags.

    Attributes
    ----------
    concepts:
        The distilled concepts, indexed by ``concept_id`` = list position.
    tag_to_concept:
        Hard assignment of every clustered tag to its concept id.
    unknown_policy:
        What to do with tags not seen during distillation: ``"ignore"``
        (default, they contribute nothing) or ``"own-concept"`` (each unknown
        tag becomes a singleton concept, allocated only by index-build code
        paths that pass ``allocate=True`` — useful for BOW style degenerate
        models).  Query-side lookups never allocate: a read must not change
        ``num_concepts``, so serving stays deterministic and thread-safe.
    """

    concepts: List[Concept]
    tag_to_concept: Dict[str, int]
    unknown_policy: str = "ignore"
    _dynamic_concepts: Dict[str, int] = field(default_factory=dict, repr=False)
    _allocation_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.unknown_policy not in ("ignore", "own-concept"):
            raise ConfigurationError(
                f"unknown_policy must be 'ignore' or 'own-concept', got "
                f"{self.unknown_policy!r}"
            )
        for tag, concept_id in self.tag_to_concept.items():
            if not 0 <= concept_id < len(self.concepts):
                raise DimensionError(
                    f"tag {tag!r} maps to concept {concept_id} but only "
                    f"{len(self.concepts)} concepts exist"
                )

    @property
    def num_concepts(self) -> int:
        return len(self.concepts) + len(self._dynamic_concepts)

    @property
    def num_persisted_concepts(self) -> int:
        """The static (distilled) concept count, excluding dynamics.

        This is the figure index metadata records and validates: it is
        stable across the index's lifetime, whereas dynamic concepts come
        and go with mutations (they do survive an engine save/load — their
        columns live in the persisted count arrays — but their number is
        not a property of the distilled model).
        """
        return len(self.concepts)

    @property
    def num_tags(self) -> int:
        return len(self.tag_to_concept)

    def concept_of(self, tag: str, allocate: bool = False) -> Optional[int]:
        """Concept id of ``tag`` or ``None`` if unknown (and policy ignores it).

        Lookups are non-mutating by default: under ``"own-concept"`` an
        unknown tag only receives a new dynamic concept when ``allocate=True``
        (index-build time).  A mere query must never allocate — otherwise
        ``num_concepts`` becomes query-order-dependent and concurrent reads
        race on the dynamic table.
        """
        if tag in self.tag_to_concept:
            return self.tag_to_concept[tag]
        if self.unknown_policy == "own-concept":
            existing = self._dynamic_concepts.get(tag)
            if existing is not None:
                return existing
            if allocate:
                with self._allocation_lock:
                    return self._dynamic_concepts.setdefault(
                        tag, len(self.concepts) + len(self._dynamic_concepts)
                    )
        return None

    def concept_bag(
        self, tag_bag: Mapping[str, float], allocate: bool = False
    ) -> Dict[int, float]:
        """Transform a bag of tags into a bag of concepts.

        Counts of tags mapping to the same concept are summed, exactly as the
        paper's ``c(l_i, r)`` counts concept occurrences in a resource.
        ``allocate`` is forwarded to :meth:`concept_of` (index-build only).
        """
        bag: Dict[int, float] = {}
        for tag, count in tag_bag.items():
            concept_id = self.concept_of(tag, allocate=allocate)
            if concept_id is None:
                continue
            bag[concept_id] = bag.get(concept_id, 0.0) + float(count)
        return bag

    def concept_bag_from_tags(
        self, tags: Iterable[str], allocate: bool = False
    ) -> Dict[int, float]:
        """Concept bag of a plain tag list (each occurrence counts once)."""
        counts: Dict[str, float] = {}
        for tag in tags:
            counts[tag] = counts.get(tag, 0.0) + 1.0
        return self.concept_bag(counts, allocate=allocate)

    def members(self, concept_id: int) -> Tuple[str, ...]:
        """Tags belonging to a concept."""
        if 0 <= concept_id < len(self.concepts):
            return self.concepts[concept_id].tags
        for tag, dynamic_id in self._dynamic_concepts.items():
            if dynamic_id == concept_id:
                return (tag,)
        raise KeyError(f"no concept with id {concept_id}")

    def cluster_sizes(self) -> List[int]:
        return [len(c) for c in self.concepts]

    def as_clusters(self) -> List[Tuple[str, ...]]:
        """All clusters as tuples of tags (for the Table IV style report)."""
        return [c.tags for c in self.concepts]


def distill_concepts(
    distances: np.ndarray,
    tags: Sequence[str],
    num_concepts: Optional[int] = None,
    sigma: float = 1.0,
    variance_target: float = 0.95,
    seed: SeedLike = 0,
    unknown_policy: str = "ignore",
) -> ConceptModel:
    """Cluster tags into concepts from their pairwise distance matrix.

    Parameters
    ----------
    distances:
        Symmetric ``(|T|, |T|)`` matrix of tag distances (e.g. the CubeLSI
        purified distances, or any baseline's distances).
    tags:
        Tag labels matching the rows of ``distances``.
    num_concepts:
        Number of concepts ``k``; ``None`` lets spectral clustering pick it
        from the eigenvalue spectrum (``variance_target`` coverage).
    sigma:
        Bandwidth of the Gaussian affinity.
    seed:
        Seed for the k-means stage.
    unknown_policy:
        Passed through to :class:`ConceptModel`.
    """
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise DimensionError("distances must be a square matrix")
    if len(tags) != distances.shape[0]:
        raise DimensionError(
            f"{len(tags)} tag labels for a {distances.shape[0]}-row distance matrix"
        )
    if len(set(tags)) != len(tags):
        raise ConfigurationError("tag labels must be unique")

    clustering = SpectralClustering(
        num_clusters=num_concepts,
        sigma=sigma,
        variance_target=variance_target,
        seed=seed,
    )
    result = clustering.fit(distances)

    clusters: Dict[int, List[str]] = {}
    for tag, label in zip(tags, result.labels):
        clusters.setdefault(int(label), []).append(tag)

    concepts: List[Concept] = []
    tag_to_concept: Dict[str, int] = {}
    for new_id, label in enumerate(sorted(clusters)):
        member_tags = tuple(sorted(clusters[label]))
        concepts.append(Concept(concept_id=new_id, tags=member_tags))
        for tag in member_tags:
            tag_to_concept[tag] = new_id

    return ConceptModel(
        concepts=concepts,
        tag_to_concept=tag_to_concept,
        unknown_policy=unknown_policy,
    )


def identity_concept_model(tags: Sequence[str]) -> ConceptModel:
    """The degenerate model where every tag is its own concept.

    This is what the BOW baseline amounts to; having it share the
    :class:`ConceptModel` interface lets every ranker go through the same
    vector-space machinery.
    """
    if len(set(tags)) != len(tags):
        raise ConfigurationError("tag labels must be unique")
    concepts = [
        Concept(concept_id=index, tags=(tag,)) for index, tag in enumerate(tags)
    ]
    mapping = {tag: index for index, tag in enumerate(tags)}
    return ConceptModel(concepts=concepts, tag_to_concept=mapping)
