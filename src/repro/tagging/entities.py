"""Value objects describing the entities of a social tagging system.

The paper works with four entity types: users (taggers) ``U``, tags ``T``,
resources ``R`` and tag assignments ``Y ⊆ U × T × R``.  Entities are plain
strings at the data layer; the :class:`repro.tagging.folksonomy.Folksonomy`
container interns them into dense integer ids when numeric work begins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union


@dataclass(frozen=True, slots=True)
class TagAssignment:
    """A single ``(user, tag, resource)`` annotation event.

    Instances are hashable and order-comparable so collections of
    assignments can be deduplicated and stored in sets, mirroring the
    set-semantics of ``Y`` in the paper (Eq. 5 maps each distinct triple to
    a 1 in the tensor regardless of how many times it was observed).
    """

    user: str
    tag: str
    resource: str

    def as_tuple(self) -> Tuple[str, str, str]:
        """The assignment as a plain ``(user, tag, resource)`` tuple."""
        return (self.user, self.tag, self.resource)

    def with_tag(self, tag: str) -> "TagAssignment":
        """A copy of this assignment annotated with a different tag label."""
        return TagAssignment(user=self.user, tag=tag, resource=self.resource)

    def __lt__(self, other: "TagAssignment") -> bool:
        if not isinstance(other, TagAssignment):
            return NotImplemented
        return self.as_tuple() < other.as_tuple()


#: What the normalisation helpers accept: an assignment value object or a
#: plain ``(user, tag, resource)`` tuple of str()-coercible labels.
AssignmentLike = Union["TagAssignment", Tuple[str, str, str]]


def as_assignment(item: AssignmentLike) -> "TagAssignment":
    """Coerce one assignment-like value into a :class:`TagAssignment`."""
    if isinstance(item, TagAssignment):
        return item
    user, tag, resource = item
    return TagAssignment(user=str(user), tag=str(tag), resource=str(resource))


def normalize_assignments(
    items: Iterable[AssignmentLike],
) -> FrozenSet["TagAssignment"]:
    """Coerce and deduplicate assignment-like values (set semantics of ``Y``).

    The single definition of triple identity shared by
    :class:`~repro.tagging.folksonomy.Folksonomy` and
    :class:`~repro.tagging.delta.FolksonomyDelta` — the two must never
    disagree on which triples are equal.
    """
    return frozenset(as_assignment(item) for item in items)


@dataclass(frozen=True, slots=True)
class PostKey:
    """Identifies a *post*: one user's annotation of one resource.

    Posts group the tags a single user attached to a single resource; they
    are the unit several tagging systems (and the Bibsonomy dumps) use for
    export, and the unit the synthetic generator produces.
    """

    user: str
    resource: str

    def as_tuple(self) -> Tuple[str, str]:
        return (self.user, self.resource)

    def __lt__(self, other: "PostKey") -> bool:
        if not isinstance(other, PostKey):
            return NotImplemented
        return self.as_tuple() < other.as_tuple()
