"""Value objects describing the entities of a social tagging system.

The paper works with four entity types: users (taggers) ``U``, tags ``T``,
resources ``R`` and tag assignments ``Y ⊆ U × T × R``.  Entities are plain
strings at the data layer; the :class:`repro.tagging.folksonomy.Folksonomy`
container interns them into dense integer ids when numeric work begins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, slots=True)
class TagAssignment:
    """A single ``(user, tag, resource)`` annotation event.

    Instances are hashable and order-comparable so collections of
    assignments can be deduplicated and stored in sets, mirroring the
    set-semantics of ``Y`` in the paper (Eq. 5 maps each distinct triple to
    a 1 in the tensor regardless of how many times it was observed).
    """

    user: str
    tag: str
    resource: str

    def as_tuple(self) -> Tuple[str, str, str]:
        """The assignment as a plain ``(user, tag, resource)`` tuple."""
        return (self.user, self.tag, self.resource)

    def with_tag(self, tag: str) -> "TagAssignment":
        """A copy of this assignment annotated with a different tag label."""
        return TagAssignment(user=self.user, tag=tag, resource=self.resource)

    def __lt__(self, other: "TagAssignment") -> bool:
        if not isinstance(other, TagAssignment):
            return NotImplemented
        return self.as_tuple() < other.as_tuple()


@dataclass(frozen=True, slots=True)
class PostKey:
    """Identifies a *post*: one user's annotation of one resource.

    Posts group the tags a single user attached to a single resource; they
    are the unit several tagging systems (and the Bibsonomy dumps) use for
    export, and the unit the synthetic generator produces.
    """

    user: str
    resource: str

    def as_tuple(self) -> Tuple[str, str]:
        return (self.user, self.resource)

    def __lt__(self, other: "PostKey") -> bool:
        if not isinstance(other, PostKey):
            return NotImplemented
        return self.as_tuple() < other.as_tuple()
