"""Social tagging system substrate.

This subpackage models the data layer of a social tagging service
(Delicious, Bibsonomy, Last.fm in the paper): users annotate resources with
free-form tags, producing a set of ``(user, tag, resource)`` assignments
called a *folksonomy*.

* :mod:`repro.tagging.entities` — value objects for users, tags, resources
  and tag assignments.
* :mod:`repro.tagging.folksonomy` — the in-memory triple store with interned
  ids, per-dimension indexes and tensor/matrix export.
* :mod:`repro.tagging.delta` — incremental assignment deltas
  (:class:`FolksonomyDelta`) applied without rebuilding the interning state.
* :mod:`repro.tagging.cleaning` — the cleaning pipeline of Section VI-A
  (system-tag removal, lower-casing, iterative minimum-support filtering).
* :mod:`repro.tagging.io` — TSV / JSON-lines readers and writers.
* :mod:`repro.tagging.store` — directory-based persistence of datasets with
  their metadata and statistics.
* :mod:`repro.tagging.stats` — corpus statistics (Table II).
"""

from repro.tagging.entities import TagAssignment, PostKey
from repro.tagging.folksonomy import Folksonomy
from repro.tagging.delta import FolksonomyDelta, FolksonomyDeltaBuilder
from repro.tagging.cleaning import CleaningConfig, CleaningReport, clean_folksonomy
from repro.tagging.stats import DatasetStatistics, compute_statistics
from repro.tagging.io import (
    read_assignments_tsv,
    write_assignments_tsv,
    read_assignments_jsonl,
    write_assignments_jsonl,
)
from repro.tagging.store import FolksonomyStore

__all__ = [
    "TagAssignment",
    "PostKey",
    "Folksonomy",
    "FolksonomyDelta",
    "FolksonomyDeltaBuilder",
    "CleaningConfig",
    "CleaningReport",
    "clean_folksonomy",
    "DatasetStatistics",
    "compute_statistics",
    "read_assignments_tsv",
    "write_assignments_tsv",
    "read_assignments_jsonl",
    "write_assignments_jsonl",
    "FolksonomyStore",
]
