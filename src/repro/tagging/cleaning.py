"""Dataset cleaning pipeline (Section VI-A of the paper).

The paper cleans the three raw crawls in three steps before building the
tensor:

1. remove system-generated tags (``system:imported``, ``system:unfiled``, ...),
2. lower-case every tag,
3. iteratively drop users, tags and resources that appear in fewer than a
   minimum number of assignments (5 in the paper), until a fixed point is
   reached — the classic *p-core* style pruning also used by Jaschke et al.

:func:`clean_folksonomy` reproduces this pipeline and reports before/after
statistics so Table II can be regenerated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.tagging.entities import TagAssignment
from repro.tagging.folksonomy import Folksonomy
from repro.tagging.stats import DatasetStatistics, compute_statistics
from repro.utils.errors import ConfigurationError

#: Tag prefixes treated as system-generated and always removed.
DEFAULT_SYSTEM_TAG_PREFIXES: Tuple[str, ...] = ("system:", "imported:", "for:")

#: Exact tag labels treated as system-generated noise.
DEFAULT_SYSTEM_TAGS: Tuple[str, ...] = (
    "system:imported",
    "system:unfiled",
    "imported",
    "unfiled",
    "no-tag",
    "nolabel",
)


@dataclass(frozen=True)
class CleaningConfig:
    """Parameters of the cleaning pipeline.

    Attributes
    ----------
    min_assignments:
        Minimum number of assignments a user, tag or resource must appear in
        to be kept (the paper uses 5).
    lowercase:
        Whether tag labels are folded to lower case.
    strip_whitespace:
        Whether surrounding whitespace is stripped from tag labels.
    system_tag_prefixes / system_tags:
        Tags matching any of these prefixes or exact labels are removed
        before support counting.
    max_iterations:
        Safety bound on the iterative pruning loop.
    """

    min_assignments: int = 5
    lowercase: bool = True
    strip_whitespace: bool = True
    system_tag_prefixes: Tuple[str, ...] = DEFAULT_SYSTEM_TAG_PREFIXES
    system_tags: Tuple[str, ...] = DEFAULT_SYSTEM_TAGS
    max_iterations: int = 100

    def __post_init__(self) -> None:
        if self.min_assignments < 1:
            raise ConfigurationError(
                f"min_assignments must be >= 1, got {self.min_assignments}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )


@dataclass
class CleaningReport:
    """Before/after statistics and per-step bookkeeping of a cleaning run."""

    raw: DatasetStatistics
    cleaned: DatasetStatistics
    removed_system_assignments: int = 0
    pruning_iterations: int = 0
    removed_users: int = 0
    removed_tags: int = 0
    removed_resources: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """Human-readable one-paragraph summary of the run."""
        return (
            f"cleaning {self.raw.name}: |Y| {self.raw.num_assignments} -> "
            f"{self.cleaned.num_assignments} "
            f"(system-tag assignments removed: {self.removed_system_assignments}, "
            f"pruning iterations: {self.pruning_iterations}, "
            f"dropped users/tags/resources: {self.removed_users}/"
            f"{self.removed_tags}/{self.removed_resources})"
        )


def normalize_tag(tag: str, config: CleaningConfig) -> str:
    """Apply label normalisation (case folding, whitespace stripping)."""
    if config.strip_whitespace:
        tag = tag.strip()
    if config.lowercase:
        tag = tag.lower()
    return tag


def is_system_tag(tag: str, config: CleaningConfig) -> bool:
    """Whether ``tag`` is considered system-generated under ``config``."""
    lowered = tag.lower()
    if lowered in {t.lower() for t in config.system_tags}:
        return True
    return any(lowered.startswith(prefix) for prefix in config.system_tag_prefixes)


def clean_folksonomy(
    folksonomy: Folksonomy,
    config: Optional[CleaningConfig] = None,
) -> Tuple[Folksonomy, CleaningReport]:
    """Run the full cleaning pipeline and return the cleaned dataset.

    Returns
    -------
    (cleaned, report):
        ``cleaned`` is a new :class:`Folksonomy`; ``report`` records the raw
        and cleaned statistics plus what was removed at each stage.
    """
    config = config or CleaningConfig()
    raw_stats = compute_statistics(folksonomy, label="raw")

    normalized: List[TagAssignment] = []
    removed_system = 0
    for assignment in folksonomy.assignments:
        tag = normalize_tag(assignment.tag, config)
        if not tag or is_system_tag(tag, config):
            removed_system += 1
            continue
        normalized.append(TagAssignment(assignment.user, tag, assignment.resource))

    pruned, iterations = _prune_low_support(normalized, config)
    cleaned = Folksonomy(pruned, name=folksonomy.name)
    cleaned_stats = compute_statistics(cleaned, label="cleaned")

    report = CleaningReport(
        raw=raw_stats,
        cleaned=cleaned_stats,
        removed_system_assignments=removed_system,
        pruning_iterations=iterations,
        removed_users=raw_stats.num_users - cleaned_stats.num_users,
        removed_tags=raw_stats.num_tags - cleaned_stats.num_tags,
        removed_resources=raw_stats.num_resources - cleaned_stats.num_resources,
    )
    if not pruned:
        report.notes.append(
            "cleaning removed every assignment; consider lowering min_assignments"
        )
    return cleaned, report


def _prune_low_support(
    assignments: Sequence[TagAssignment],
    config: CleaningConfig,
) -> Tuple[List[TagAssignment], int]:
    """Iteratively drop low-support users/tags/resources until stable."""
    current = list(dict.fromkeys(assignments))  # dedupe, keep order
    iterations = 0
    for _ in range(config.max_iterations):
        iterations += 1
        user_counts: Counter = Counter()
        tag_counts: Counter = Counter()
        resource_counts: Counter = Counter()
        for a in current:
            user_counts[a.user] += 1
            tag_counts[a.tag] += 1
            resource_counts[a.resource] += 1

        keep_users = {u for u, c in user_counts.items() if c >= config.min_assignments}
        keep_tags = {t for t, c in tag_counts.items() if c >= config.min_assignments}
        keep_resources = {
            r for r, c in resource_counts.items() if c >= config.min_assignments
        }

        filtered = [
            a
            for a in current
            if a.user in keep_users
            and a.tag in keep_tags
            and a.resource in keep_resources
        ]
        if len(filtered) == len(current):
            break
        current = filtered
        if not current:
            break
    return current, iterations


def clean_assignments(
    assignments: Iterable[TagAssignment],
    config: Optional[CleaningConfig] = None,
    name: str = "dataset",
) -> Tuple[Folksonomy, CleaningReport]:
    """Convenience wrapper: build a folksonomy from raw triples and clean it."""
    return clean_folksonomy(Folksonomy(assignments, name=name), config=config)
