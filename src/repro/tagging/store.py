"""Directory-based persistence for folksonomy datasets.

A :class:`FolksonomyStore` manages a directory of named datasets.  Each
dataset is stored as

* ``<name>/assignments.tsv`` — the assignment log,
* ``<name>/metadata.json`` — dataset name, statistics and free-form metadata.

The store is what the example scripts and benchmarks use to cache generated
corpora between runs, playing the role of the crawled dumps the paper's
authors kept on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.tagging.folksonomy import Folksonomy
from repro.tagging.io import read_assignments_tsv, write_assignments_tsv
from repro.tagging.stats import compute_statistics
from repro.utils.errors import DataFormatError

PathLike = Union[str, Path]

_ASSIGNMENTS_FILE = "assignments.tsv"
_METADATA_FILE = "metadata.json"


@dataclass(frozen=True)
class DatasetRecord:
    """Metadata describing one stored dataset."""

    name: str
    num_users: int
    num_tags: int
    num_resources: int
    num_assignments: int
    metadata: Dict[str, object]


class FolksonomyStore:
    """Saves and loads folksonomies under a root directory."""

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def _dataset_dir(self, name: str) -> Path:
        safe = name.strip()
        if not safe or "/" in safe or safe.startswith("."):
            raise DataFormatError(f"invalid dataset name {safe!r}")
        return self._root / safe

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def save(
        self,
        folksonomy: Folksonomy,
        name: Optional[str] = None,
        metadata: Optional[Dict[str, object]] = None,
        overwrite: bool = True,
    ) -> DatasetRecord:
        """Persist ``folksonomy`` under ``name`` (defaults to its own name)."""
        name = name or folksonomy.name
        directory = self._dataset_dir(name)
        if directory.exists() and not overwrite:
            raise DataFormatError(f"dataset {name!r} already exists")
        directory.mkdir(parents=True, exist_ok=True)

        write_assignments_tsv(folksonomy.assignments, directory / _ASSIGNMENTS_FILE)
        stats = compute_statistics(folksonomy)
        record = DatasetRecord(
            name=name,
            num_users=stats.num_users,
            num_tags=stats.num_tags,
            num_resources=stats.num_resources,
            num_assignments=stats.num_assignments,
            metadata=dict(metadata or {}),
        )
        payload = {
            "name": record.name,
            "statistics": {
                "num_users": record.num_users,
                "num_tags": record.num_tags,
                "num_resources": record.num_resources,
                "num_assignments": record.num_assignments,
            },
            "metadata": record.metadata,
        }
        with (directory / _METADATA_FILE).open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        return record

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def exists(self, name: str) -> bool:
        directory = self._dataset_dir(name)
        return (directory / _ASSIGNMENTS_FILE).exists()

    def load(self, name: str) -> Folksonomy:
        """Load the dataset stored under ``name``."""
        directory = self._dataset_dir(name)
        assignments_path = directory / _ASSIGNMENTS_FILE
        if not assignments_path.exists():
            raise DataFormatError(f"no dataset named {name!r} in {self._root}")
        assignments = list(read_assignments_tsv(assignments_path))
        return Folksonomy(assignments, name=name)

    def describe(self, name: str) -> DatasetRecord:
        """Load only the metadata record of a stored dataset."""
        directory = self._dataset_dir(name)
        metadata_path = directory / _METADATA_FILE
        if not metadata_path.exists():
            raise DataFormatError(f"no metadata for dataset {name!r}")
        with metadata_path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        stats = payload.get("statistics", {})
        return DatasetRecord(
            name=payload.get("name", name),
            num_users=int(stats.get("num_users", 0)),
            num_tags=int(stats.get("num_tags", 0)),
            num_resources=int(stats.get("num_resources", 0)),
            num_assignments=int(stats.get("num_assignments", 0)),
            metadata=dict(payload.get("metadata", {})),
        )

    def list_datasets(self) -> List[str]:
        """Names of all datasets currently stored, sorted."""
        names = []
        for child in sorted(self._root.iterdir()):
            if child.is_dir() and (child / _ASSIGNMENTS_FILE).exists():
                names.append(child.name)
        return names

    def delete(self, name: str) -> None:
        """Remove a stored dataset (no error if it does not exist)."""
        directory = self._dataset_dir(name)
        if not directory.exists():
            return
        for child in directory.iterdir():
            child.unlink()
        directory.rmdir()

    def load_or_create(self, name: str, factory) -> Folksonomy:
        """Load ``name`` if present, otherwise build it with ``factory`` and save it.

        ``factory`` is a zero-argument callable returning a
        :class:`Folksonomy`; this is the caching hook used by benchmarks.
        """
        if self.exists(name):
            return self.load(name)
        folksonomy = factory()
        self.save(folksonomy, name=name)
        return folksonomy
