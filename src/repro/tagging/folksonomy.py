"""The in-memory folksonomy: users, tags, resources and their assignments.

:class:`Folksonomy` is the central data structure of the library.  It stores
the distinct labels of each dimension, interns them into dense integer ids,
maintains the per-dimension indexes that the rankers need (which tags a
resource carries, who used a tag on a resource, ...) and exports the numeric
representations used downstream:

* the third-order binary tensor ``F`` of Eq. 5 (``to_tensor``),
* the user-aggregated tag-resource count matrix of Fig. 3 (``to_tag_resource_matrix``),
* per-resource tag bags for the IR layer (``tag_bag``).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tagging.entities import TagAssignment
from repro.tensor.sparse import SparseTensor
from repro.utils.errors import ConfigurationError


class Folksonomy:
    """An immutable collection of tag assignments with fast lookups.

    Parameters
    ----------
    assignments:
        Any iterable of :class:`TagAssignment` or ``(user, tag, resource)``
        tuples.  Duplicates are collapsed (``Y`` is a set).
    name:
        Optional human-readable dataset name carried through reports.
    """

    def __init__(
        self,
        assignments: Iterable,
        name: str = "folksonomy",
    ) -> None:
        normalized: Set[TagAssignment] = set()
        for item in assignments:
            if isinstance(item, TagAssignment):
                normalized.add(item)
            else:
                user, tag, resource = item
                normalized.add(
                    TagAssignment(user=str(user), tag=str(tag), resource=str(resource))
                )
        self._name = name
        self._assignments: Tuple[TagAssignment, ...] = tuple(sorted(normalized))

        users = sorted({a.user for a in self._assignments})
        tags = sorted({a.tag for a in self._assignments})
        resources = sorted({a.resource for a in self._assignments})
        self._users = tuple(users)
        self._tags = tuple(tags)
        self._resources = tuple(resources)
        self._user_index = {label: i for i, label in enumerate(users)}
        self._tag_index = {label: i for i, label in enumerate(tags)}
        self._resource_index = {label: i for i, label in enumerate(resources)}

        tags_by_resource: Dict[str, Counter] = defaultdict(Counter)
        users_by_tag_resource: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        resources_by_tag: Dict[str, Set[str]] = defaultdict(set)
        tags_by_user: Dict[str, Set[str]] = defaultdict(set)
        resources_by_user: Dict[str, Set[str]] = defaultdict(set)
        assignment_count_by_user: Counter = Counter()
        assignment_count_by_tag: Counter = Counter()
        assignment_count_by_resource: Counter = Counter()

        for a in self._assignments:
            tags_by_resource[a.resource][a.tag] += 1
            users_by_tag_resource[(a.tag, a.resource)].add(a.user)
            resources_by_tag[a.tag].add(a.resource)
            tags_by_user[a.user].add(a.tag)
            resources_by_user[a.user].add(a.resource)
            assignment_count_by_user[a.user] += 1
            assignment_count_by_tag[a.tag] += 1
            assignment_count_by_resource[a.resource] += 1

        self._tags_by_resource = {r: dict(c) for r, c in tags_by_resource.items()}
        self._users_by_tag_resource = {
            key: frozenset(users) for key, users in users_by_tag_resource.items()
        }
        self._resources_by_tag = {t: frozenset(r) for t, r in resources_by_tag.items()}
        self._tags_by_user = {u: frozenset(t) for u, t in tags_by_user.items()}
        self._resources_by_user = {
            u: frozenset(r) for u, r in resources_by_user.items()
        }
        self._assignment_count_by_user = dict(assignment_count_by_user)
        self._assignment_count_by_tag = dict(assignment_count_by_tag)
        self._assignment_count_by_resource = dict(assignment_count_by_resource)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._name

    @property
    def users(self) -> Tuple[str, ...]:
        """Distinct user labels in deterministic (sorted) order."""
        return self._users

    @property
    def tags(self) -> Tuple[str, ...]:
        """Distinct tag labels in deterministic (sorted) order."""
        return self._tags

    @property
    def resources(self) -> Tuple[str, ...]:
        """Distinct resource labels in deterministic (sorted) order."""
        return self._resources

    @property
    def assignments(self) -> Tuple[TagAssignment, ...]:
        """All distinct assignments, sorted."""
        return self._assignments

    @property
    def num_users(self) -> int:
        return len(self._users)

    @property
    def num_tags(self) -> int:
        return len(self._tags)

    @property
    def num_resources(self) -> int:
        return len(self._resources)

    @property
    def num_assignments(self) -> int:
        return len(self._assignments)

    def __len__(self) -> int:
        return self.num_assignments

    def __iter__(self) -> Iterator[TagAssignment]:
        return iter(self._assignments)

    def __contains__(self, item) -> bool:
        if isinstance(item, TagAssignment):
            return item in set(self._assignments)
        if isinstance(item, tuple) and len(item) == 3:
            return TagAssignment(*map(str, item)) in set(self._assignments)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Folksonomy(name={self._name!r}, |U|={self.num_users}, "
            f"|T|={self.num_tags}, |R|={self.num_resources}, "
            f"|Y|={self.num_assignments})"
        )

    # ------------------------------------------------------------------ #
    # Id interning
    # ------------------------------------------------------------------ #
    def user_id(self, user: str) -> int:
        """Dense integer id of ``user`` (raises ``KeyError`` if unknown)."""
        return self._user_index[user]

    def tag_id(self, tag: str) -> int:
        """Dense integer id of ``tag`` (raises ``KeyError`` if unknown)."""
        return self._tag_index[tag]

    def resource_id(self, resource: str) -> int:
        """Dense integer id of ``resource`` (raises ``KeyError`` if unknown)."""
        return self._resource_index[resource]

    def has_tag(self, tag: str) -> bool:
        return tag in self._tag_index

    def has_resource(self, resource: str) -> bool:
        return resource in self._resource_index

    def has_user(self, user: str) -> bool:
        return user in self._user_index

    # ------------------------------------------------------------------ #
    # Relationship queries
    # ------------------------------------------------------------------ #
    def tags_of_resource(self, resource: str) -> Mapping[str, int]:
        """``tag -> number of distinct users`` who applied it to ``resource``.

        This is ``tags(r)`` of the Freq baseline with per-tag user counts.
        """
        return dict(self._tags_by_resource.get(resource, {}))

    def users_of(self, tag: str, resource: str) -> FrozenSet[str]:
        """``users(t, r)``: users who annotated ``resource`` with ``tag``."""
        return self._users_by_tag_resource.get((tag, resource), frozenset())

    def resources_of_tag(self, tag: str) -> FrozenSet[str]:
        """All resources that carry ``tag`` at least once."""
        return self._resources_by_tag.get(tag, frozenset())

    def tags_of_user(self, user: str) -> FrozenSet[str]:
        """All tags ``user`` has ever applied."""
        return self._tags_by_user.get(user, frozenset())

    def resources_of_user(self, user: str) -> FrozenSet[str]:
        """All resources ``user`` has annotated."""
        return self._resources_by_user.get(user, frozenset())

    def tag_bag(self, resource: str) -> Dict[str, int]:
        """Bag-of-tags of a resource: tag -> occurrence count (user votes)."""
        return dict(self._tags_by_resource.get(resource, {}))

    def assignment_counts(self) -> Tuple[Dict[str, int], Dict[str, int], Dict[str, int]]:
        """Per-user, per-tag and per-resource assignment counts."""
        return (
            dict(self._assignment_count_by_user),
            dict(self._assignment_count_by_tag),
            dict(self._assignment_count_by_resource),
        )

    # ------------------------------------------------------------------ #
    # Numeric exports
    # ------------------------------------------------------------------ #
    def to_tensor(self) -> SparseTensor:
        """The binary third-order tensor ``F`` of Eq. 5.

        Mode order is ``(users, tags, resources)`` as in the paper, so the
        mode-1 slices ``F[:, t, :]`` are the user-resource feature matrices
        of individual tags.
        """
        if not self._assignments:
            raise ConfigurationError("cannot build a tensor from an empty folksonomy")
        coords = np.empty((3, len(self._assignments)), dtype=np.int64)
        for column, a in enumerate(self._assignments):
            coords[0, column] = self._user_index[a.user]
            coords[1, column] = self._tag_index[a.tag]
            coords[2, column] = self._resource_index[a.resource]
        values = np.ones(len(self._assignments), dtype=float)
        shape = (self.num_users, self.num_tags, self.num_resources)
        return SparseTensor(coords, values, shape)

    def to_tag_resource_matrix(self) -> sp.csr_matrix:
        """User-aggregated tag-resource count matrix (Fig. 3).

        Entry ``(t, r)`` is the number of distinct users who assigned tag
        ``t`` to resource ``r``; this is the input of the BOW and LSI
        baselines.
        """
        rows = []
        cols = []
        values = []
        for (tag, resource), users in self._users_by_tag_resource.items():
            rows.append(self._tag_index[tag])
            cols.append(self._resource_index[resource])
            values.append(float(len(users)))
        matrix = sp.coo_matrix(
            (values, (rows, cols)), shape=(self.num_tags, self.num_resources)
        )
        return matrix.tocsr()

    def to_user_tag_matrix(self) -> sp.csr_matrix:
        """User-tag count matrix (how many resources each user tagged with t)."""
        pair_counts: Counter = Counter()
        for a in self._assignments:
            pair_counts[(a.user, a.tag)] += 1
        rows = [self._user_index[u] for (u, _t) in pair_counts]
        cols = [self._tag_index[t] for (_u, t) in pair_counts]
        values = [float(c) for c in pair_counts.values()]
        matrix = sp.coo_matrix(
            (values, (rows, cols)), shape=(self.num_users, self.num_tags)
        )
        return matrix.tocsr()

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def filter(
        self,
        keep_users: Optional[Set[str]] = None,
        keep_tags: Optional[Set[str]] = None,
        keep_resources: Optional[Set[str]] = None,
        name: Optional[str] = None,
    ) -> "Folksonomy":
        """A new folksonomy restricted to the given label sets.

        ``None`` keeps a dimension unrestricted.  Labels of the other
        dimensions that lose all their assignments disappear automatically
        because the new instance recomputes its vocabularies.
        """
        kept = [
            a
            for a in self._assignments
            if (keep_users is None or a.user in keep_users)
            and (keep_tags is None or a.tag in keep_tags)
            and (keep_resources is None or a.resource in keep_resources)
        ]
        return Folksonomy(kept, name=name or self._name)

    def map_tags(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Folksonomy":
        """Relabel tags through ``mapping`` (labels not present map to themselves)."""
        relabeled = [
            TagAssignment(a.user, mapping.get(a.tag, a.tag), a.resource)
            for a in self._assignments
        ]
        return Folksonomy(relabeled, name=name or self._name)

    def merge(self, other: "Folksonomy", name: Optional[str] = None) -> "Folksonomy":
        """Union of two folksonomies."""
        return Folksonomy(
            list(self._assignments) + list(other.assignments),
            name=name or self._name,
        )

    def sample_resources(
        self, resources: Sequence[str], name: Optional[str] = None
    ) -> "Folksonomy":
        """Restrict to a subset of resources given as a sequence."""
        return self.filter(keep_resources=set(resources), name=name)
