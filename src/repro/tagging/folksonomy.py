"""The in-memory folksonomy: users, tags, resources and their assignments.

:class:`Folksonomy` is the central data structure of the library.  It stores
the distinct labels of each dimension, interns them into dense integer ids,
maintains the per-dimension indexes that the rankers need (which tags a
resource carries, who used a tag on a resource, ...) and exports the numeric
representations used downstream:

* the third-order binary tensor ``F`` of Eq. 5 (``to_tensor``),
* the user-aggregated tag-resource count matrix of Fig. 3 (``to_tag_resource_matrix``),
* per-resource tag bags for the IR layer (``tag_bag``).
"""

from __future__ import annotations

import heapq
from collections import Counter, defaultdict
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
import scipy.sparse as sp

from repro.tagging.entities import TagAssignment, normalize_assignments
from repro.tensor.sparse import SparseTensor
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tagging.delta import FolksonomyDelta


class Folksonomy:
    """An immutable collection of tag assignments with fast lookups.

    Parameters
    ----------
    assignments:
        Any iterable of :class:`TagAssignment` or ``(user, tag, resource)``
        tuples.  Duplicates are collapsed (``Y`` is a set).
    name:
        Optional human-readable dataset name carried through reports.
    """

    def __init__(
        self,
        assignments: Iterable,
        name: str = "folksonomy",
    ) -> None:
        normalized = normalize_assignments(assignments)
        self._name = name
        self._assignments: Tuple[TagAssignment, ...] = tuple(sorted(normalized))
        self._assignment_set: FrozenSet[TagAssignment] = normalized

        users = sorted({a.user for a in self._assignments})
        tags = sorted({a.tag for a in self._assignments})
        resources = sorted({a.resource for a in self._assignments})
        self._users = tuple(users)
        self._tags = tuple(tags)
        self._resources = tuple(resources)
        self._user_index = {label: i for i, label in enumerate(users)}
        self._tag_index = {label: i for i, label in enumerate(tags)}
        self._resource_index = {label: i for i, label in enumerate(resources)}

        tags_by_resource: Dict[str, Counter] = defaultdict(Counter)
        users_by_tag_resource: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        resources_by_tag: Dict[str, Set[str]] = defaultdict(set)
        tags_by_user: Dict[str, Set[str]] = defaultdict(set)
        resources_by_user: Dict[str, Set[str]] = defaultdict(set)
        assignment_count_by_user: Counter = Counter()
        assignment_count_by_tag: Counter = Counter()
        assignment_count_by_resource: Counter = Counter()
        count_by_user_tag: Counter = Counter()
        count_by_user_resource: Counter = Counter()

        for a in self._assignments:
            tags_by_resource[a.resource][a.tag] += 1
            users_by_tag_resource[(a.tag, a.resource)].add(a.user)
            resources_by_tag[a.tag].add(a.resource)
            tags_by_user[a.user].add(a.tag)
            resources_by_user[a.user].add(a.resource)
            assignment_count_by_user[a.user] += 1
            assignment_count_by_tag[a.tag] += 1
            assignment_count_by_resource[a.resource] += 1
            count_by_user_tag[(a.user, a.tag)] += 1
            count_by_user_resource[(a.user, a.resource)] += 1

        self._tags_by_resource = {r: dict(c) for r, c in tags_by_resource.items()}
        self._users_by_tag_resource = {
            key: frozenset(users) for key, users in users_by_tag_resource.items()
        }
        self._resources_by_tag = {t: frozenset(r) for t, r in resources_by_tag.items()}
        self._tags_by_user = {u: frozenset(t) for u, t in tags_by_user.items()}
        self._resources_by_user = {
            u: frozenset(r) for u, r in resources_by_user.items()
        }
        self._assignment_count_by_user = dict(assignment_count_by_user)
        self._assignment_count_by_tag = dict(assignment_count_by_tag)
        self._assignment_count_by_resource = dict(assignment_count_by_resource)
        self._count_by_user_tag = dict(count_by_user_tag)
        self._count_by_user_resource = dict(count_by_user_resource)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._name

    @property
    def users(self) -> Tuple[str, ...]:
        """Distinct user labels in deterministic (sorted) order."""
        return self._users

    @property
    def tags(self) -> Tuple[str, ...]:
        """Distinct tag labels in deterministic (sorted) order."""
        return self._tags

    @property
    def resources(self) -> Tuple[str, ...]:
        """Distinct resource labels in deterministic (sorted) order."""
        return self._resources

    @property
    def assignments(self) -> Tuple[TagAssignment, ...]:
        """All distinct assignments, sorted."""
        return self._assignments

    @property
    def num_users(self) -> int:
        return len(self._users)

    @property
    def num_tags(self) -> int:
        return len(self._tags)

    @property
    def num_resources(self) -> int:
        return len(self._resources)

    @property
    def num_assignments(self) -> int:
        return len(self._assignments)

    def __len__(self) -> int:
        return self.num_assignments

    def __iter__(self) -> Iterator[TagAssignment]:
        return iter(self._assignments)

    def __contains__(self, item) -> bool:
        if isinstance(item, TagAssignment):
            return item in self._assignment_set
        if isinstance(item, tuple) and len(item) == 3:
            return TagAssignment(*map(str, item)) in self._assignment_set
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Folksonomy(name={self._name!r}, |U|={self.num_users}, "
            f"|T|={self.num_tags}, |R|={self.num_resources}, "
            f"|Y|={self.num_assignments})"
        )

    # ------------------------------------------------------------------ #
    # Id interning
    # ------------------------------------------------------------------ #
    def user_id(self, user: str) -> int:
        """Dense integer id of ``user`` (raises ``KeyError`` if unknown)."""
        return self._user_index[user]

    def tag_id(self, tag: str) -> int:
        """Dense integer id of ``tag`` (raises ``KeyError`` if unknown)."""
        return self._tag_index[tag]

    def resource_id(self, resource: str) -> int:
        """Dense integer id of ``resource`` (raises ``KeyError`` if unknown)."""
        return self._resource_index[resource]

    def has_tag(self, tag: str) -> bool:
        return tag in self._tag_index

    def has_resource(self, resource: str) -> bool:
        return resource in self._resource_index

    def has_user(self, user: str) -> bool:
        return user in self._user_index

    # ------------------------------------------------------------------ #
    # Relationship queries
    # ------------------------------------------------------------------ #
    def tags_of_resource(self, resource: str) -> Mapping[str, int]:
        """``tag -> number of distinct users`` who applied it to ``resource``.

        This is ``tags(r)`` of the Freq baseline with per-tag user counts.
        """
        return dict(self._tags_by_resource.get(resource, {}))

    def users_of(self, tag: str, resource: str) -> FrozenSet[str]:
        """``users(t, r)``: users who annotated ``resource`` with ``tag``."""
        return self._users_by_tag_resource.get((tag, resource), frozenset())

    def resources_of_tag(self, tag: str) -> FrozenSet[str]:
        """All resources that carry ``tag`` at least once."""
        return self._resources_by_tag.get(tag, frozenset())

    def tags_of_user(self, user: str) -> FrozenSet[str]:
        """All tags ``user`` has ever applied."""
        return self._tags_by_user.get(user, frozenset())

    def resources_of_user(self, user: str) -> FrozenSet[str]:
        """All resources ``user`` has annotated."""
        return self._resources_by_user.get(user, frozenset())

    def tag_bag(self, resource: str) -> Dict[str, int]:
        """Bag-of-tags of a resource: tag -> occurrence count (user votes)."""
        return dict(self._tags_by_resource.get(resource, {}))

    def assignments_of_resource(self, resource: str) -> Tuple[TagAssignment, ...]:
        """All assignments annotating ``resource``, sorted."""
        found = [
            TagAssignment(user=user, tag=tag, resource=resource)
            for tag in self._tags_by_resource.get(resource, {})
            for user in self._users_by_tag_resource.get((tag, resource), ())
        ]
        return tuple(sorted(found))

    def assignment_counts(self) -> Tuple[Dict[str, int], Dict[str, int], Dict[str, int]]:
        """Per-user, per-tag and per-resource assignment counts."""
        return (
            dict(self._assignment_count_by_user),
            dict(self._assignment_count_by_tag),
            dict(self._assignment_count_by_resource),
        )

    # ------------------------------------------------------------------ #
    # Numeric exports
    # ------------------------------------------------------------------ #
    def to_tensor(self) -> SparseTensor:
        """The binary third-order tensor ``F`` of Eq. 5.

        Mode order is ``(users, tags, resources)`` as in the paper, so the
        mode-1 slices ``F[:, t, :]`` are the user-resource feature matrices
        of individual tags.
        """
        if not self._assignments:
            raise ConfigurationError("cannot build a tensor from an empty folksonomy")
        coords = np.empty((3, len(self._assignments)), dtype=np.int64)
        for column, a in enumerate(self._assignments):
            coords[0, column] = self._user_index[a.user]
            coords[1, column] = self._tag_index[a.tag]
            coords[2, column] = self._resource_index[a.resource]
        values = np.ones(len(self._assignments), dtype=float)
        shape = (self.num_users, self.num_tags, self.num_resources)
        return SparseTensor(coords, values, shape)

    def to_tag_resource_matrix(self) -> sp.csr_matrix:
        """User-aggregated tag-resource count matrix (Fig. 3).

        Entry ``(t, r)`` is the number of distinct users who assigned tag
        ``t`` to resource ``r``; this is the input of the BOW and LSI
        baselines.
        """
        rows = []
        cols = []
        values = []
        for (tag, resource), users in self._users_by_tag_resource.items():
            rows.append(self._tag_index[tag])
            cols.append(self._resource_index[resource])
            values.append(float(len(users)))
        matrix = sp.coo_matrix(
            (values, (rows, cols)), shape=(self.num_tags, self.num_resources)
        )
        return matrix.tocsr()

    def to_user_tag_matrix(self) -> sp.csr_matrix:
        """User-tag count matrix (how many resources each user tagged with t)."""
        pair_counts: Counter = Counter()
        for a in self._assignments:
            pair_counts[(a.user, a.tag)] += 1
        rows = [self._user_index[u] for (u, _t) in pair_counts]
        cols = [self._tag_index[t] for (_u, t) in pair_counts]
        values = [float(c) for c in pair_counts.values()]
        matrix = sp.coo_matrix(
            (values, (rows, cols)), shape=(self.num_users, self.num_tags)
        )
        return matrix.tocsr()

    # ------------------------------------------------------------------ #
    # Incremental updates
    # ------------------------------------------------------------------ #
    def apply_delta(
        self, delta: "FolksonomyDelta", name: Optional[str] = None
    ) -> "Folksonomy":
        """A new folksonomy with ``delta`` applied, built incrementally.

        Equivalent to ``Folksonomy(set(self.assignments) | added - removed)``
        but O(|delta| + |touched labels|) for the interning and relationship
        indexes: untouched index entries are shared with this instance (all
        values are immutable), only entries reachable from the delta's
        triples are recomputed.  The flat assignment tuple/set are re-merged
        in one linear pass (no re-sorting, no per-assignment re-indexing).
        Additions already present and removals already absent are ignored.
        """
        current = self._assignment_set
        to_add = sorted(a for a in delta.added if a not in current)
        to_remove = {a for a in delta.removed if a in current}
        if not to_add and not to_remove:
            return self if name is None or name == self._name else Folksonomy(
                self._assignments, name=name
            )

        new = object.__new__(Folksonomy)
        new._name = name or self._name
        survivors: Iterable[TagAssignment] = (
            (a for a in self._assignments if a not in to_remove)
            if to_remove
            else self._assignments
        )
        new._assignments = tuple(
            heapq.merge(survivors, to_add) if to_add else survivors
        )
        new._assignment_set = current.difference(to_remove).union(to_add)

        tags_by_resource = dict(self._tags_by_resource)
        users_by_tag_resource = dict(self._users_by_tag_resource)
        resources_by_tag = dict(self._resources_by_tag)
        tags_by_user = dict(self._tags_by_user)
        resources_by_user = dict(self._resources_by_user)
        count_by_user = dict(self._assignment_count_by_user)
        count_by_tag = dict(self._assignment_count_by_tag)
        count_by_resource = dict(self._assignment_count_by_resource)
        count_by_user_tag = dict(self._count_by_user_tag)
        count_by_user_resource = dict(self._count_by_user_resource)

        def bump(counter: Dict, key, step: int) -> int:
            value = counter.get(key, 0) + step
            if value:
                counter[key] = value
            else:
                counter.pop(key, None)
            return value

        def patch_set(index: Dict, key, member, present: bool) -> None:
            members = index.get(key, frozenset())
            members = members | {member} if present else members - {member}
            if members:
                index[key] = members
            else:
                index.pop(key, None)

        for a in to_remove:
            bag = dict(tags_by_resource[a.resource])
            if bag[a.tag] > 1:
                bag[a.tag] -= 1
            else:
                del bag[a.tag]
            if bag:
                tags_by_resource[a.resource] = bag
            else:
                del tags_by_resource[a.resource]
            patch_set(users_by_tag_resource, (a.tag, a.resource), a.user, False)
            if (a.tag, a.resource) not in users_by_tag_resource:
                patch_set(resources_by_tag, a.tag, a.resource, False)
            if bump(count_by_user_tag, (a.user, a.tag), -1) == 0:
                patch_set(tags_by_user, a.user, a.tag, False)
            if bump(count_by_user_resource, (a.user, a.resource), -1) == 0:
                patch_set(resources_by_user, a.user, a.resource, False)
            bump(count_by_user, a.user, -1)
            bump(count_by_tag, a.tag, -1)
            bump(count_by_resource, a.resource, -1)

        for a in to_add:
            bag = dict(tags_by_resource.get(a.resource, {}))
            bag[a.tag] = bag.get(a.tag, 0) + 1
            tags_by_resource[a.resource] = bag
            patch_set(users_by_tag_resource, (a.tag, a.resource), a.user, True)
            patch_set(resources_by_tag, a.tag, a.resource, True)
            if bump(count_by_user_tag, (a.user, a.tag), 1) == 1:
                patch_set(tags_by_user, a.user, a.tag, True)
            if bump(count_by_user_resource, (a.user, a.resource), 1) == 1:
                patch_set(resources_by_user, a.user, a.resource, True)
            bump(count_by_user, a.user, 1)
            bump(count_by_tag, a.tag, 1)
            bump(count_by_resource, a.resource, 1)

        new._tags_by_resource = tags_by_resource
        new._users_by_tag_resource = users_by_tag_resource
        new._resources_by_tag = resources_by_tag
        new._tags_by_user = tags_by_user
        new._resources_by_user = resources_by_user
        new._assignment_count_by_user = count_by_user
        new._assignment_count_by_tag = count_by_tag
        new._assignment_count_by_resource = count_by_resource
        new._count_by_user_tag = count_by_user_tag
        new._count_by_user_resource = count_by_user_resource

        for labels, counts, vocab_attr, index_attr in (
            (self._users, count_by_user, "_users", "_user_index"),
            (self._tags, count_by_tag, "_tags", "_tag_index"),
            (self._resources, count_by_resource, "_resources", "_resource_index"),
        ):
            if len(labels) == len(counts) and all(label in counts for label in labels):
                setattr(new, vocab_attr, labels)
                setattr(new, index_attr, getattr(self, index_attr))
            else:
                relabeled = tuple(sorted(counts))
                setattr(new, vocab_attr, relabeled)
                setattr(
                    new, index_attr, {label: i for i, label in enumerate(relabeled)}
                )
        return new

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def filter(
        self,
        keep_users: Optional[Set[str]] = None,
        keep_tags: Optional[Set[str]] = None,
        keep_resources: Optional[Set[str]] = None,
        name: Optional[str] = None,
    ) -> "Folksonomy":
        """A new folksonomy restricted to the given label sets.

        ``None`` keeps a dimension unrestricted.  Labels of the other
        dimensions that lose all their assignments disappear automatically
        because the new instance recomputes its vocabularies.
        """
        kept = [
            a
            for a in self._assignments
            if (keep_users is None or a.user in keep_users)
            and (keep_tags is None or a.tag in keep_tags)
            and (keep_resources is None or a.resource in keep_resources)
        ]
        return Folksonomy(kept, name=name or self._name)

    def map_tags(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Folksonomy":
        """Relabel tags through ``mapping`` (labels not present map to themselves)."""
        relabeled = [
            TagAssignment(a.user, mapping.get(a.tag, a.tag), a.resource)
            for a in self._assignments
        ]
        return Folksonomy(relabeled, name=name or self._name)

    def merge(self, other: "Folksonomy", name: Optional[str] = None) -> "Folksonomy":
        """Union of two folksonomies."""
        return Folksonomy(
            list(self._assignments) + list(other.assignments),
            name=name or self._name,
        )

    def sample_resources(
        self, resources: Sequence[str], name: Optional[str] = None
    ) -> "Folksonomy":
        """Restrict to a subset of resources given as a sequence."""
        return self.filter(keep_resources=set(resources), name=name)
