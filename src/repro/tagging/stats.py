"""Corpus statistics (the quantities reported in Table II)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.tagging.folksonomy import Folksonomy


@dataclass(frozen=True)
class DatasetStatistics:
    """The |U|, |T|, |R|, |Y| summary of a folksonomy plus derived figures."""

    name: str
    label: str
    num_users: int
    num_tags: int
    num_resources: int
    num_assignments: int

    @property
    def tensor_cells(self) -> int:
        """Number of cells of the full third-order tensor ``F``."""
        return self.num_users * self.num_tags * self.num_resources

    @property
    def density(self) -> float:
        """Fraction of tensor cells that are non-zero."""
        cells = self.tensor_cells
        return self.num_assignments / cells if cells else 0.0

    @property
    def mean_tags_per_resource(self) -> float:
        if self.num_resources == 0:
            return 0.0
        return self.num_assignments / self.num_resources

    @property
    def mean_assignments_per_user(self) -> float:
        if self.num_users == 0:
            return 0.0
        return self.num_assignments / self.num_users

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form used by the reporting layer."""
        return {
            "name": self.name,
            "label": self.label,
            "|U|": self.num_users,
            "|T|": self.num_tags,
            "|R|": self.num_resources,
            "|Y|": self.num_assignments,
            "density": self.density,
        }

    def as_row(self) -> Dict[str, object]:
        """Row dictionary matching the layout of Table II."""
        return {
            "Dataset": self.name,
            "Variant": self.label,
            "|U|": self.num_users,
            "|T|": self.num_tags,
            "|R|": self.num_resources,
            "|Y|": self.num_assignments,
        }


def compute_statistics(folksonomy: Folksonomy, label: str = "") -> DatasetStatistics:
    """Compute the Table II statistics for a folksonomy."""
    return DatasetStatistics(
        name=folksonomy.name,
        label=label,
        num_users=folksonomy.num_users,
        num_tags=folksonomy.num_tags,
        num_resources=folksonomy.num_resources,
        num_assignments=folksonomy.num_assignments,
    )


def tag_frequency_distribution(folksonomy: Folksonomy) -> np.ndarray:
    """Sorted (descending) per-tag assignment counts.

    Useful for checking that synthetic corpora exhibit the heavy-tailed tag
    usage real folksonomies have.
    """
    _, tag_counts, _ = folksonomy.assignment_counts()
    return np.array(sorted(tag_counts.values(), reverse=True), dtype=float)


def gini_coefficient(counts: np.ndarray) -> float:
    """Gini coefficient of a count distribution (0 = uniform, 1 = maximally skewed).

    Used by dataset-generator tests to assert the synthetic corpora are
    realistically skewed rather than uniform.
    """
    counts = np.sort(np.asarray(counts, dtype=float))
    if counts.size == 0:
        return 0.0
    total = counts.sum()
    if total <= 0:
        return 0.0
    n = counts.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * counts) / (n * total)) - (n + 1) / n)
