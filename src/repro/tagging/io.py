"""Readers and writers for tag-assignment logs.

Two interchange formats are supported:

* **TSV** — one assignment per line, ``user<TAB>tag<TAB>resource``, the
  format most public folksonomy dumps (and the paper's Fig. 2a table) use.
* **JSON lines** — one JSON object per line with ``user``/``tag``/``resource``
  keys, convenient when labels may contain tabs or newlines.

Both readers are generators so arbitrarily large logs can be streamed, and
both raise :class:`~repro.utils.errors.DataFormatError` with the offending
line number on malformed input.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.tagging.entities import TagAssignment
from repro.utils.errors import DataFormatError

PathLike = Union[str, Path]


def read_assignments_tsv(path: PathLike) -> Iterator[TagAssignment]:
    """Stream assignments from a tab-separated file.

    Blank lines and lines starting with ``#`` are skipped.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.rstrip("\n")
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split("\t")
            if len(parts) != 3:
                raise DataFormatError(
                    f"{path}:{line_number}: expected 3 tab-separated fields, "
                    f"got {len(parts)}"
                )
            user, tag, resource = parts
            if not user or not tag or not resource:
                raise DataFormatError(
                    f"{path}:{line_number}: empty user, tag or resource field"
                )
            yield TagAssignment(user=user, tag=tag, resource=resource)


def write_assignments_tsv(
    assignments: Iterable[TagAssignment], path: PathLike
) -> int:
    """Write assignments to a TSV file; returns the number of lines written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# user\ttag\tresource\n")
        for assignment in assignments:
            _check_writable_labels(assignment, separator="\t")
            handle.write(
                f"{assignment.user}\t{assignment.tag}\t{assignment.resource}\n"
            )
            count += 1
    return count


def read_assignments_jsonl(path: PathLike) -> Iterator[TagAssignment]:
    """Stream assignments from a JSON-lines file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise DataFormatError(
                    f"{path}:{line_number}: invalid JSON ({exc})"
                ) from exc
            try:
                yield TagAssignment(
                    user=str(record["user"]),
                    tag=str(record["tag"]),
                    resource=str(record["resource"]),
                )
            except (KeyError, TypeError) as exc:
                raise DataFormatError(
                    f"{path}:{line_number}: record must contain "
                    "'user', 'tag' and 'resource' keys"
                ) from exc


def write_assignments_jsonl(
    assignments: Iterable[TagAssignment], path: PathLike
) -> int:
    """Write assignments to a JSON-lines file; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for assignment in assignments:
            record = {
                "user": assignment.user,
                "tag": assignment.tag,
                "resource": assignment.resource,
            }
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            count += 1
    return count


def _check_writable_labels(assignment: TagAssignment, separator: str) -> None:
    for label in assignment.as_tuple():
        if separator in label or "\n" in label:
            raise DataFormatError(
                f"label {label!r} contains the field separator or a newline; "
                "use the JSON-lines format instead"
            )
