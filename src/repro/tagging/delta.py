"""Incremental folksonomy updates: deltas of tag assignments.

A :class:`FolksonomyDelta` is an immutable batch of assignment additions and
removals — the unit of change flowing through the incremental serving path
(``Folksonomy.apply_delta`` → ``OfflineIndex.apply_delta`` →
``SearchEngine.add_resources`` / ``remove_resources`` / ``update_resource``).
Deltas are what a tagging front-end would ship to the serving tier between
two full offline refits: the expensive tensor analysis stays offline while
corpus changes fold into the *existing* latent model (LSI-style fold-in).

:class:`FolksonomyDeltaBuilder` accumulates changes imperatively and
normalises them into a delta; :meth:`FolksonomyDelta.diff` recovers the delta
between two folksonomy snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Tuple

from repro.tagging.entities import (
    AssignmentLike,
    TagAssignment,
    as_assignment,
    normalize_assignments,
)
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tagging.folksonomy import Folksonomy


def _normalize(items: Iterable[AssignmentLike]) -> Tuple[TagAssignment, ...]:
    return tuple(sorted(normalize_assignments(items)))


@dataclass(frozen=True)
class FolksonomyDelta:
    """An immutable batch of assignment additions and removals.

    Attributes
    ----------
    added / removed:
        Distinct, sorted assignments to insert into / delete from the
        folksonomy.  The same triple may not appear on both sides.
    """

    added: Tuple[TagAssignment, ...] = ()
    removed: Tuple[TagAssignment, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "added", _normalize(self.added))
        object.__setattr__(self, "removed", _normalize(self.removed))
        overlap = set(self.added) & set(self.removed)
        if overlap:
            sample = sorted(overlap)[0]
            raise ConfigurationError(
                f"delta both adds and removes {sample.as_tuple()!r} "
                f"({len(overlap)} overlapping assignments)"
            )

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    @property
    def touched_resources(self) -> Tuple[str, ...]:
        """Resources whose tag bags this delta modifies, sorted."""
        return tuple(
            sorted({a.resource for a in self.added} | {a.resource for a in self.removed})
        )

    def inverse(self) -> "FolksonomyDelta":
        """The delta that undoes this one."""
        return FolksonomyDelta(added=self.removed, removed=self.added)

    @classmethod
    def diff(cls, before: "Folksonomy", after: "Folksonomy") -> "FolksonomyDelta":
        """The delta turning ``before`` into ``after``."""
        old = set(before.assignments)
        new = set(after.assignments)
        return cls(added=tuple(new - old), removed=tuple(old - new))


class FolksonomyDeltaBuilder:
    """Accumulates assignment changes and builds a :class:`FolksonomyDelta`.

    For conflicting calls on the same triple the last call wins (an ``add``
    after a ``remove`` leaves a pure addition and vice versa), so a builder
    can replay an event stream without pre-deduplication; applying the
    resulting delta is idempotent with respect to the base corpus because
    ``apply_delta`` ignores already-present additions and absent removals.
    """

    def __init__(self) -> None:
        self._added: set = set()
        self._removed: set = set()

    def add(self, user: str, tag: str, resource: str) -> "FolksonomyDeltaBuilder":
        """Record one new ``(user, tag, resource)`` assignment."""
        assignment = as_assignment((user, tag, resource))
        self._removed.discard(assignment)
        self._added.add(assignment)
        return self

    def remove(self, user: str, tag: str, resource: str) -> "FolksonomyDeltaBuilder":
        """Record the deletion of one assignment."""
        assignment = as_assignment((user, tag, resource))
        self._added.discard(assignment)
        self._removed.add(assignment)
        return self

    def add_resource(
        self, resource: str, tags_by_user: Mapping[str, Iterable[str]]
    ) -> "FolksonomyDeltaBuilder":
        """Record a whole new resource: ``user -> tags`` they applied."""
        for user, tags in tags_by_user.items():
            for tag in tags:
                self.add(user, tag, resource)
        return self

    def remove_resource(
        self, folksonomy: "Folksonomy", resource: str
    ) -> "FolksonomyDeltaBuilder":
        """Record the removal of every assignment ``resource`` carries."""
        for assignment in folksonomy.assignments_of_resource(resource):
            self.remove(*assignment.as_tuple())
        return self

    def __len__(self) -> int:
        return len(self._added) + len(self._removed)

    def build(self) -> FolksonomyDelta:
        """Normalise the accumulated changes into an immutable delta."""
        return FolksonomyDelta(added=tuple(self._added), removed=tuple(self._removed))
