"""A rooted IS-A taxonomy over tags (the WordNet substitute).

The taxonomy has four levels below the root::

    root ─ domain ─ aspect ─ concept ─ surface tag (leaf)

It is built from the generator's :class:`~repro.datasets.vocabulary.Vocabulary`,
i.e. from latent structure the ranking methods never see, so it can play the
"external referee" role WordNet plays in the paper's Table III experiment.
Polysemous tags appear as multiple leaves (one per concept), just as a
polysemous word has multiple WordNet synsets.

Corpus frequencies can be attached to the leaves and propagated upward to
compute Resnik information content, which the Jiang-Conrath distance in
:mod:`repro.semantics.jcn` consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.datasets.vocabulary import Vocabulary
from repro.utils.errors import ConfigurationError


@dataclass
class TaxonomyNode:
    """One node of the taxonomy tree."""

    node_id: int
    name: str
    parent_id: Optional[int]
    depth: int
    children: List[int] = field(default_factory=list)
    #: corpus frequency mass (own + descendants), filled by set_corpus_counts
    frequency: float = 0.0

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class Taxonomy:
    """A tree of :class:`TaxonomyNode` with tag leaves and IC support."""

    def __init__(self) -> None:
        self._nodes: Dict[int, TaxonomyNode] = {}
        self._root_id: Optional[int] = None
        self._name_index: Dict[str, int] = {}
        self._tag_leaves: Dict[str, List[int]] = {}
        self._counts_attached = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str, parent: Optional[str] = None) -> TaxonomyNode:
        """Add a node; ``parent=None`` creates (or returns) the root."""
        if parent is None:
            if self._root_id is not None:
                return self._nodes[self._root_id]
            node = TaxonomyNode(node_id=0, name=name, parent_id=None, depth=0)
            self._nodes[0] = node
            self._root_id = 0
            self._name_index[name] = 0
            return node
        if parent not in self._name_index:
            raise ConfigurationError(f"unknown parent node {parent!r}")
        if name in self._name_index:
            return self._nodes[self._name_index[name]]
        parent_id = self._name_index[parent]
        node_id = len(self._nodes)
        node = TaxonomyNode(
            node_id=node_id,
            name=name,
            parent_id=parent_id,
            depth=self._nodes[parent_id].depth + 1,
        )
        self._nodes[node_id] = node
        self._nodes[parent_id].children.append(node_id)
        self._name_index[name] = node_id
        return node

    def add_tag_leaf(self, tag: str, parent: str) -> TaxonomyNode:
        """Add a leaf for ``tag`` under ``parent`` (one leaf per sense)."""
        leaf_name = f"leaf::{parent}::{tag}"
        node = self.add_node(leaf_name, parent=parent)
        self._tag_leaves.setdefault(tag, [])
        if node.node_id not in self._tag_leaves[tag]:
            self._tag_leaves[tag].append(node.node_id)
        return node

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def root(self) -> TaxonomyNode:
        if self._root_id is None:
            raise ConfigurationError("taxonomy has no root")
        return self._nodes[self._root_id]

    def node(self, node_id: int) -> TaxonomyNode:
        return self._nodes[node_id]

    def node_by_name(self, name: str) -> TaxonomyNode:
        return self._nodes[self._name_index[name]]

    def contains_tag(self, tag: str) -> bool:
        return tag in self._tag_leaves

    def covered_tags(self) -> Tuple[str, ...]:
        """All tags with at least one leaf, sorted."""
        return tuple(sorted(self._tag_leaves))

    def senses(self, tag: str) -> List[int]:
        """Leaf node ids of every sense of ``tag``."""
        return list(self._tag_leaves.get(tag, []))

    def ancestors(self, node_id: int, include_self: bool = True) -> List[int]:
        """Node ids on the path from ``node_id`` up to the root."""
        path = []
        current: Optional[int] = node_id
        if not include_self:
            current = self._nodes[node_id].parent_id
        while current is not None:
            path.append(current)
            current = self._nodes[current].parent_id
        return path

    def lowest_common_subsumer(self, node_a: int, node_b: int) -> int:
        """Deepest node that is an ancestor of both arguments."""
        ancestors_a = self.ancestors(node_a)
        ancestors_b = set(self.ancestors(node_b))
        for candidate in ancestors_a:  # ordered deepest-first
            if candidate in ancestors_b:
                return candidate
        assert self._root_id is not None
        return self._root_id

    # ------------------------------------------------------------------ #
    # Information content
    # ------------------------------------------------------------------ #
    def set_corpus_counts(
        self, tag_counts: Mapping[str, float], smoothing: float = 1.0
    ) -> None:
        """Attach corpus frequencies and propagate them up the tree.

        Each covered tag's count (plus ``smoothing``) is split evenly across
        its senses (the standard treatment when sense-tagged counts are
        unavailable) and every internal node accumulates the mass of its
        descendants, exactly like Resnik's corpus-based IC over WordNet.
        """
        if smoothing < 0:
            raise ConfigurationError("smoothing must be non-negative")
        for node in self._nodes.values():
            node.frequency = 0.0
        for tag, leaves in self._tag_leaves.items():
            mass = float(tag_counts.get(tag, 0.0)) + smoothing
            if not leaves:
                continue
            share = mass / len(leaves)
            for leaf_id in leaves:
                for ancestor_id in self.ancestors(leaf_id):
                    self._nodes[ancestor_id].frequency += share
        self._counts_attached = True

    def information_content(self, node_id: int) -> float:
        """Resnik IC: ``-log(freq(node) / freq(root))``."""
        if not self._counts_attached:
            raise ConfigurationError(
                "call set_corpus_counts() before computing information content"
            )
        root_frequency = self.root.frequency
        node_frequency = self._nodes[node_id].frequency
        if root_frequency <= 0 or node_frequency <= 0:
            return 0.0
        return -math.log(node_frequency / root_frequency)

    @property
    def has_counts(self) -> bool:
        return self._counts_attached


def build_taxonomy_from_vocabulary(
    vocabulary: Vocabulary,
    tag_counts: Optional[Mapping[str, float]] = None,
    root_name: str = "entity",
) -> Taxonomy:
    """Build the domain → aspect → concept → tag taxonomy for ``vocabulary``.

    Parameters
    ----------
    vocabulary:
        The generator vocabulary (latent structure).
    tag_counts:
        Optional corpus tag usage counts; when given the information content
        is attached immediately.
    """
    taxonomy = Taxonomy()
    taxonomy.add_node(root_name, parent=None)

    for concept in vocabulary.concepts:
        domain_node = f"domain::{concept.domain}"
        aspect_node = f"aspect::{concept.domain}::{concept.aspect}"
        concept_node = f"concept::{concept.name}"
        taxonomy.add_node(domain_node, parent=root_name)
        taxonomy.add_node(aspect_node, parent=domain_node)
        taxonomy.add_node(concept_node, parent=aspect_node)
        for tag in concept.surface_tags:
            taxonomy.add_tag_leaf(tag, parent=concept_node)

    # Polysemous tags gain an extra sense leaf under each listed concept.
    for tag, concept_names in vocabulary.polysemous_tags.items():
        for concept_name in concept_names:
            concept_node = f"concept::{concept_name}"
            try:
                taxonomy.node_by_name(concept_node)
            except KeyError:
                continue
            taxonomy.add_tag_leaf(tag, parent=concept_node)

    if tag_counts is not None:
        taxonomy.set_corpus_counts(tag_counts)
    return taxonomy
