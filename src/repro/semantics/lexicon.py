"""The semantic lexicon: which tags the reference taxonomy covers.

The paper restricts the Table III evaluation to the ~50% of Bibsonomy tags
that appear in WordNet; :class:`SemanticLexicon` plays the same role here —
it pairs a :class:`~repro.semantics.jcn.JcnDistance` with the subset of a
corpus's tags the taxonomy can judge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.datasets.generator import SyntheticDataset
from repro.semantics.jcn import JcnDistance
from repro.semantics.taxonomy import Taxonomy, build_taxonomy_from_vocabulary
from repro.tagging.folksonomy import Folksonomy


@dataclass
class SemanticLexicon:
    """A JCN reference restricted to the tags it actually covers."""

    jcn: JcnDistance
    covered_tags: FrozenSet[str]

    def __contains__(self, tag: str) -> bool:
        return tag in self.covered_tags

    @property
    def size(self) -> int:
        return len(self.covered_tags)

    def coverage_of(self, tags: Sequence[str]) -> float:
        """Fraction of ``tags`` the lexicon can judge."""
        if not tags:
            return 0.0
        covered = sum(1 for tag in tags if tag in self.covered_tags)
        return covered / len(tags)

    def judgeable_tags(self, tags: Sequence[str]) -> Tuple[str, ...]:
        """The subset of ``tags`` covered by the lexicon (the paper's set D)."""
        return tuple(tag for tag in tags if tag in self.covered_tags)


def build_lexicon(
    dataset: SyntheticDataset,
    folksonomy: Optional[Folksonomy] = None,
) -> SemanticLexicon:
    """Build the lexicon for a synthetic corpus.

    Parameters
    ----------
    dataset:
        The generated corpus whose vocabulary defines the taxonomy.
    folksonomy:
        The (typically cleaned) folksonomy whose tag usage counts drive the
        information content; defaults to the dataset's own folksonomy.
    """
    corpus = folksonomy if folksonomy is not None else dataset.folksonomy
    _, tag_counts, _ = corpus.assignment_counts()
    taxonomy: Taxonomy = build_taxonomy_from_vocabulary(
        dataset.ground_truth.vocabulary, tag_counts=tag_counts
    )
    jcn = JcnDistance(taxonomy)
    covered = frozenset(
        tag for tag in corpus.tags if taxonomy.contains_tag(tag)
    )
    return SemanticLexicon(jcn=jcn, covered_tags=covered)
