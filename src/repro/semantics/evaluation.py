"""Tag-distance accuracy metrics (Table III of the paper).

For every judgeable tag ``t`` (covered by the semantic lexicon), a method
nominates its most similar tag ``t_sim`` according to the method's own
distance matrix.  Two scores summarise how good those nominations are
against the JCN reference:

* ``JCN_avg`` — the average reference distance ``JCN(t, t_sim)`` (Eq. 22),
* ``Rank_avg`` — the average 1-based rank of ``t_sim`` among all judgeable
  tags ordered by reference distance from ``t`` (Eq. 23).

Lower is better for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.semantics.lexicon import SemanticLexicon
from repro.utils.errors import DimensionError


@dataclass
class TagDistanceAccuracy:
    """Result of evaluating one method's tag distances against the reference."""

    method: str
    jcn_avg: float
    rank_avg: float
    evaluated_tags: int
    judgeable_tags: int
    per_tag_jcn: Dict[str, float] = field(default_factory=dict)
    per_tag_rank: Dict[str, int] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Row dictionary used by the Table III report."""
        return {
            "Method": self.method,
            "Average JCN": round(self.jcn_avg, 3),
            "Average Rank": round(self.rank_avg, 3),
            "Tags evaluated": self.evaluated_tags,
        }


def nominate_most_similar(
    distances: np.ndarray, tags: Sequence[str], tag: str
) -> Optional[str]:
    """The tag a method considers closest to ``tag`` (smallest distance)."""
    if len(tags) != distances.shape[0]:
        raise DimensionError("tags and distance matrix size mismatch")
    try:
        index = list(tags).index(tag)
    except ValueError:
        return None
    row = distances[index].copy()
    row[index] = np.inf
    if not np.isfinite(row).any():
        return None
    best = int(np.argmin(row))
    return tags[best]


def evaluate_tag_distances(
    distances: np.ndarray,
    tags: Sequence[str],
    lexicon: SemanticLexicon,
    method: str = "method",
) -> TagDistanceAccuracy:
    """Compute ``JCN_avg`` and ``Rank_avg`` for one method.

    Follows the paper's procedure: iterate over the judgeable tags ``D``
    (tags of the corpus covered by the reference), let the method nominate
    ``t_sim`` from the *whole* corpus vocabulary, and score only those
    nominations that the reference can judge.
    """
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise DimensionError("distances must be a square matrix")
    if len(tags) != distances.shape[0]:
        raise DimensionError(
            f"{len(tags)} tags for a {distances.shape[0]}-row distance matrix"
        )

    judgeable = lexicon.judgeable_tags(tags)
    judgeable_set = set(judgeable)

    per_tag_jcn: Dict[str, float] = {}
    per_tag_rank: Dict[str, int] = {}
    for tag in judgeable:
        nominated = nominate_most_similar(distances, tags, tag)
        if nominated is None or nominated not in judgeable_set:
            # Mirrors the paper: only nominations present in the reference
            # contribute to the averages (the denominator k).
            continue
        per_tag_jcn[tag] = lexicon.jcn.distance(tag, nominated)
        per_tag_rank[tag] = lexicon.jcn.rank_of(tag, nominated, judgeable)

    evaluated = len(per_tag_jcn)
    jcn_avg = float(np.mean(list(per_tag_jcn.values()))) if evaluated else float("nan")
    rank_avg = float(np.mean(list(per_tag_rank.values()))) if evaluated else float("nan")
    return TagDistanceAccuracy(
        method=method,
        jcn_avg=jcn_avg,
        rank_avg=rank_avg,
        evaluated_tags=evaluated,
        judgeable_tags=len(judgeable),
        per_tag_jcn=per_tag_jcn,
        per_tag_rank=per_tag_rank,
    )
