"""Semantic ground truth: a WordNet substitute with Jiang-Conrath distance.

The paper's Table III evaluates how well each method's tag distances agree
with an *external* semantic reference — WordNet with the Jiang-Conrath (JCN)
distance.  WordNet itself cannot ship with this reproduction, so this
subpackage builds the equivalent machinery over the generator's ground
truth:

* :mod:`repro.semantics.taxonomy` — a rooted IS-A taxonomy (domain → aspect
  → concept → surface tag) with corpus-based information content,
* :mod:`repro.semantics.jcn` — Resnik information content and the
  Jiang-Conrath distance ``IC(a) + IC(b) - 2 IC(lcs(a, b))``,
* :mod:`repro.semantics.lexicon` — which tags are "in" the reference (the
  analogue of "tags that appear in WordNet"),
* :mod:`repro.semantics.evaluation` — the JCN-average and Rank-average
  metrics of Table III.
"""

from repro.semantics.taxonomy import Taxonomy, TaxonomyNode, build_taxonomy_from_vocabulary
from repro.semantics.jcn import JcnDistance
from repro.semantics.lexicon import SemanticLexicon, build_lexicon
from repro.semantics.evaluation import (
    TagDistanceAccuracy,
    evaluate_tag_distances,
)

__all__ = [
    "Taxonomy",
    "TaxonomyNode",
    "build_taxonomy_from_vocabulary",
    "JcnDistance",
    "SemanticLexicon",
    "build_lexicon",
    "TagDistanceAccuracy",
    "evaluate_tag_distances",
]
