"""Jiang-Conrath semantic distance over the taxonomy.

Jiang & Conrath (1997) define the distance between two senses as

    d_JCN(a, b) = IC(a) + IC(b) - 2 * IC(lcs(a, b))

with ``IC`` the Resnik information content and ``lcs`` the lowest common
subsumer.  For *tags* (which may have several senses) the distance is the
minimum over all sense pairs, matching the convention of the WordNet
similarity packages the paper's evaluation relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.semantics.taxonomy import Taxonomy
from repro.utils.errors import ConfigurationError


class JcnDistance:
    """Computes Jiang-Conrath distances between tags of a taxonomy."""

    def __init__(self, taxonomy: Taxonomy) -> None:
        if not taxonomy.has_counts:
            raise ConfigurationError(
                "the taxonomy needs corpus counts (set_corpus_counts) before "
                "JCN distances can be computed"
            )
        self._taxonomy = taxonomy
        self._ic_cache: Dict[int, float] = {}

    @property
    def taxonomy(self) -> Taxonomy:
        return self._taxonomy

    def contains(self, tag: str) -> bool:
        """Whether ``tag`` is covered by the reference taxonomy."""
        return self._taxonomy.contains_tag(tag)

    def information_content(self, node_id: int) -> float:
        if node_id not in self._ic_cache:
            self._ic_cache[node_id] = self._taxonomy.information_content(node_id)
        return self._ic_cache[node_id]

    def distance(self, tag_a: str, tag_b: str) -> float:
        """JCN distance between two tags (0 for a tag with itself).

        Raises ``KeyError`` if either tag is not covered by the taxonomy.
        """
        if not self.contains(tag_a):
            raise KeyError(f"tag {tag_a!r} is not covered by the taxonomy")
        if not self.contains(tag_b):
            raise KeyError(f"tag {tag_b!r} is not covered by the taxonomy")
        if tag_a == tag_b:
            return 0.0
        best: Optional[float] = None
        for sense_a in self._taxonomy.senses(tag_a):
            for sense_b in self._taxonomy.senses(tag_b):
                value = self._sense_distance(sense_a, sense_b)
                if best is None or value < best:
                    best = value
        assert best is not None
        return best

    def most_similar(self, tag: str, candidates) -> Tuple[Optional[str], float]:
        """The candidate with the smallest JCN distance from ``tag``.

        Candidates not covered by the taxonomy are skipped; returns
        ``(None, inf)`` if nothing is comparable.
        """
        best_tag: Optional[str] = None
        best_distance = float("inf")
        for candidate in candidates:
            if candidate == tag or not self.contains(candidate):
                continue
            value = self.distance(tag, candidate)
            if value < best_distance or (
                value == best_distance and (best_tag is None or candidate < best_tag)
            ):
                best_tag = candidate
                best_distance = value
        return best_tag, best_distance

    def rank_of(self, tag: str, target: str, candidates) -> int:
        """1-based rank of ``target`` among ``candidates`` sorted by distance from ``tag``.

        Mirrors the paper's ``Rank(t, t_sim)``: rank 1 means ``target`` is
        the closest candidate according to the reference distance.
        """
        if not self.contains(tag) or not self.contains(target):
            raise KeyError("both tags must be covered by the taxonomy")
        target_distance = self.distance(tag, target)
        rank = 1
        for candidate in candidates:
            if candidate in (tag, target) or not self.contains(candidate):
                continue
            if self.distance(tag, candidate) < target_distance:
                rank += 1
        return rank

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _sense_distance(self, sense_a: int, sense_b: int) -> float:
        lcs = self._taxonomy.lowest_common_subsumer(sense_a, sense_b)
        value = (
            self.information_content(sense_a)
            + self.information_content(sense_b)
            - 2.0 * self.information_content(lcs)
        )
        return max(0.0, value)
