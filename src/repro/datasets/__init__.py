"""Synthetic social-tagging corpora and query workloads.

The paper evaluates on crawls of Delicious, Bibsonomy and Last.fm that are
not redistributable.  This subpackage provides the substitute: a generative
model of a folksonomy whose latent structure contains exactly the phenomena
CubeLSI is designed to exploit —

* **concepts** expressed through several surface tags (synonyms, cross
  language cognates, morphological variants, abbreviations → Table IV),
* **polysemous tags** shared by unrelated concepts,
* **tagger interest groups** that prefer different aspects and different
  surface vocabulary for the same resources (the "multitude of aspects"
  motivation and the reason the tagger dimension carries signal),
* **sparsity and noise** from users seeing only a few resources and
  occasionally mis-tagging.

The latent structure is kept as ground truth so relevance judgments
(Figure 4's user study) and semantic references (Table III's WordNet/JCN)
can be derived without human annotators.
"""

from repro.datasets.vocabulary import (
    ConceptSpec,
    Vocabulary,
    build_default_vocabulary,
    TagKind,
)
from repro.datasets.generator import (
    FolksonomyGenerator,
    GeneratorConfig,
    GroundTruth,
    SyntheticDataset,
)
from repro.datasets.profiles import (
    DatasetProfile,
    DELICIOUS_PROFILE,
    BIBSONOMY_PROFILE,
    LASTFM_PROFILE,
    PROFILES,
    generate_profile_dataset,
)
from repro.datasets.queries import (
    Query,
    QueryWorkload,
    RelevanceJudgments,
    build_query_workload,
)
from repro.datasets.toy import running_example_folksonomy, running_example_records

__all__ = [
    "ConceptSpec",
    "Vocabulary",
    "build_default_vocabulary",
    "TagKind",
    "FolksonomyGenerator",
    "GeneratorConfig",
    "GroundTruth",
    "SyntheticDataset",
    "DatasetProfile",
    "DELICIOUS_PROFILE",
    "BIBSONOMY_PROFILE",
    "LASTFM_PROFILE",
    "PROFILES",
    "generate_profile_dataset",
    "Query",
    "QueryWorkload",
    "RelevanceJudgments",
    "build_query_workload",
    "running_example_folksonomy",
    "running_example_records",
]
