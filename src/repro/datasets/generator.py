"""Generative model of a social tagging system.

The generator simulates the data-producing process the paper describes in its
introduction:

1. every **resource** exhibits a small mixture of latent *concepts*
   (its aspects: content, technique, genre, event, ...),
2. every **tagger** belongs to an *interest group* that cares about a subset
   of concepts and has its own preferred surface vocabulary (one group says
   "films", another "movie", a French-speaking group "dictionnaire"),
3. a tagger posts on resources relevant to their interests (plus some
   off-topic browsing), expressing the concepts they noticed through their
   group's vocabulary, with occasional **noise** (random tags, system tags,
   one-off gibberish tags).

Because the latent concept mixture of every resource, the group of every
user and the concept(s) of every tag are retained in :class:`GroundTruth`,
downstream code can derive relevance judgments and semantic references
without human annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.vocabulary import Vocabulary, build_default_vocabulary
from repro.tagging.entities import TagAssignment
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError
from repro.utils.rng import make_rng
from repro.utils.validation import (
    check_positive_int,
    check_probability,
)


#: Topic-free organisational tags taggers habitually attach to their posts.
PERSONAL_TAGS: Tuple[str, ...] = (
    "toread",
    "todo",
    "favorites",
    "useful",
    "cool",
    "inspiration",
    "work",
    "later",
    "interesting",
    "archive",
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic folksonomy generator.

    The defaults produce a small laptop-friendly corpus; the dataset
    profiles in :mod:`repro.datasets.profiles` override them to mimic the
    shape of the paper's three datasets.
    """

    num_users: int = 120
    num_resources: int = 200
    num_interest_groups: int = 6
    concepts_per_group: int = 6
    max_concepts_per_resource: int = 3
    #: number of resource archetypes (recurring cross-aspect concept
    #: combinations, e.g. "jazz + chillout + live"); systematic co-occurrence
    #: of concepts from different aspects is what fools tag-only methods
    num_archetypes: int = 12
    mean_posts_per_user: float = 12.0
    max_tags_per_post: int = 4
    #: probability a tag pick uses the tagger's own preferred surface form
    #: (their idiolect) instead of a uniformly random form of the concept
    group_vocabulary_bias: float = 0.8
    #: probability a tagger's preferred form for a concept follows their
    #: interest group's preference rather than being an individual quirk
    group_form_alignment: float = 0.3
    #: probability a tagger adds a second surface form of the same concept to
    #: the same post ("blog blogging weblog" style redundant tagging); this
    #: within-post co-occurrence is the first-order signal the tensor sees
    redundant_form_rate: float = 0.3
    #: probability a post additionally receives one of the tagger's personal
    #: organisational tags ("toread", "todo", "work", ...).  These tags are
    #: topic-free: they pollute tag-resource co-occurrence (hurting methods
    #: that ignore who assigned them) while remaining confined to individual
    #: users in the tensor view
    personal_tag_rate: float = 0.25
    #: how many personal tags each tagger habitually uses
    personal_tags_per_user: int = 2
    #: probability a post lands on a resource outside the user's interests
    offtopic_post_rate: float = 0.1
    #: probability a chosen tag is replaced by a uniformly random tag
    noise_rate: float = 0.05
    #: probability a post additionally receives a system tag (raw data only)
    system_tag_rate: float = 0.03
    #: probability a post additionally receives a one-off gibberish tag
    rare_tag_rate: float = 0.02
    seed: Optional[int] = 7

    def __post_init__(self) -> None:
        check_positive_int(self.num_users, "num_users")
        check_positive_int(self.num_resources, "num_resources")
        check_positive_int(self.num_interest_groups, "num_interest_groups")
        check_positive_int(self.concepts_per_group, "concepts_per_group")
        check_positive_int(self.max_concepts_per_resource, "max_concepts_per_resource")
        check_positive_int(self.num_archetypes, "num_archetypes")
        check_positive_int(self.max_tags_per_post, "max_tags_per_post")
        if self.mean_posts_per_user <= 0:
            raise ConfigurationError("mean_posts_per_user must be positive")
        check_probability(self.group_vocabulary_bias, "group_vocabulary_bias")
        check_probability(self.group_form_alignment, "group_form_alignment")
        check_probability(self.redundant_form_rate, "redundant_form_rate")
        check_probability(self.personal_tag_rate, "personal_tag_rate")
        check_positive_int(self.personal_tags_per_user, "personal_tags_per_user")
        check_probability(self.offtopic_post_rate, "offtopic_post_rate")
        check_probability(self.noise_rate, "noise_rate")
        check_probability(self.system_tag_rate, "system_tag_rate")
        check_probability(self.rare_tag_rate, "rare_tag_rate")


@dataclass
class GroundTruth:
    """Latent structure retained from generation.

    Attributes
    ----------
    resource_concepts:
        ``resource -> {concept name -> weight}``; weights sum to 1 per resource.
    user_groups:
        ``user -> interest group id``.
    group_concepts:
        ``group id -> concepts that group is interested in``.
    group_preferred_tags:
        ``(group id, concept name) -> the surface tag that group prefers``.
    tag_concepts:
        ``surface tag -> concepts it can express`` (>1 entry = polysemy).
    vocabulary:
        The :class:`Vocabulary` used for generation.
    """

    resource_concepts: Dict[str, Dict[str, float]]
    user_groups: Dict[str, int]
    group_concepts: Dict[int, Tuple[str, ...]]
    group_preferred_tags: Dict[Tuple[int, str], str]
    tag_concepts: Dict[str, FrozenSet[str]]
    vocabulary: Vocabulary

    def concept_weight(self, resource: str, concept: str) -> float:
        """Ground-truth weight of ``concept`` in ``resource`` (0 if absent)."""
        return self.resource_concepts.get(resource, {}).get(concept, 0.0)

    def resources_about(self, concept: str, min_weight: float = 0.0) -> List[str]:
        """Resources whose mixture includes ``concept`` above ``min_weight``."""
        return [
            resource
            for resource, weights in self.resource_concepts.items()
            if weights.get(concept, 0.0) > min_weight
        ]

    def concepts_of_tag(self, tag: str) -> FrozenSet[str]:
        return self.tag_concepts.get(tag, frozenset())

    def tags_of_concept(self, concept: str) -> Tuple[str, ...]:
        """All surface tags that can express ``concept``."""
        return tuple(
            sorted(tag for tag, names in self.tag_concepts.items() if concept in names)
        )


@dataclass
class SyntheticDataset:
    """A generated corpus: the folksonomy plus its latent ground truth."""

    name: str
    folksonomy: Folksonomy
    ground_truth: GroundTruth
    config: GeneratorConfig

    @property
    def num_assignments(self) -> int:
        return self.folksonomy.num_assignments


class FolksonomyGenerator:
    """Draws synthetic folksonomies from the generative model."""

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        vocabulary: Optional[Vocabulary] = None,
    ) -> None:
        self._config = config or GeneratorConfig()
        self._vocabulary = (
            vocabulary if vocabulary is not None else build_default_vocabulary()
        )
        if len(self._vocabulary) == 0:
            raise ConfigurationError("vocabulary contains no concepts")

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, name: str = "synthetic", include_noise_tags: bool = True) -> SyntheticDataset:
        """Generate one corpus.

        Parameters
        ----------
        name:
            Dataset name carried by the resulting folksonomy.
        include_noise_tags:
            Whether system tags and one-off gibberish tags are injected
            (``True`` produces "raw" data for the cleaning pipeline;
            ``False`` produces already-clean data).
        """
        config = self._config
        rng = make_rng(config.seed)
        vocabulary = self._vocabulary
        concept_names = list(vocabulary.concept_names())
        tag_concepts = vocabulary.tag_to_concepts()

        group_concepts = self._assign_group_concepts(rng, concept_names)
        group_preferred = self._assign_group_vocabulary(rng, group_concepts, tag_concepts)
        resource_concepts = self._assign_resource_concepts(rng, concept_names)
        user_groups = {
            f"user{{:0{len(str(config.num_users))}d}}".format(i): int(
                rng.integers(config.num_interest_groups)
            )
            for i in range(config.num_users)
        }

        assignments = self._generate_assignments(
            rng,
            user_groups=user_groups,
            group_concepts=group_concepts,
            group_preferred=group_preferred,
            resource_concepts=resource_concepts,
            tag_concepts=tag_concepts,
            include_noise_tags=include_noise_tags,
        )

        folksonomy = Folksonomy(assignments, name=name)
        ground_truth = GroundTruth(
            resource_concepts=resource_concepts,
            user_groups=user_groups,
            group_concepts=group_concepts,
            group_preferred_tags=group_preferred,
            tag_concepts=tag_concepts,
            vocabulary=vocabulary,
        )
        return SyntheticDataset(
            name=name,
            folksonomy=folksonomy,
            ground_truth=ground_truth,
            config=config,
        )

    # ------------------------------------------------------------------ #
    # Internal steps
    # ------------------------------------------------------------------ #
    def _assign_group_concepts(
        self, rng: np.random.Generator, concept_names: Sequence[str]
    ) -> Dict[int, Tuple[str, ...]]:
        """Give every interest group an aspect-focused subset of concepts.

        Groups are aspect-focused: a group follows concepts that share one
        aspect (e.g. photo-taking *technique*, or music *mood*), mirroring
        the paper's observation that different audiences care about
        different aspects of the same resources.  Because resources combine
        concepts from several aspects (see ``_build_archetypes``), the same
        resource ends up tagged by several groups, each from its own angle —
        which is precisely the structure that makes the tagger dimension
        informative.
        """
        config = self._config
        vocabulary = self._vocabulary
        aspects = list(vocabulary.aspects())
        by_aspect: Dict[str, List[str]] = {}
        for concept in vocabulary.concepts:
            by_aspect.setdefault(concept.aspect, []).append(concept.name)

        groups: Dict[int, Tuple[str, ...]] = {}
        for group_id in range(config.num_interest_groups):
            aspect = aspects[group_id % len(aspects)] if aspects else None
            pool = list(by_aspect.get(aspect, [])) if aspect else []
            rng.shuffle(pool)
            chosen: List[str] = pool[: config.concepts_per_group]
            if len(chosen) < config.concepts_per_group:
                remaining = [c for c in concept_names if c not in chosen]
                rng.shuffle(remaining)
                chosen.extend(
                    remaining[: config.concepts_per_group - len(chosen)]
                )
            if not chosen:
                chosen = [str(rng.choice(list(concept_names)))]
            groups[group_id] = tuple(sorted(chosen))
        return groups

    def _assign_group_vocabulary(
        self,
        rng: np.random.Generator,
        group_concepts: Mapping[int, Tuple[str, ...]],
        tag_concepts: Mapping[str, FrozenSet[str]],
    ) -> Dict[Tuple[int, str], str]:
        """Pick each group's preferred surface tag per concept.

        Different groups deliberately receive *different* preferred surface
        forms where possible so that aggregating over users (as BOW/LSI do)
        loses the information that those forms co-occur within groups.
        """
        preferred: Dict[Tuple[int, str], str] = {}
        concept_tags: Dict[str, List[str]] = {}
        for tag, names in tag_concepts.items():
            for concept_name in names:
                concept_tags.setdefault(concept_name, []).append(tag)
        for tags in concept_tags.values():
            tags.sort()

        rotation: Dict[str, int] = {}
        for group_id in sorted(group_concepts):
            for concept_name in group_concepts[group_id]:
                options = concept_tags.get(concept_name, [])
                if not options:
                    continue
                offset = rotation.get(concept_name, 0)
                preferred[(group_id, concept_name)] = options[offset % len(options)]
                rotation[concept_name] = offset + 1
        return preferred

    def _build_archetypes(
        self, rng: np.random.Generator
    ) -> List[Tuple[str, ...]]:
        """Recurring cross-aspect concept combinations resources are drawn from.

        Each archetype pairs one concept per aspect for a few distinct
        aspects (e.g. a "live jazz chill-out set" archetype = jazz_music +
        chillout_mood + live_recordings).  Many resources share an
        archetype, so its concepts — which are *not* semantically related —
        co-occur systematically across resources.  Tag-only methods see that
        co-occurrence and conflate the aspects; the tagger dimension keeps
        them apart because each aspect is tagged by a different interest
        group.
        """
        config = self._config
        vocabulary = self._vocabulary
        by_aspect: Dict[str, List[str]] = {}
        for concept in vocabulary.concepts:
            by_aspect.setdefault(concept.aspect, []).append(concept.name)
        aspects = sorted(by_aspect)

        archetypes: List[Tuple[str, ...]] = []
        for _ in range(config.num_archetypes):
            count = min(
                len(aspects),
                max(2, config.max_concepts_per_resource),
            )
            count = min(count, max(1, len(aspects)))
            chosen_aspects = list(
                rng.choice(aspects, size=min(count, len(aspects)), replace=False)
            )
            members = []
            for aspect in chosen_aspects:
                pool = by_aspect[aspect]
                members.append(str(pool[int(rng.integers(len(pool)))]))
            archetypes.append(tuple(sorted(set(members))))
        return archetypes

    def _assign_resource_concepts(
        self, rng: np.random.Generator, concept_names: Sequence[str]
    ) -> Dict[str, Dict[str, float]]:
        """Draw each resource's concept mixture from an archetype.

        A resource picks an archetype, keeps up to ``max_concepts_per_resource``
        of its concepts and receives Dirichlet weights over them.
        """
        config = self._config
        width = len(str(config.num_resources))
        archetypes = self._build_archetypes(rng)
        resource_concepts: Dict[str, Dict[str, float]] = {}
        names = list(concept_names)
        for index in range(config.num_resources):
            resource = f"res{index:0{width}d}"
            archetype = archetypes[int(rng.integers(len(archetypes)))]
            chosen = list(archetype)
            rng.shuffle(chosen)
            chosen = chosen[: config.max_concepts_per_resource]
            if not chosen:
                chosen = [str(names[int(rng.integers(len(names)))])]
            weights = rng.dirichlet(np.full(len(chosen), 1.5))
            # Sort so the dominant concept is deterministic given the draw.
            pairs = sorted(zip(chosen, weights), key=lambda kv: -kv[1])
            resource_concepts[resource] = {c: float(w) for c, w in pairs}
        return resource_concepts

    def _generate_assignments(
        self,
        rng: np.random.Generator,
        user_groups: Mapping[str, int],
        group_concepts: Mapping[int, Tuple[str, ...]],
        group_preferred: Mapping[Tuple[int, str], str],
        resource_concepts: Mapping[str, Dict[str, float]],
        tag_concepts: Mapping[str, FrozenSet[str]],
        include_noise_tags: bool,
    ) -> List[TagAssignment]:
        config = self._config
        all_tags = sorted(tag_concepts)
        resources = sorted(resource_concepts)
        concept_surface: Dict[str, List[str]] = {}
        for tag, names in tag_concepts.items():
            for concept_name in names:
                concept_surface.setdefault(concept_name, []).append(tag)
        for tags in concept_surface.values():
            tags.sort()

        # Pre-compute, per group, which resources are "relevant" (share a concept).
        relevant_resources: Dict[int, List[str]] = {}
        for group_id, concepts in group_concepts.items():
            concept_set = set(concepts)
            relevant = [
                r
                for r in resources
                if concept_set.intersection(resource_concepts[r])
            ]
            relevant_resources[group_id] = relevant or list(resources)

        assignments: List[TagAssignment] = []
        rare_counter = 0
        user_preferred: Dict[Tuple[str, str], str] = {}
        for user in sorted(user_groups):
            group_id = user_groups[user]
            group_concept_set = set(group_concepts[group_id])
            personal_pool = [
                str(t)
                for t in rng.choice(
                    PERSONAL_TAGS,
                    size=min(config.personal_tags_per_user, len(PERSONAL_TAGS)),
                    replace=False,
                )
            ]
            num_posts = max(1, int(rng.poisson(config.mean_posts_per_user)))
            for _ in range(num_posts):
                offtopic = rng.random() < config.offtopic_post_rate
                pool = resources if offtopic else relevant_resources[group_id]
                resource = str(pool[int(rng.integers(len(pool)))])
                mixture = resource_concepts[resource]
                candidate_concepts = [
                    c for c in mixture if c in group_concept_set
                ] or list(mixture)
                weights = np.array([mixture[c] for c in candidate_concepts])
                weights = weights / weights.sum()

                num_tags = int(rng.integers(1, config.max_tags_per_post + 1))
                for _ in range(num_tags):
                    concept_name = str(
                        candidate_concepts[int(rng.choice(len(candidate_concepts), p=weights))]
                    )
                    tag = self._pick_surface_tag(
                        rng,
                        user,
                        group_id,
                        concept_name,
                        user_preferred,
                        group_preferred,
                        concept_surface,
                    )
                    if rng.random() < config.noise_rate:
                        tag = str(all_tags[int(rng.integers(len(all_tags)))])
                    assignments.append(TagAssignment(user, tag, resource))

                    # Redundant tagging: the same post receives a second
                    # surface form of the same concept.
                    if rng.random() < config.redundant_form_rate:
                        forms = concept_surface.get(concept_name, [])
                        alternatives = [f for f in forms if f != tag]
                        if alternatives:
                            extra = str(
                                alternatives[int(rng.integers(len(alternatives)))]
                            )
                            assignments.append(TagAssignment(user, extra, resource))

                if personal_pool and rng.random() < config.personal_tag_rate:
                    personal = personal_pool[int(rng.integers(len(personal_pool)))]
                    assignments.append(TagAssignment(user, personal, resource))

                if include_noise_tags and rng.random() < config.system_tag_rate:
                    assignments.append(
                        TagAssignment(user, "system:imported", resource)
                    )
                if include_noise_tags and rng.random() < config.rare_tag_rate:
                    rare_counter += 1
                    assignments.append(
                        TagAssignment(user, f"zzx{rare_counter:05d}", resource)
                    )
        return assignments

    def _pick_surface_tag(
        self,
        rng: np.random.Generator,
        user: str,
        group_id: int,
        concept_name: str,
        user_preferred: Dict[Tuple[str, str], str],
        group_preferred: Mapping[Tuple[int, str], str],
        concept_surface: Mapping[str, List[str]],
    ) -> str:
        """Choose the surface form ``user`` employs for ``concept_name``.

        Every tagger has a personal preferred form (their idiolect) for each
        concept; with probability ``group_form_alignment`` that idiolect
        follows the interest group's preference (a shared community
        vocabulary), otherwise it is an individual quirk.  The idiolect is
        used with probability ``group_vocabulary_bias`` on every tagging
        event; the rest of the time any form of the concept may appear.
        Because members of one group spread over several forms while still
        tagging the same kinds of resources, synonyms share *context* (users
        of the same community, resources of the same archetypes) without
        necessarily co-occurring on the same resource — the structure the
        tagger dimension exploits and user-aggregated methods miss.
        """
        options = concept_surface.get(concept_name, [])
        if not options:
            return concept_name
        key = (user, concept_name)
        if key not in user_preferred:
            group_form = group_preferred.get((group_id, concept_name))
            if group_form is not None and rng.random() < self._config.group_form_alignment:
                user_preferred[key] = group_form
            else:
                user_preferred[key] = str(options[int(rng.integers(len(options)))])
        if rng.random() < self._config.group_vocabulary_bias:
            return user_preferred[key]
        return str(options[int(rng.integers(len(options)))])
