"""Dataset profiles mimicking the paper's three corpora.

Table II of the paper reports the cleaned sizes of the Delicious, Bibsonomy
and Last.fm crawls.  Re-creating corpora of those absolute sizes is neither
possible (the crawls are proprietary) nor necessary for reproducing the
paper's findings; what matters is that the three corpora differ in *shape*
the same way:

* **Delicious** — many users, moderate tag vocabulary, fewer resources than
  tags, dense tagging (many assignments per resource).
* **Bibsonomy** — few users, many resources relative to users, sparse.
* **Last.fm** — users/tags/resources of comparable size, music vocabulary.

Each profile scales the generator configuration accordingly and exposes a
``scale`` multiplier so the corpora can be grown toward the paper's sizes
when more compute is available.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.datasets.generator import (
    FolksonomyGenerator,
    GeneratorConfig,
    SyntheticDataset,
)
from repro.datasets.vocabulary import (
    Vocabulary,
    build_default_vocabulary,
    expand_vocabulary,
)
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class DatasetProfile:
    """A named recipe for generating one of the three paper-like corpora."""

    name: str
    domains: Tuple[str, ...]
    base_users: int
    base_resources: int
    interest_groups: int
    concepts_per_group: int
    mean_posts_per_user: float
    max_tags_per_post: int
    num_archetypes: int = 10
    extra_synthetic_concepts: int = 0
    group_vocabulary_bias: float = 0.8
    group_form_alignment: float = 0.3
    redundant_form_rate: float = 0.3
    personal_tag_rate: float = 0.3
    offtopic_post_rate: float = 0.1
    noise_rate: float = 0.05
    #: reference cleaned sizes from Table II, used in reports for context
    paper_cleaned_sizes: Optional[Dict[str, int]] = None

    def config(self, scale: float = 1.0, seed: Optional[int] = 7) -> GeneratorConfig:
        """Build the generator configuration for this profile at ``scale``."""
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        return GeneratorConfig(
            num_users=max(10, int(round(self.base_users * scale))),
            num_resources=max(10, int(round(self.base_resources * scale))),
            num_interest_groups=self.interest_groups,
            concepts_per_group=self.concepts_per_group,
            num_archetypes=self.num_archetypes,
            mean_posts_per_user=self.mean_posts_per_user,
            max_tags_per_post=self.max_tags_per_post,
            group_vocabulary_bias=self.group_vocabulary_bias,
            group_form_alignment=self.group_form_alignment,
            redundant_form_rate=self.redundant_form_rate,
            personal_tag_rate=self.personal_tag_rate,
            offtopic_post_rate=self.offtopic_post_rate,
            noise_rate=self.noise_rate,
            seed=seed,
        )

    def vocabulary(self, seed: Optional[int] = 7) -> Vocabulary:
        """Vocabulary for this profile (domain-restricted, optionally expanded)."""
        vocabulary = build_default_vocabulary(domains=self.domains)
        if self.extra_synthetic_concepts > 0:
            vocabulary = expand_vocabulary(
                vocabulary, self.extra_synthetic_concepts, seed=seed
            )
        return vocabulary


DELICIOUS_PROFILE = DatasetProfile(
    name="delicious",
    domains=("web",),
    base_users=240,
    base_resources=700,
    interest_groups=8,
    concepts_per_group=8,
    mean_posts_per_user=22.0,
    max_tags_per_post=3,
    num_archetypes=12,
    paper_cleaned_sizes={"|U|": 28939, "|T|": 7342, "|R|": 4118, "|Y|": 1357238},
)

BIBSONOMY_PROFILE = DatasetProfile(
    name="bibsonomy",
    domains=("academic",),
    base_users=150,
    base_resources=600,
    interest_groups=6,
    concepts_per_group=8,
    mean_posts_per_user=25.0,
    max_tags_per_post=3,
    num_archetypes=10,
    paper_cleaned_sizes={"|U|": 732, "|T|": 4702, "|R|": 35708, "|Y|": 258347},
)

LASTFM_PROFILE = DatasetProfile(
    name="lastfm",
    domains=("music",),
    base_users=170,
    base_resources=500,
    interest_groups=6,
    concepts_per_group=6,
    mean_posts_per_user=18.0,
    max_tags_per_post=3,
    num_archetypes=8,
    paper_cleaned_sizes={"|U|": 3897, "|T|": 3326, "|R|": 2849, "|Y|": 335782},
)

PROFILES: Dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (DELICIOUS_PROFILE, BIBSONOMY_PROFILE, LASTFM_PROFILE)
}


def generate_profile_dataset(
    profile: DatasetProfile,
    scale: float = 1.0,
    seed: Optional[int] = 7,
    include_noise_tags: bool = True,
) -> SyntheticDataset:
    """Generate a corpus for ``profile`` at the given ``scale``.

    ``include_noise_tags=True`` yields "raw" data (with system and one-off
    tags) suitable for exercising the cleaning pipeline; ``False`` yields a
    corpus that is already clean.
    """
    config = profile.config(scale=scale, seed=seed)
    vocabulary = profile.vocabulary(seed=seed)
    generator = FolksonomyGenerator(config=config, vocabulary=vocabulary)
    return generator.generate(name=profile.name, include_noise_tags=include_noise_tags)


def generate_all_profiles(
    scale: float = 1.0,
    seed: Optional[int] = 7,
    include_noise_tags: bool = True,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, SyntheticDataset]:
    """Generate every (or the named subset of) profile dataset."""
    selected = names or tuple(PROFILES)
    datasets = {}
    for index, name in enumerate(selected):
        if name not in PROFILES:
            raise ConfigurationError(
                f"unknown profile {name!r}; available: {sorted(PROFILES)}"
            )
        dataset_seed = None if seed is None else seed + index
        datasets[name] = generate_profile_dataset(
            PROFILES[name],
            scale=scale,
            seed=dataset_seed,
            include_noise_tags=include_noise_tags,
        )
    return datasets


def scaled_profile(profile: DatasetProfile, **overrides) -> DatasetProfile:
    """A copy of ``profile`` with selected fields replaced (for ablations)."""
    return replace(profile, **overrides)
