"""Query workloads with graded relevance judgments.

The paper's ranking-quality experiment (Figure 4) uses 128 queries proposed
by 16 users, each of whom then labelled the returned resources as Relevant
(2), Partially Relevant (1) or Irrelevant (0).  Without access to those
participants, the workload is simulated from the generator's ground truth:

* a query is built from 1-3 surface tags of a target concept (the
  "information need"), sometimes mixing a second concept the way real
  multi-keyword queries do;
* a resource's relevance grade is derived from the ground-truth weight of
  the query's concepts in the resource's latent mixture — exactly the
  quantity human judges were asked to estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


from repro.datasets.generator import GroundTruth, SyntheticDataset
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike, make_rng

#: Relevance grades used by the paper (and by NDCG's gain function).
RELEVANT = 2
PARTIALLY_RELEVANT = 1
IRRELEVANT = 0


@dataclass(frozen=True)
class Query:
    """A keyword query with the latent concepts that motivated it."""

    query_id: str
    tags: Tuple[str, ...]
    concepts: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.tags:
            raise ConfigurationError("a query must contain at least one tag")


@dataclass
class RelevanceJudgments:
    """Graded relevance of resources for one query (missing = irrelevant)."""

    query_id: str
    grades: Dict[str, int] = field(default_factory=dict)

    def grade(self, resource: str) -> int:
        return self.grades.get(resource, IRRELEVANT)

    def relevant_resources(self, min_grade: int = PARTIALLY_RELEVANT) -> List[str]:
        return sorted(r for r, g in self.grades.items() if g >= min_grade)

    def ideal_gains(self) -> List[int]:
        """All positive grades sorted descending (the ideal ranking's gains)."""
        return sorted((g for g in self.grades.values() if g > 0), reverse=True)


@dataclass
class QueryWorkload:
    """A set of queries with judgments, as used by the Figure 4 experiment."""

    queries: List[Query]
    judgments: Dict[str, RelevanceJudgments]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def judgments_for(self, query: Query) -> RelevanceJudgments:
        return self.judgments[query.query_id]

    def queries_with_judged_resources(self) -> List[Query]:
        """Queries that have at least one relevant resource (NDCG is defined)."""
        return [
            q
            for q in self.queries
            if self.judgments[q.query_id].ideal_gains()
        ]


def build_query_workload(
    dataset: SyntheticDataset,
    num_queries: int = 128,
    seed: SeedLike = 11,
    max_tags_per_query: int = 3,
    strong_threshold: float = 0.45,
    weak_threshold: float = 0.15,
    require_known_tags: bool = True,
    folksonomy=None,
) -> QueryWorkload:
    """Simulate the 128-query user study for ``dataset``.

    Parameters
    ----------
    dataset:
        A generated corpus (the ground truth supplies judgments).
    num_queries:
        Number of queries to draw (the paper uses 128).
    max_tags_per_query:
        Queries contain 1..max_tags_per_query tags.
    strong_threshold / weak_threshold:
        Ground-truth concept weight above which a resource is graded
        Relevant (2) or Partially Relevant (1).
    require_known_tags:
        If ``True`` query tags are restricted to tags that actually occur in
        the searched corpus, mirroring users who pick familiar tags.
    folksonomy:
        The (typically cleaned) :class:`~repro.tagging.folksonomy.Folksonomy`
        that will actually be searched.  Query tags are drawn from its
        vocabulary and relevance judgments are restricted to its resources,
        exactly like human judges who only rate returned, existing
        resources.  Defaults to the dataset's raw folksonomy.
    """
    if num_queries < 1:
        raise ConfigurationError("num_queries must be >= 1")
    if not 0.0 <= weak_threshold <= strong_threshold <= 1.0:
        raise ConfigurationError(
            "thresholds must satisfy 0 <= weak <= strong <= 1"
        )
    rng = make_rng(seed)
    truth = dataset.ground_truth
    corpus = folksonomy if folksonomy is not None else dataset.folksonomy
    known_tags = set(corpus.tags)
    allowed_resources = set(corpus.resources)

    concept_names = [
        name
        for name in truth.vocabulary.concept_names()
        if _usable_tags(truth, name, known_tags, require_known_tags)
    ]
    if not concept_names:
        raise ConfigurationError(
            "no concept has usable query tags; was the corpus cleaned away?"
        )

    queries: List[Query] = []
    judgments: Dict[str, RelevanceJudgments] = {}
    for index in range(num_queries):
        primary = str(concept_names[int(rng.integers(len(concept_names)))])
        concepts = [primary]
        # A third of the queries mention a secondary concept, like real
        # multi-keyword queries ("jazz live", "python tutorial").
        if len(concept_names) > 1 and rng.random() < 0.33:
            secondary = primary
            while secondary == primary:
                secondary = str(concept_names[int(rng.integers(len(concept_names)))])
            concepts.append(secondary)

        tags: List[str] = []
        budget = int(rng.integers(1, max_tags_per_query + 1))
        for concept_index, concept in enumerate(concepts):
            usable = _usable_tags(truth, concept, known_tags, require_known_tags)
            take = max(1, budget - len(tags)) if concept_index == len(concepts) - 1 else 1
            take = min(take, len(usable))
            chosen = rng.choice(usable, size=take, replace=False)
            tags.extend(str(t) for t in chosen)
            if len(tags) >= budget:
                break
        query = Query(
            query_id=f"q{index:04d}",
            tags=tuple(dict.fromkeys(tags)),
            concepts=tuple(concepts),
        )
        queries.append(query)
        judgments[query.query_id] = _judge(
            query,
            truth,
            strong_threshold=strong_threshold,
            weak_threshold=weak_threshold,
            allowed_resources=allowed_resources,
        )

    return QueryWorkload(queries=queries, judgments=judgments)


def _usable_tags(
    truth: GroundTruth,
    concept: str,
    known_tags: set,
    require_known_tags: bool,
) -> List[str]:
    tags = list(truth.tags_of_concept(concept))
    if require_known_tags:
        tags = [t for t in tags if t in known_tags]
    return tags


def _judge(
    query: Query,
    truth: GroundTruth,
    strong_threshold: float,
    weak_threshold: float,
    allowed_resources=None,
) -> RelevanceJudgments:
    """Grade every resource for ``query`` from ground-truth concept weights."""
    grades: Dict[str, int] = {}
    for resource, mixture in truth.resource_concepts.items():
        if allowed_resources is not None and resource not in allowed_resources:
            continue
        weight = sum(mixture.get(concept, 0.0) for concept in query.concepts)
        if weight >= strong_threshold:
            grades[resource] = RELEVANT
        elif weight >= weak_threshold:
            grades[resource] = PARTIALLY_RELEVANT
    return RelevanceJudgments(query_id=query.query_id, grades=grades)
