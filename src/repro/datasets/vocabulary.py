"""Concept vocabularies for the synthetic folksonomy generator.

A *concept* is a semantically coherent idea ("music listening", "wedding
photography", "open-source code") that taggers express through one of several
surface tags.  The surface forms are classified by the same correlation types
the paper's Table IV reports: plain synonyms, cross-language cognates,
morphological variants and abbreviations.  Concepts are grouped into
*domains* (web/tech, academic, music, photography, ...) that the dataset
profiles draw from so the Delicious-, Bibsonomy- and Last.fm-like corpora
have appropriately different vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike, make_rng


class TagKind(str, Enum):
    """How a surface tag relates to its concept (mirrors Table IV)."""

    CANONICAL = "canonical"
    SYNONYM = "synonym"
    COGNATE = "cognate"
    MORPHOLOGICAL = "morphological"
    ABBREVIATION = "abbreviation"


@dataclass(frozen=True)
class ConceptSpec:
    """One latent concept with its surface tag forms.

    Attributes
    ----------
    name:
        Stable identifier of the concept (never appears as a tag).
    domain:
        The topical domain the concept belongs to (``web``, ``music``, ...).
    aspect:
        The *aspect* the concept describes (``content``, ``technique``,
        ``genre``, ``event`` ...) — different tagger interest groups focus on
        different aspects of the same resource, which is the paper's central
        motivation for the tagger dimension.
    tags:
        Mapping from surface tag to its :class:`TagKind`.
    """

    name: str
    domain: str
    aspect: str
    tags: Mapping[str, TagKind]

    def __post_init__(self) -> None:
        if not self.tags:
            raise ConfigurationError(f"concept {self.name!r} has no surface tags")

    @property
    def surface_tags(self) -> Tuple[str, ...]:
        return tuple(self.tags.keys())

    @property
    def canonical_tag(self) -> str:
        for tag, kind in self.tags.items():
            if kind is TagKind.CANONICAL:
                return tag
        return next(iter(self.tags))


@dataclass
class Vocabulary:
    """A collection of concepts plus optional deliberately polysemous tags."""

    concepts: List[ConceptSpec] = field(default_factory=list)
    #: tags intentionally shared by more than one concept (polysemy)
    polysemous_tags: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [c.name for c in self.concepts]
        if len(names) != len(set(names)):
            raise ConfigurationError("concept names must be unique")

    def __len__(self) -> int:
        return len(self.concepts)

    def concept(self, name: str) -> ConceptSpec:
        for concept in self.concepts:
            if concept.name == name:
                return concept
        raise KeyError(f"no concept named {name!r}")

    def concept_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.concepts)

    def domains(self) -> Tuple[str, ...]:
        return tuple(sorted({c.domain for c in self.concepts}))

    def aspects(self) -> Tuple[str, ...]:
        return tuple(sorted({c.aspect for c in self.concepts}))

    def concepts_in_domain(self, domain: str) -> List[ConceptSpec]:
        return [c for c in self.concepts if c.domain == domain]

    def all_tags(self) -> Tuple[str, ...]:
        """Every distinct surface tag across all concepts."""
        tags = set()
        for concept in self.concepts:
            tags.update(concept.surface_tags)
        tags.update(self.polysemous_tags)
        return tuple(sorted(tags))

    def tag_to_concepts(self) -> Dict[str, FrozenSet[str]]:
        """Ground-truth mapping from surface tag to the concepts it expresses."""
        mapping: Dict[str, set] = {}
        for concept in self.concepts:
            for tag in concept.surface_tags:
                mapping.setdefault(tag, set()).add(concept.name)
        for tag, concept_names in self.polysemous_tags.items():
            mapping.setdefault(tag, set()).update(concept_names)
        return {tag: frozenset(names) for tag, names in mapping.items()}

    def restrict_to_domains(self, domains: Sequence[str]) -> "Vocabulary":
        """A new vocabulary containing only concepts from ``domains``."""
        wanted = set(domains)
        kept = [c for c in self.concepts if c.domain in wanted]
        kept_names = {c.name for c in kept}
        polysemy = {
            tag: tuple(n for n in names if n in kept_names)
            for tag, names in self.polysemous_tags.items()
        }
        polysemy = {t: names for t, names in polysemy.items() if len(names) >= 2}
        return Vocabulary(concepts=kept, polysemous_tags=polysemy)


def _concept(
    name: str,
    domain: str,
    aspect: str,
    canonical: str,
    synonyms: Sequence[str] = (),
    cognates: Sequence[str] = (),
    morphological: Sequence[str] = (),
    abbreviations: Sequence[str] = (),
) -> ConceptSpec:
    tags: Dict[str, TagKind] = {canonical: TagKind.CANONICAL}
    for tag in synonyms:
        tags[tag] = TagKind.SYNONYM
    for tag in cognates:
        tags[tag] = TagKind.COGNATE
    for tag in morphological:
        tags[tag] = TagKind.MORPHOLOGICAL
    for tag in abbreviations:
        tags[tag] = TagKind.ABBREVIATION
    return ConceptSpec(name=name, domain=domain, aspect=aspect, tags=tags)


def _web_concepts() -> List[ConceptSpec]:
    """Concepts characteristic of a Delicious-like bookmarking corpus."""
    return [
        _concept("music_listening", "web", "content", "music",
                 synonyms=("audio", "songs", "mp3"), cognates=("musik",)),
        _concept("video_sharing", "web", "content", "video",
                 synonyms=("movie", "films", "youtube")),
        _concept("photo_sharing", "web", "content", "photo",
                 synonyms=("photos", "flickr"), cognates=("foto",),
                 morphological=("photography",)),
        _concept("open_source", "web", "technique", "opensource",
                 synonyms=("open source", "code", "foss"),
                 abbreviations=("oss",)),
        _concept("web_design", "web", "technique", "webdesign",
                 synonyms=("css", "design", "layout")),
        _concept("javascript_dev", "web", "technique", "javascript",
                 synonyms=("ajax", "frontend"), abbreviations=("js",)),
        _concept("python_dev", "web", "technique", "python",
                 synonyms=("scripting", "django")),
        _concept("linux_admin", "web", "technique", "linux",
                 synonyms=("ubuntu", "debian", "unix")),
        _concept("security", "web", "technique", "security",
                 synonyms=("antivirus", "virus", "firewall"),
                 abbreviations=("infosec",)),
        _concept("wireless_network", "web", "technique", "wireless",
                 synonyms=("wifi", "network", "router")),
        _concept("england_travel", "web", "place", "england",
                 synonyms=("britain", "uk", "london")),
        _concept("travel_planning", "web", "place", "travel",
                 synonyms=("tourism", "vacation"), cognates=("voyage",),
                 morphological=("travelling",)),
        _concept("cooking_recipes", "web", "content", "recipes",
                 synonyms=("cooking", "food"), cognates=("cuisine",),
                 morphological=("recipe",)),
        _concept("humour_pages", "web", "content", "humour",
                 synonyms=("comedy", "funny", "jokes"), cognates=("humor",)),
        _concept("news_reading", "web", "content", "news",
                 synonyms=("journalism", "headlines"),
                 morphological=("newspaper",)),
        _concept("shopping_deals", "web", "content", "shopping",
                 synonyms=("deals", "store", "buy")),
        _concept("reference_lookup", "web", "content", "reference",
                 synonyms=("dictionary", "encyclopedia", "wiki"),
                 cognates=("dictionnaire",)),
        _concept("quotations", "web", "content", "quotes",
                 synonyms=("sayings",), morphological=("quote", "quotation")),
        _concept("advertising", "web", "content", "advertising",
                 synonyms=("marketing",), abbreviations=("ad", "ads"),
                 morphological=("advertisement",)),
        _concept("blogging", "web", "content", "blog",
                 synonyms=("weblog", "blogger"), morphological=("blogs", "blogging")),
        _concept("education_resources", "web", "content", "education",
                 synonyms=("learning", "teaching", "courses")),
        _concept("health_medicine", "web", "content", "health",
                 synonyms=("medicine", "wellness"), morphological=("healthy",)),
        _concept("cancer_support", "web", "content", "cancer",
                 synonyms=("oncology", "charities")),
        _concept("wedding_events", "web", "event", "wedding",
                 synonyms=("marriage", "engagement"), morphological=("weddings",)),
        _concept("folk_culture", "web", "content", "folk",
                 synonyms=("people", "tradition"), morphological=("folklore",)),
        _concept("laptop_hardware", "web", "content", "laptop",
                 synonyms=("notebook", "hardware"), morphological=("laptops",)),
    ]


def _academic_concepts() -> List[ConceptSpec]:
    """Concepts characteristic of a Bibsonomy-like publication corpus."""
    return [
        _concept("machine_learning", "academic", "topic", "machinelearning",
                 synonyms=("learning", "classification"), abbreviations=("ml",)),
        _concept("data_mining", "academic", "topic", "datamining",
                 synonyms=("mining", "kdd", "patterns")),
        _concept("databases", "academic", "topic", "database",
                 synonyms=("sql", "storage"), abbreviations=("db",),
                 morphological=("databases",)),
        _concept("information_retrieval", "academic", "topic", "retrieval",
                 synonyms=("search", "ranking"), abbreviations=("ir",)),
        _concept("semantic_web", "academic", "topic", "semanticweb",
                 synonyms=("ontology", "rdf", "owl")),
        _concept("social_networks", "academic", "topic", "socialnetworks",
                 synonyms=("networks", "graphs"), abbreviations=("sna",)),
        _concept("folksonomy_research", "academic", "topic", "folksonomy",
                 synonyms=("tagging", "tags", "bookmarking")),
        _concept("bioinformatics", "academic", "topic", "bioinformatics",
                 synonyms=("genomics", "proteins"), abbreviations=("bioinf",)),
        _concept("visualization", "academic", "method", "visualization",
                 synonyms=("charts", "graphics"), cognates=("visualisierung",),
                 morphological=("visualisation",)),
        _concept("statistics_methods", "academic", "method", "statistics",
                 synonyms=("bayesian", "regression"), abbreviations=("stats",)),
        _concept("nlp_research", "academic", "topic", "nlp",
                 synonyms=("linguistics", "parsing"),
                 morphological=("language",)),
        _concept("evaluation_methods", "academic", "method", "evaluation",
                 synonyms=("benchmark", "metrics"),
                 morphological=("evaluating",)),
        _concept("clustering_methods", "academic", "method", "clustering",
                 synonyms=("kmeans", "partitioning"),
                 morphological=("clusters",)),
        _concept("recommender_systems", "academic", "topic", "recommender",
                 synonyms=("recommendation", "collaborativefiltering"),
                 abbreviations=("recsys",)),
        _concept("distributed_systems", "academic", "topic", "distributed",
                 synonyms=("parallel", "cluster"), abbreviations=("hpc",)),
        _concept("teaching_material", "academic", "purpose", "teaching",
                 synonyms=("lecture", "course", "tutorial")),
    ]


def _music_concepts() -> List[ConceptSpec]:
    """Concepts characteristic of a Last.fm-like music corpus."""
    return [
        _concept("rock_music", "music", "genre", "rock",
                 synonyms=("classicrock", "hardrock"),
                 morphological=("rocks",)),
        _concept("pop_music", "music", "genre", "pop",
                 synonyms=("dancepop", "chartmusic")),
        _concept("jazz_music", "music", "genre", "jazz",
                 synonyms=("bebop", "swing"), cognates=("le-jazz",)),
        _concept("electronic_music", "music", "genre", "electronic",
                 synonyms=("techno", "house", "electro"),
                 abbreviations=("edm",)),
        _concept("hiphop_music", "music", "genre", "hiphop",
                 synonyms=("rap", "urban")),
        _concept("classical_music", "music", "genre", "classical",
                 synonyms=("orchestra", "symphony"), cognates=("klassik",)),
        _concept("metal_music", "music", "genre", "metal",
                 synonyms=("heavymetal", "thrash")),
        _concept("folk_music", "music", "genre", "folkmusic",
                 synonyms=("acoustic", "singer-songwriter")),
        _concept("indie_music", "music", "genre", "indie",
                 synonyms=("alternative", "indierock")),
        _concept("female_vocalists", "music", "artist", "femalevocalists",
                 synonyms=("femalevocal", "singer")),
        _concept("live_recordings", "music", "format", "live",
                 synonyms=("concert", "bootleg"), morphological=("liveshow",)),
        _concept("chillout_mood", "music", "mood", "chillout",
                 synonyms=("ambient", "relaxing", "downtempo")),
        _concept("party_mood", "music", "mood", "party",
                 synonyms=("dance", "upbeat")),
        _concept("sad_mood", "music", "mood", "melancholy",
                 synonyms=("sad", "melancholic")),
        _concept("festival_events", "music", "event", "festival",
                 synonyms=("glastonbury", "coachella"),
                 morphological=("festivals",)),
        _concept("decade_80s", "music", "era", "80s",
                 synonyms=("eighties", "synthpop")),
        _concept("decade_90s", "music", "era", "90s",
                 synonyms=("nineties", "grunge")),
    ]


#: Polysemous tags shared across concepts (tag -> concepts that use it).
_DEFAULT_POLYSEMY: Dict[str, Tuple[str, ...]] = {
    # "apple" the fruit/cooking sense vs the computing sense
    "apple": ("cooking_recipes", "laptop_hardware"),
    # "rock" the music genre vs travel/geology pages
    "rock": ("rock_music", "travel_planning"),
    # "folk" people/culture vs folk music
    "folk": ("folk_culture", "folk_music"),
    # "python" the language vs (pet) reference pages
    "python": ("python_dev", "reference_lookup"),
    # "cluster" computing vs clustering methods
    "cluster": ("distributed_systems", "clustering_methods"),
    # "pop" music genre vs advertising pop-ups
    "pop": ("pop_music", "advertising"),
}


def build_default_vocabulary(domains: Optional[Sequence[str]] = None) -> Vocabulary:
    """The built-in vocabulary of ~60 concepts across three domains.

    Parameters
    ----------
    domains:
        Optional subset of ``("web", "academic", "music")`` to restrict to.
    """
    concepts = _web_concepts() + _academic_concepts() + _music_concepts()
    vocabulary = Vocabulary(concepts=concepts, polysemous_tags=dict(_DEFAULT_POLYSEMY))
    if domains is not None:
        vocabulary = vocabulary.restrict_to_domains(domains)
    return vocabulary


def expand_vocabulary(
    vocabulary: Vocabulary,
    extra_concepts: int,
    seed: SeedLike = None,
    tags_per_concept: int = 4,
) -> Vocabulary:
    """Add ``extra_concepts`` synthetic concepts to reach larger vocabularies.

    The synthetic concepts get generated surface forms (``topic017``,
    ``topic017s``, ``t17`` ...) spanning the same tag-kind mix as the
    hand-written ones, so scaling up the corpus does not change the
    qualitative structure of the vocabulary.
    """
    if extra_concepts < 0:
        raise ConfigurationError("extra_concepts must be non-negative")
    if tags_per_concept < 1:
        raise ConfigurationError("tags_per_concept must be >= 1")
    rng = make_rng(seed)
    domains = vocabulary.domains() or ("web",)
    aspects = vocabulary.aspects() or ("content",)
    concepts = list(vocabulary.concepts)
    existing = set(vocabulary.concept_names())
    for index in range(extra_concepts):
        name = f"synthetic_concept_{index:04d}"
        if name in existing:
            continue
        domain = str(rng.choice(list(domains)))
        aspect = str(rng.choice(list(aspects)))
        stem = f"topic{index:04d}"
        tags: Dict[str, TagKind] = {stem: TagKind.CANONICAL}
        forms = [
            (f"{stem}s", TagKind.MORPHOLOGICAL),
            (f"{stem}ing", TagKind.MORPHOLOGICAL),
            (f"{stem}-alt", TagKind.SYNONYM),
            (f"{stem}x", TagKind.SYNONYM),
            (f"t{index:04d}", TagKind.ABBREVIATION),
            (f"{stem}o", TagKind.COGNATE),
        ]
        rng.shuffle(forms)
        for tag, kind in forms[: max(0, tags_per_concept - 1)]:
            tags[tag] = kind
        concepts.append(
            ConceptSpec(name=name, domain=domain, aspect=aspect, tags=tags)
        )
    return Vocabulary(concepts=concepts, polysemous_tags=dict(vocabulary.polysemous_tags))
