"""The paper's running example (Figure 2).

Seven tag-assignment records over three users, three tags ("folk", "people",
"laptop") and three resources.  The example is used throughout Sections IV
and V of the paper to show that

* raw vector distances order the tags counter-intuitively
  (d(folk, people) > d(people, laptop)),
* raw tensor-slice distances only tie them,
* and the purified (Tucker-decomposed) distances finally yield
  D(folk, people) < D(people, laptop),

after which spectral clustering groups "folk" with "people" and leaves
"laptop" on its own.  The integration tests and the ``running_example``
experiment reproduce all of those numbers.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.tagging.entities import TagAssignment
from repro.tagging.folksonomy import Folksonomy

#: Human-readable names of the three tags of the example.
TOY_TAG_LABELS = {"t1": "folk", "t2": "people", "t3": "laptop"}


def running_example_records() -> List[Tuple[str, str, str]]:
    """The seven ``(user, tag, resource)`` records of Figure 2(a)."""
    return [
        ("u1", "t1", "r1"),
        ("u1", "t1", "r2"),
        ("u2", "t1", "r2"),
        ("u3", "t1", "r2"),
        ("u1", "t2", "r1"),
        ("u2", "t3", "r3"),
        ("u3", "t3", "r3"),
    ]


def running_example_folksonomy(use_labels: bool = False) -> Folksonomy:
    """The Figure 2 example as a :class:`Folksonomy`.

    Parameters
    ----------
    use_labels:
        If ``True`` the tags are named ``folk``/``people``/``laptop`` instead
        of ``t1``/``t2``/``t3``.
    """
    records = running_example_records()
    if use_labels:
        records = [
            (user, TOY_TAG_LABELS[tag], resource) for user, tag, resource in records
        ]
    assignments = [TagAssignment(u, t, r) for u, t, r in records]
    return Folksonomy(assignments, name="running-example")
