"""A COO sparse tensor of arbitrary order.

The raw tag-assignment tensor ``F`` of a folksonomy is extremely sparse
(|Y| non-zeros out of |U|x|T|x|R| cells), so the library never materialises
it densely.  :class:`SparseTensor` stores coordinates and values and provides
the handful of operations CubeLSI needs:

* mode-n unfolding to a ``scipy.sparse`` CSR matrix (feeds truncated SVD),
* n-mode products with small dense matrices (feeds the ALS projections),
* mode slices as sparse matrices (feeds the CubeSim baseline),
* Frobenius norms and dense conversion for tests and toy examples.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor import dense as dense_ops
from repro.utils.errors import DimensionError


class SparseTensor:
    """An immutable sparse tensor in coordinate (COO) format.

    Parameters
    ----------
    coords:
        Integer array of shape ``(ndim, nnz)`` with the index of each stored
        entry along every mode.
    values:
        Array of shape ``(nnz,)`` with the stored values.
    shape:
        The logical extent of every mode.

    Duplicate coordinates are summed, mirroring ``scipy.sparse`` semantics.
    """

    def __init__(
        self,
        coords: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int],
    ) -> None:
        coords = np.asarray(coords, dtype=np.int64)
        values = np.asarray(values, dtype=float)
        shape = tuple(int(s) for s in shape)
        if coords.ndim != 2:
            raise DimensionError("coords must be a (ndim, nnz) array")
        if coords.shape[0] != len(shape):
            raise DimensionError(
                f"coords describe order {coords.shape[0]} but shape has "
                f"{len(shape)} modes"
            )
        if coords.shape[1] != values.shape[0]:
            raise DimensionError(
                f"{coords.shape[1]} coordinates but {values.shape[0]} values"
            )
        if any(s <= 0 for s in shape):
            raise DimensionError(f"all dimensions must be positive: {shape}")
        if coords.size:
            if coords.min() < 0:
                raise DimensionError("negative indices are not allowed")
            upper = coords.max(axis=1)
            for mode, (limit, hi) in enumerate(zip(shape, upper)):
                if hi >= limit:
                    raise DimensionError(
                        f"index {hi} out of bounds for mode {mode} of size "
                        f"{limit}"
                    )
        coords, values = _sum_duplicates(coords, values, shape)
        self._coords = coords
        self._values = values
        self._shape = shape

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_entries(
        cls,
        entries: Iterable[Tuple[Tuple[int, ...], float]],
        shape: Sequence[int],
    ) -> "SparseTensor":
        """Build a tensor from an iterable of ``(index_tuple, value)``."""
        index_list = []
        value_list = []
        for index, value in entries:
            index_list.append(tuple(index))
            value_list.append(float(value))
        if index_list:
            coords = np.array(index_list, dtype=np.int64).T
            values = np.array(value_list, dtype=float)
        else:
            coords = np.zeros((len(tuple(shape)), 0), dtype=np.int64)
            values = np.zeros(0, dtype=float)
        return cls(coords, values, shape)

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "SparseTensor":
        """Build a sparse tensor holding the non-zeros of ``array``."""
        array = np.asarray(array, dtype=float)
        coords = np.array(np.nonzero(array), dtype=np.int64)
        values = array[tuple(coords)]
        return cls(coords, values, array.shape)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nnz(self) -> int:
        return int(self._values.shape[0])

    @property
    def coords(self) -> np.ndarray:
        """A read-only view of the coordinate array (ndim, nnz)."""
        view = self._coords.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """A read-only view of the stored values."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (non-zero)."""
        total = float(np.prod([float(s) for s in self._shape]))
        return self.nnz / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor(shape={self._shape}, nnz={self.nnz}, "
            f"density={self.density:.2e})"
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialise the tensor as a dense numpy array.

        Guarded by a size check: this is only meant for tests and the
        paper's toy running example.
        """
        total = int(np.prod(self._shape))
        if total > 50_000_000:
            raise DimensionError(
                f"refusing to densify a tensor with {total} cells; use the "
                "sparse operations instead"
            )
        dense = np.zeros(self._shape, dtype=float)
        dense[tuple(self._coords)] = self._values
        return dense

    def unfold(self, mode: int) -> sp.csr_matrix:
        """Mode-``mode`` unfolding as a ``scipy.sparse`` CSR matrix.

        Uses the same "mode-first, remaining axes in original order"
        convention as :func:`repro.tensor.dense.unfold`, so dense and sparse
        code paths are interchangeable in tests.
        """
        if not 0 <= mode < self.ndim:
            raise DimensionError(
                f"mode {mode} out of range for order {self.ndim}"
            )
        rows = self._coords[mode]
        other_modes = [m for m in range(self.ndim) if m != mode]
        other_shape = [self._shape[m] for m in other_modes]
        if other_modes:
            cols = np.ravel_multi_index(
                [self._coords[m] for m in other_modes], other_shape
            )
            n_cols = int(np.prod(other_shape))
        else:
            cols = np.zeros(self.nnz, dtype=np.int64)
            n_cols = 1
        matrix = sp.coo_matrix(
            (self._values, (rows, cols)),
            shape=(self._shape[mode], n_cols),
        )
        return matrix.tocsr()

    def slice(self, mode: int, index: int) -> sp.csr_matrix:
        """The sparse matrix obtained by fixing ``index`` along ``mode``.

        For an order-3 tensor with ``mode=1`` this is the user-resource
        matrix ``F[:, t, :]`` used as a tag's feature representation in
        Section IV-A of the paper.
        """
        if self.ndim != 3:
            raise DimensionError("slice() is only defined for order-3 tensors")
        if not 0 <= mode < 3:
            raise DimensionError(f"mode {mode} out of range for order 3")
        if not 0 <= index < self._shape[mode]:
            raise DimensionError(
                f"index {index} out of bounds for mode {mode} of size "
                f"{self._shape[mode]}"
            )
        mask = self._coords[mode] == index
        other_modes = [m for m in range(3) if m != mode]
        rows = self._coords[other_modes[0]][mask]
        cols = self._coords[other_modes[1]][mask]
        values = self._values[mask]
        shape = (self._shape[other_modes[0]], self._shape[other_modes[1]])
        return sp.coo_matrix((values, (rows, cols)), shape=shape).tocsr()

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def frobenius_norm(self) -> float:
        """Frobenius norm computed directly from the stored values."""
        return float(np.sqrt(np.sum(self._values**2)))

    def mode_product(self, matrix: np.ndarray, mode: int) -> np.ndarray:
        """Dense result of the n-mode product ``self ×_mode matrix``.

        The product of a sparse tensor with a small dense factor matrix is
        generally dense, so the result is returned as a dense array of shape
        ``self.shape`` with mode ``mode`` replaced by ``matrix.shape[0]``.
        This is exactly the projection step ALS performs, where the other
        modes have already been (or will be) reduced to small ranks.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise DimensionError("mode_product expects a 2-D matrix")
        if matrix.shape[1] != self._shape[mode]:
            raise DimensionError(
                f"matrix with {matrix.shape[1]} columns cannot multiply mode "
                f"{mode} of size {self._shape[mode]}"
            )
        unfolded = self.unfold(mode)
        product = np.asarray(matrix @ unfolded)
        new_shape = list(self._shape)
        new_shape[mode] = matrix.shape[0]
        return dense_ops.fold(product, mode, new_shape)

    def scale(self, factor: float) -> "SparseTensor":
        """Return a new tensor with all values multiplied by ``factor``."""
        return SparseTensor(self._coords.copy(), self._values * factor, self._shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseTensor):
            return NotImplemented
        if self._shape != other._shape:
            return False
        if self.nnz != other.nnz:
            return False
        return bool(
            np.array_equal(self._coords, other._coords)
            and np.allclose(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - tensors are not hashable
        raise TypeError("SparseTensor is not hashable")


def _sum_duplicates(
    coords: np.ndarray, values: np.ndarray, shape: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate coordinates by summing their values.

    The entries are also sorted into a canonical (row-major) order, which
    makes equality checks and round-trip tests deterministic.
    """
    if values.shape[0] == 0:
        return coords, values
    flat = np.ravel_multi_index([coords[m] for m in range(coords.shape[0])], shape)
    order = np.argsort(flat, kind="stable")
    flat = flat[order]
    values = values[order]
    unique_flat, inverse = np.unique(flat, return_inverse=True)
    summed = np.zeros(unique_flat.shape[0], dtype=float)
    np.add.at(summed, inverse, values)
    keep = summed != 0.0
    unique_flat = unique_flat[keep]
    summed = summed[keep]
    new_coords = np.array(
        np.unravel_index(unique_flat, shape), dtype=np.int64
    )
    return new_coords, summed
