"""Dense tensor operations: unfolding, folding and n-mode products.

The convention used throughout the library is the "mode-first" unfolding:
``unfold(X, n)`` moves axis ``n`` to the front and reshapes the remaining
axes, in their original order, into the columns.  ``fold`` is its exact
inverse.  All identities the library relies on (``X ×_n U`` equals
``fold(U @ unfold(X, n), n, ...)``; rows of the mode-2 unfolding are the
vectorised tag slices) hold under this convention.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.utils.errors import DimensionError


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Matricise ``tensor`` along ``mode``.

    The result has shape ``(tensor.shape[mode], prod(other dims))``.  Row
    ``i`` of the unfolding is the vectorisation (C order, remaining axes in
    their original order) of the slice obtained by fixing index ``i`` on
    axis ``mode``.
    """
    tensor = np.asarray(tensor)
    if not 0 <= mode < tensor.ndim:
        raise DimensionError(
            f"mode {mode} out of range for a tensor of order {tensor.ndim}"
        )
    return np.reshape(np.moveaxis(tensor, mode, 0), (tensor.shape[mode], -1))


def fold(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold`: restore a matricised tensor.

    Parameters
    ----------
    matrix:
        The mode-``mode`` unfolding.
    mode:
        Which axis was moved to the front when unfolding.
    shape:
        The target tensor shape *after* folding (i.e. the shape the tensor
        should have, with ``shape[mode] == matrix.shape[0]``).
    """
    matrix = np.asarray(matrix)
    shape = tuple(int(s) for s in shape)
    if not 0 <= mode < len(shape):
        raise DimensionError(
            f"mode {mode} out of range for target shape {shape}"
        )
    if matrix.ndim != 2:
        raise DimensionError("fold expects a 2-D matricised tensor")
    expected_rows = shape[mode]
    other = tuple(s for i, s in enumerate(shape) if i != mode)
    expected_cols = int(np.prod(other)) if other else 1
    if matrix.shape != (expected_rows, expected_cols):
        raise DimensionError(
            f"matrix of shape {matrix.shape} cannot be folded into {shape} "
            f"along mode {mode} (expected {(expected_rows, expected_cols)})"
        )
    moved_shape = (shape[mode],) + other
    return np.moveaxis(matrix.reshape(moved_shape), 0, mode)


def mode_product(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Compute the n-mode product ``tensor ×_mode matrix``.

    ``matrix`` must have shape ``(J, tensor.shape[mode])``; the result has
    the same shape as ``tensor`` except that axis ``mode`` has size ``J``.
    """
    tensor = np.asarray(tensor)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise DimensionError("mode_product expects a 2-D matrix")
    if matrix.shape[1] != tensor.shape[mode]:
        raise DimensionError(
            f"matrix with {matrix.shape[1]} columns cannot multiply mode "
            f"{mode} of size {tensor.shape[mode]}"
        )
    unfolded = unfold(tensor, mode)
    product = matrix @ unfolded
    new_shape = list(tensor.shape)
    new_shape[mode] = matrix.shape[0]
    return fold(product, mode, new_shape)


def multi_mode_product(
    tensor: np.ndarray,
    matrices: Iterable[Tuple[int, np.ndarray]],
) -> np.ndarray:
    """Apply several n-mode products in sequence.

    ``matrices`` is an iterable of ``(mode, matrix)`` pairs.  Products along
    distinct modes commute, so the order only affects intermediate sizes;
    callers that care about peak memory should order the pairs so the most
    size-reducing products come first.
    """
    result = np.asarray(tensor)
    for mode, matrix in matrices:
        result = mode_product(result, matrix, mode)
    return result


def frobenius_norm(tensor: np.ndarray) -> float:
    """Frobenius norm of a dense tensor (Eq. 15 of the paper)."""
    tensor = np.asarray(tensor, dtype=float)
    return float(np.sqrt(np.sum(tensor * tensor)))


def outer_product(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Rank-one tensor built from the outer product of ``vectors``."""
    if not vectors:
        raise DimensionError("outer_product requires at least one vector")
    result = np.asarray(vectors[0], dtype=float)
    for vector in vectors[1:]:
        result = np.multiply.outer(result, np.asarray(vector, dtype=float))
    return result


def tensor_from_tucker(
    core: np.ndarray, factors: Sequence[np.ndarray]
) -> np.ndarray:
    """Reconstruct ``core ×_1 factors[0] ×_2 factors[1] ...`` densely.

    Only intended for small tensors (tests, the paper's running example);
    the whole point of CubeLSI's Theorems 1 and 2 is that real experiments
    never need to call this.
    """
    core = np.asarray(core, dtype=float)
    if len(factors) != core.ndim:
        raise DimensionError(
            f"need one factor per mode: core has order {core.ndim}, got "
            f"{len(factors)} factors"
        )
    return multi_mode_product(core, list(enumerate(factors)))
