"""Tucker decomposition by alternating least squares (HOOI).

This is the ``ALS`` routine invoked in step 1 of the paper's Algorithm 1.
Given the sparse tag-assignment tensor ``F`` and target core dimensions
``(J1, J2, J3)`` it returns

* the core tensor ``S`` (Eq. 16),
* the column-orthonormal factor matrices ``Y(1), Y(2), Y(3)``, and
* the mode-n singular value vectors, of which ``Lambda_2`` (mode 2 = tags)
  is the by-product that Theorem 2 uses to build the distance kernel
  ``Sigma = (Lambda_2[:J2])^2`` without ever materialising the purified
  tensor ``F_hat``.

The implementation never builds a dense ``|U| x |T| x |R|`` array: each mode
update first shrinks the other modes with the current (small) factors and
only then unfolds and runs a truncated SVD.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import dense as dense_ops
from repro.tensor.hosvd import hosvd, resolve_ranks, truncated_svd
from repro.tensor.sparse import SparseTensor
from repro.utils.errors import ConfigurationError, DimensionError
from repro.utils.errors import ConvergenceWarning
from repro.utils.rng import SeedLike, make_rng

TensorLike = Union[np.ndarray, SparseTensor]


@dataclass
class TuckerDecomposition:
    """Output of :func:`tucker_als`.

    Attributes
    ----------
    core:
        Core tensor ``S`` with shape ``ranks``.
    factors:
        Column-orthonormal factor matrices, one per mode;
        ``factors[n]`` has shape ``(I_n, J_n)``.
    mode_singular_values:
        For every mode, the singular values obtained in that mode's final
        ALS update.  ``mode_singular_values[1]`` is the paper's ``Lambda_2``.
    fit_history:
        The model fit ``||S||_F / ||F||_F`` after each ALS sweep; it is
        non-decreasing up to numerical noise and is used for convergence.
    converged:
        Whether the fit improvement dropped below ``tol`` before
        ``max_iter`` sweeps were exhausted.
    input_shape:
        Shape of the decomposed tensor (``I_1, ..., I_m``).
    """

    core: np.ndarray
    factors: List[np.ndarray]
    mode_singular_values: List[np.ndarray]
    fit_history: List[float] = field(default_factory=list)
    converged: bool = True
    input_shape: Tuple[int, ...] = ()

    @property
    def ranks(self) -> Tuple[int, ...]:
        """Core dimensions ``(J_1, ..., J_m)``."""
        return tuple(self.core.shape)

    @property
    def order(self) -> int:
        return self.core.ndim

    @property
    def lambda2(self) -> np.ndarray:
        """The mode-2 singular values (``Lambda_2`` in the paper)."""
        if self.order < 2:
            raise DimensionError("lambda2 requires a tensor of order >= 2")
        return self.mode_singular_values[1]

    @property
    def fit(self) -> float:
        """Final model fit ``||S||_F / ||F||_F`` (1.0 = exact)."""
        return self.fit_history[-1] if self.fit_history else 0.0

    def reconstruct(self) -> np.ndarray:
        """Densely reconstruct ``F_hat`` (small tensors / tests only)."""
        return dense_ops.tensor_from_tucker(self.core, self.factors)

    def core_unfolding(self, mode: int) -> np.ndarray:
        """Mode-n unfolding of the core tensor."""
        return dense_ops.unfold(self.core, mode)

    def compressed_size(self) -> int:
        """Number of floating-point values needed to store ``S`` and all factors."""
        total = int(np.prod(self.ranks))
        for factor in self.factors:
            total += int(factor.size)
        return total

    def dense_size(self) -> int:
        """Number of values a dense reconstruction ``F_hat`` would need."""
        return int(np.prod([int(s) for s in self.input_shape]))


def reconstruct(decomposition: TuckerDecomposition) -> np.ndarray:
    """Module-level convenience wrapper for ``decomposition.reconstruct()``."""
    return decomposition.reconstruct()


def _project_except(
    tensor: TensorLike, factors: Sequence[np.ndarray], skip_mode: int
) -> np.ndarray:
    """Compute ``F ×_{m != skip_mode} Y(m)^T`` as a dense tensor.

    The first applied projection handles the sparse input; every subsequent
    product operates on an already-small dense intermediate.
    """
    order = len(factors)
    modes = [m for m in range(order) if m != skip_mode]
    result: Union[np.ndarray, SparseTensor] = tensor
    first = True
    for mode in modes:
        matrix = factors[mode].T
        if first and isinstance(result, SparseTensor):
            result = result.mode_product(matrix, mode)
        else:
            result = dense_ops.mode_product(np.asarray(result), matrix, mode)
        first = False
    if isinstance(result, SparseTensor):  # order-1 edge case: nothing projected
        result = result.to_dense()
    return np.asarray(result, dtype=float)


def _input_norm(tensor: TensorLike) -> float:
    if isinstance(tensor, SparseTensor):
        return tensor.frobenius_norm()
    return dense_ops.frobenius_norm(np.asarray(tensor, dtype=float))


def tucker_als(
    tensor: TensorLike,
    ranks: Optional[Sequence[int]] = None,
    reduction_ratios: Optional[Sequence[float]] = None,
    max_iter: int = 25,
    tol: float = 1e-6,
    seed: SeedLike = None,
    init: str = "hosvd",
) -> TuckerDecomposition:
    """Tucker decomposition via higher-order orthogonal iteration.

    Parameters
    ----------
    tensor:
        Dense array or :class:`SparseTensor` of order >= 2.
    ranks / reduction_ratios:
        Core dimensions, exactly one of the two must be given.  Ratios follow
        the paper's convention ``c_n = I_n / J_n``.
    max_iter:
        Maximum number of ALS sweeps over all modes.
    tol:
        Convergence threshold on the change in fit between sweeps.
    seed:
        Seed controlling the random initialisation (``init="random"``) and
        ARPACK start vectors.
    init:
        ``"hosvd"`` (default) or ``"random"`` initial factor matrices.
    """
    shape = tuple(tensor.shape)
    if len(shape) < 2:
        raise DimensionError("tucker_als requires a tensor of order >= 2")
    target = resolve_ranks(shape, ranks=ranks, reduction_ratios=reduction_ratios)
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if tol < 0:
        raise ConfigurationError(f"tol must be non-negative, got {tol}")

    rng = make_rng(seed)
    order = len(shape)
    norm_f = _input_norm(tensor)
    if norm_f == 0.0:
        # A zero tensor decomposes trivially; return zero core and arbitrary
        # orthonormal factors.
        factors = [np.eye(shape[m], target[m]) for m in range(order)]
        core = np.zeros(target, dtype=float)
        return TuckerDecomposition(
            core=core,
            factors=factors,
            mode_singular_values=[np.zeros(target[m]) for m in range(order)],
            fit_history=[1.0],
            converged=True,
            input_shape=shape,
        )

    if init == "hosvd":
        factors = list(hosvd(tensor, ranks=target, seed=rng).factors)
    elif init == "random":
        factors = []
        for mode in range(order):
            random_matrix = rng.standard_normal((shape[mode], target[mode]))
            q, _ = np.linalg.qr(random_matrix)
            factors.append(q[:, : target[mode]])
    else:
        raise ConfigurationError(f"unknown init method {init!r}")

    singular_values: List[np.ndarray] = [np.zeros(target[m]) for m in range(order)]
    fit_history: List[float] = []
    previous_fit = -np.inf
    last_delta = np.inf
    converged = False

    for _ in range(max_iter):
        for mode in range(order):
            projected = _project_except(tensor, factors, skip_mode=mode)
            unfolded = dense_ops.unfold(projected, mode)
            u, s, _ = truncated_svd(unfolded, target[mode], seed=rng)
            # Pad in the degenerate case where the unfolding had lower rank
            # than requested.
            if u.shape[1] < target[mode]:
                pad = target[mode] - u.shape[1]
                u = np.hstack([u, np.zeros((u.shape[0], pad))])
                s = np.concatenate([s, np.zeros(pad)])
            factors[mode] = u
            singular_values[mode] = s

        core = _compute_core(tensor, factors)
        fit = dense_ops.frobenius_norm(core) / norm_f
        fit_history.append(fit)
        last_delta = abs(fit - previous_fit)
        if last_delta < tol:
            converged = True
            break
        previous_fit = fit

    if not converged:
        warnings.warn(
            f"tucker_als did not converge within {max_iter} sweeps "
            f"(last fit change {last_delta:.2e})",
            ConvergenceWarning,
            stacklevel=2,
        )

    core = _compute_core(tensor, factors)
    return TuckerDecomposition(
        core=core,
        factors=factors,
        mode_singular_values=singular_values,
        fit_history=fit_history,
        converged=converged,
        input_shape=shape,
    )


def _compute_core(tensor: TensorLike, factors: Sequence[np.ndarray]) -> np.ndarray:
    """Core tensor ``S = F ×_1 Y1^T ... ×_m Ym^T`` (Eq. 16)."""
    result: Union[np.ndarray, SparseTensor] = tensor
    for mode, factor in enumerate(factors):
        matrix = factor.T
        if isinstance(result, SparseTensor):
            result = result.mode_product(matrix, mode)
        else:
            result = dense_ops.mode_product(np.asarray(result), matrix, mode)
    return np.asarray(result, dtype=float)
