"""Truncated higher-order SVD (HOSVD).

HOSVD computes, for every mode, the leading left singular vectors of the
mode-n unfolding and uses them as factor matrices.  It is both a reasonable
stand-alone decomposition and the standard initialiser for the ALS/HOOI
iteration in :mod:`repro.tensor.tucker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.tensor import dense as dense_ops
from repro.tensor.sparse import SparseTensor
from repro.utils.errors import ConfigurationError, DimensionError
from repro.utils.rng import SeedLike, make_rng

TensorLike = Union[np.ndarray, SparseTensor]


def truncated_svd(
    matrix: Union[np.ndarray, sp.spmatrix],
    rank: int,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Leading ``rank`` singular triplets of ``matrix``.

    Returns ``(U, s, Vt)`` with singular values sorted in decreasing order.
    Dense matrices (or requests for nearly full rank) fall back to LAPACK's
    exact SVD; large sparse matrices use ARPACK via
    :func:`scipy.sparse.linalg.svds`.
    """
    if rank <= 0:
        raise ConfigurationError(f"rank must be positive, got {rank}")
    n_rows, n_cols = matrix.shape
    max_rank = min(n_rows, n_cols)
    rank = min(rank, max_rank)

    use_dense = (
        not sp.issparse(matrix)
        or rank >= max_rank - 1
        or max_rank <= 32
    )
    if use_dense:
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=float)
        u_full, s_full, vt_full = np.linalg.svd(dense, full_matrices=False)
        return u_full[:, :rank], s_full[:rank], vt_full[:rank, :]

    rng = make_rng(seed)
    v0 = rng.standard_normal(min(n_rows, n_cols))
    u, s, vt = spla.svds(matrix.astype(float), k=rank, v0=v0)
    # svds returns singular values in ascending order.
    order = np.argsort(s)[::-1]
    return u[:, order], s[order], vt[order, :]


@dataclass
class HosvdResult:
    """Result of a truncated HOSVD.

    Attributes
    ----------
    core:
        The core tensor ``S`` of shape ``ranks``.
    factors:
        One column-orthonormal factor matrix per mode,
        ``factors[n]`` has shape ``(I_n, J_n)``.
    singular_values:
        The singular values of each mode-n unfolding (length ``J_n``);
        ``singular_values[1]`` is the ``Lambda_2`` the paper's Theorem 2
        refers to when HOSVD is used directly.
    """

    core: np.ndarray
    factors: List[np.ndarray]
    singular_values: List[np.ndarray]

    @property
    def ranks(self) -> Tuple[int, ...]:
        return self.core.shape


def _unfold_any(tensor: TensorLike, mode: int) -> Union[np.ndarray, sp.csr_matrix]:
    if isinstance(tensor, SparseTensor):
        return tensor.unfold(mode)
    return dense_ops.unfold(np.asarray(tensor, dtype=float), mode)


def _shape_of(tensor: TensorLike) -> Tuple[int, ...]:
    return tuple(tensor.shape)


def resolve_ranks(
    shape: Sequence[int],
    ranks: Optional[Sequence[int]] = None,
    reduction_ratios: Optional[Sequence[float]] = None,
) -> Tuple[int, ...]:
    """Translate explicit ranks or paper-style reduction ratios into ranks.

    The paper parameterises the decomposition with reduction ratios
    ``c_n = I_n / J_n`` (Definition 2); ``resolve_ranks`` accepts either the
    ratios or the target ranks directly and always returns valid ranks
    ``1 <= J_n <= I_n``.
    """
    shape = tuple(int(s) for s in shape)
    if (ranks is None) == (reduction_ratios is None):
        raise ConfigurationError(
            "specify exactly one of `ranks` or `reduction_ratios`"
        )
    if ranks is not None:
        if len(ranks) != len(shape):
            raise ConfigurationError(
                f"need one rank per mode: got {len(ranks)} for order {len(shape)}"
            )
        resolved = []
        for size, rank in zip(shape, ranks):
            rank = int(rank)
            if rank <= 0:
                raise ConfigurationError(f"ranks must be positive, got {rank}")
            resolved.append(min(rank, size))
        return tuple(resolved)
    assert reduction_ratios is not None
    if len(reduction_ratios) != len(shape):
        raise ConfigurationError(
            "need one reduction ratio per mode: got "
            f"{len(reduction_ratios)} for order {len(shape)}"
        )
    resolved = []
    for size, ratio in zip(shape, reduction_ratios):
        ratio = float(ratio)
        if ratio < 1.0:
            raise ConfigurationError(
                f"reduction ratios must be >= 1, got {ratio}"
            )
        resolved.append(max(1, int(round(size / ratio))))
    return tuple(resolved)


def hosvd(
    tensor: TensorLike,
    ranks: Optional[Sequence[int]] = None,
    reduction_ratios: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
) -> HosvdResult:
    """Truncated HOSVD of a dense or sparse tensor.

    Parameters
    ----------
    tensor:
        Dense ``numpy`` array or :class:`SparseTensor` of any order.
    ranks / reduction_ratios:
        Target core dimensions, given either directly or as the paper's
        reduction ratios ``c_n = I_n / J_n``.  Exactly one must be provided.
    seed:
        Seed for the ARPACK starting vector (only used on large sparse
        unfoldings).
    """
    shape = _shape_of(tensor)
    if len(shape) < 2:
        raise DimensionError("hosvd requires a tensor of order >= 2")
    target = resolve_ranks(shape, ranks=ranks, reduction_ratios=reduction_ratios)

    factors: List[np.ndarray] = []
    singular_values: List[np.ndarray] = []
    for mode, rank in enumerate(target):
        unfolded = _unfold_any(tensor, mode)
        u, s, _ = truncated_svd(unfolded, rank, seed=seed)
        factors.append(u)
        singular_values.append(s)

    core = _project_to_core(tensor, factors)
    return HosvdResult(core=core, factors=factors, singular_values=singular_values)


def _project_to_core(tensor: TensorLike, factors: Sequence[np.ndarray]) -> np.ndarray:
    """Compute ``S = F ×_1 Y1^T ×_2 Y2^T ... ×_m Ym^T`` (Eq. 16)."""
    if isinstance(tensor, SparseTensor):
        # The first projection turns the sparse tensor into a small dense one.
        projected = tensor.mode_product(factors[0].T, 0)
    else:
        projected = dense_ops.mode_product(
            np.asarray(tensor, dtype=float), factors[0].T, 0
        )
    for mode in range(1, len(factors)):
        projected = dense_ops.mode_product(projected, factors[mode].T, mode)
    return projected
