"""Tensor algebra substrate.

CubeLSI models a folksonomy as a third-order binary tensor over
``users x tags x resources`` and decomposes it with a truncated Tucker
decomposition.  This subpackage provides everything the core algorithm needs,
implemented from scratch on top of numpy / scipy.sparse:

* :mod:`repro.tensor.dense` — mode-n unfolding/folding and n-mode products
  for dense ``numpy`` arrays.
* :mod:`repro.tensor.sparse` — a COO sparse tensor with sparse unfoldings,
  slices and Frobenius norms; this is the on-ram representation of the raw
  tag-assignment tensor ``F``.
* :mod:`repro.tensor.hosvd` — truncated higher-order SVD, used both on its
  own and as the initialiser for ALS.
* :mod:`repro.tensor.tucker` — the alternating least squares (HOOI) Tucker
  decomposition returning the core tensor, factor matrices and the mode-2
  singular values ``lambda2`` that Theorem 2 of the paper turns into the
  distance kernel ``Sigma``.
"""

from repro.tensor.dense import (
    fold,
    unfold,
    mode_product,
    multi_mode_product,
    frobenius_norm,
)
from repro.tensor.sparse import SparseTensor
from repro.tensor.hosvd import hosvd, truncated_svd
from repro.tensor.tucker import TuckerDecomposition, tucker_als, reconstruct

__all__ = [
    "fold",
    "unfold",
    "mode_product",
    "multi_mode_product",
    "frobenius_norm",
    "SparseTensor",
    "hosvd",
    "truncated_svd",
    "TuckerDecomposition",
    "tucker_als",
    "reconstruct",
]
