"""The Freq baseline (Section VI-B).

For a query ``q`` and resource ``r`` with tag set ``tags(r)``,

    Sim_freq(q, r) = sum_{t in q ∩ tags(r)} |users(t, r)|
                     ------------------------------------
                     sum_{t in tags(r)}     |users(t, r)|

i.e. the fraction of tagging "votes" on ``r`` that used one of the query
tags.  It uses the tagger dimension (through the user counts) but performs
no semantic analysis at all.

The offline component additionally compiles the vote fractions into a CSR
matrix over the tag vocabulary so that a batch of queries is scored with one
sparse matmul — the same backend style the vector-space methods use, which
keeps the Table VI timing comparison apples-to-apples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import RankedList, Ranker
from repro.search.matrix_space import select_top_k
from repro.tagging.folksonomy import Folksonomy


class FreqRanker(Ranker):
    """Tagger-vote-fraction ranking."""

    name = "freq"

    def __init__(self) -> None:
        super().__init__()
        #: resource -> {tag -> number of distinct users who used it there}
        self._votes: Dict[str, Dict[str, int]] = {}
        #: resource -> total votes over all its tags
        self._total_votes: Dict[str, float] = {}
        self._resource_ids: List[str] = []
        self._tag_columns: Dict[str, int] = {}
        self._fractions: Optional[sp.csr_matrix] = None

    def _fit(self, folksonomy: Folksonomy) -> None:
        self._votes = {}
        self._total_votes = {}
        for resource in folksonomy.resources:
            votes = {
                tag: len(folksonomy.users_of(tag, resource))
                for tag in folksonomy.tags_of_resource(resource)
            }
            self._votes[resource] = votes
            self._total_votes[resource] = float(sum(votes.values()))
        self._compile()

    def _rank(self, query_tags: List[str], top_k: Optional[int]) -> RankedList:
        query = set(query_tags)
        scores: Dict[str, float] = {}
        for resource, votes in self._votes.items():
            total = self._total_votes[resource]
            if total == 0.0:
                continue
            matched = sum(count for tag, count in votes.items() if tag in query)
            if matched > 0:
                scores[resource] = matched / total
        return self._sort_ranked(scores)

    def _rank_batch(
        self, queries: List[List[str]], top_k: Optional[int]
    ) -> List[RankedList]:
        assert self._fractions is not None
        rows: List[int] = []
        columns: List[int] = []
        for row, tags in enumerate(queries):
            for tag in set(tags):
                column = self._tag_columns.get(tag)
                if column is not None:
                    rows.append(row)
                    columns.append(column)
        indicator = sp.csr_matrix(
            (np.ones(len(rows), dtype=np.float64), (rows, columns)),
            shape=(len(queries), len(self._tag_columns)),
        )
        products = indicator @ self._fractions.T

        ranked_lists: List[RankedList] = []
        for row in range(len(queries)):
            start, end = products.indptr[row], products.indptr[row + 1]
            candidates = products.indices[start:end]
            scores = products.data[start:end]
            selected = select_top_k(candidates, scores, top_k)
            ranked_lists.append(
                [
                    (self._resource_ids[candidates[index]], float(scores[index]))
                    for index in selected
                ]
            )
        return ranked_lists

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _compile(self) -> None:
        """Freeze the vote fractions into CSR form for batched scoring.

        Rows are laid out in ascending resource-id order so row position
        doubles as the (score, resource) tie-break of :meth:`_sort_ranked`.
        """
        self._resource_ids = sorted(self._votes)
        tags = sorted({tag for votes in self._votes.values() for tag in votes})
        self._tag_columns = {tag: column for column, tag in enumerate(tags)}
        rows: List[int] = []
        columns: List[int] = []
        values: List[float] = []
        for row, resource in enumerate(self._resource_ids):
            total = self._total_votes[resource]
            if total == 0.0:
                continue
            for tag, count in self._votes[resource].items():
                if count > 0:
                    rows.append(row)
                    columns.append(self._tag_columns[tag])
                    values.append(count / total)
        self._fractions = sp.csr_matrix(
            (values, (rows, columns)),
            shape=(len(self._resource_ids), len(tags)),
            dtype=np.float64,
        )
