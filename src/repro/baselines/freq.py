"""The Freq baseline (Section VI-B).

For a query ``q`` and resource ``r`` with tag set ``tags(r)``,

    Sim_freq(q, r) = sum_{t in q ∩ tags(r)} |users(t, r)|
                     ------------------------------------
                     sum_{t in tags(r)}     |users(t, r)|

i.e. the fraction of tagging "votes" on ``r`` that used one of the query
tags.  It uses the tagger dimension (through the user counts) but performs
no semantic analysis at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import RankedList, Ranker
from repro.tagging.folksonomy import Folksonomy


class FreqRanker(Ranker):
    """Tagger-vote-fraction ranking."""

    name = "freq"

    def __init__(self) -> None:
        super().__init__()
        #: resource -> {tag -> number of distinct users who used it there}
        self._votes: Dict[str, Dict[str, int]] = {}
        #: resource -> total votes over all its tags
        self._total_votes: Dict[str, float] = {}

    def _fit(self, folksonomy: Folksonomy) -> None:
        self._votes = {}
        self._total_votes = {}
        for resource in folksonomy.resources:
            votes = {
                tag: len(folksonomy.users_of(tag, resource))
                for tag in folksonomy.tags_of_resource(resource)
            }
            self._votes[resource] = votes
            self._total_votes[resource] = float(sum(votes.values()))

    def _rank(self, query_tags: List[str], top_k: Optional[int]) -> RankedList:
        query = set(query_tags)
        scores: Dict[str, float] = {}
        for resource, votes in self._votes.items():
            total = self._total_votes[resource]
            if total == 0.0:
                continue
            matched = sum(count for tag, count in votes.items() if tag in query)
            if matched > 0:
                scores[resource] = matched / total
        return self._sort_ranked(scores)
