"""Factory for the six ranking methods used in the evaluation.

The experiment drivers refer to rankers by name ("cubelsi", "cubesim",
"folkrank", "freq", "lsi", "bow"); this module centralises their default
construction so every table and figure uses consistent hyper-parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.baselines.base import Ranker
from repro.baselines.bow import BowRanker
from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.baselines.cubesim import CubeSimRanker
from repro.baselines.folkrank import FolkRankRanker
from repro.baselines.freq import FreqRanker
from repro.baselines.lsi import LsiRanker
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike

#: Order used in figures/tables (mirrors the paper's legend order).
DEFAULT_RANKER_NAMES = ("cubelsi", "cubesim", "folkrank", "freq", "lsi", "bow")

#: Per-mode reduction ratios (users, tags, resources) used by the ranking
#: experiments.  The user mode is compressed hard (interest groups are few),
#: the tag mode gently (concepts are many relative to tags in the scaled
#: corpora) and the resource mode moderately (archetypes are few).
DEFAULT_MODE_RATIOS: Tuple[float, float, float] = (25.0, 3.0, 40.0)

RatioLike = Union[float, Sequence[float]]


def default_ranker_names() -> List[str]:
    """The six method names in reporting order."""
    return list(DEFAULT_RANKER_NAMES)


def _normalize_ratios(reduction_ratios: RatioLike) -> Tuple[float, float, float]:
    if isinstance(reduction_ratios, (int, float)):
        value = float(reduction_ratios)
        return (value, value, value)
    ratios = tuple(float(r) for r in reduction_ratios)
    if len(ratios) != 3:
        raise ConfigurationError(
            "reduction_ratios must be a scalar or a length-3 sequence"
        )
    return ratios  # type: ignore[return-value]


def build_ranker(
    name: str,
    reduction_ratios: RatioLike = DEFAULT_MODE_RATIOS,
    num_concepts: Optional[int] = None,
    seed: SeedLike = 0,
    sigma: float = 1.0,
    min_rank: int = 4,
) -> Ranker:
    """Construct one ranking method by name with experiment-wide defaults.

    Parameters
    ----------
    name:
        One of ``cubelsi``, ``cubesim``, ``folkrank``, ``freq``, ``lsi``,
        ``bow`` (case-insensitive).
    reduction_ratios:
        Either a single reduction ratio applied to all three tensor modes
        (the paper's style, e.g. 50) or a ``(c1, c2, c3)`` triple.  LSI's
        latent rank uses the tag-mode ratio so the latent sizes stay
        comparable across methods.
    num_concepts:
        Number of distilled concepts for the semantic methods; ``None``
        lets the spectrum-coverage rule decide.
    seed / sigma / min_rank:
        Shared stochastic seed, affinity bandwidth and minimum latent rank.
    """
    ratios = _normalize_ratios(reduction_ratios)
    normalized = name.strip().lower()
    factories: Dict[str, Callable[[], Ranker]] = {
        "cubelsi": lambda: CubeLSIRanker(
            reduction_ratios=ratios,
            num_concepts=num_concepts,
            sigma=sigma,
            seed=seed,
            min_rank=min_rank,
        ),
        "cubesim": lambda: CubeSimRanker(
            num_concepts=num_concepts, sigma=sigma, seed=seed
        ),
        "folkrank": lambda: FolkRankRanker(),
        "freq": lambda: FreqRanker(),
        "lsi": lambda: LsiRanker(
            reduction_ratio=ratios[1],
            num_concepts=num_concepts,
            sigma=sigma,
            seed=seed,
            min_rank=min_rank,
        ),
        "bow": lambda: BowRanker(),
    }
    if normalized not in factories:
        raise ConfigurationError(
            f"unknown ranker {name!r}; available: {sorted(factories)}"
        )
    return factories[normalized]()


def build_all_rankers(
    names: Optional[Iterable[str]] = None,
    reduction_ratios: RatioLike = DEFAULT_MODE_RATIOS,
    num_concepts: Optional[int] = None,
    seed: SeedLike = 0,
    sigma: float = 1.0,
    min_rank: int = 4,
) -> Dict[str, Ranker]:
    """Construct several rankers keyed by name (defaults to all six)."""
    selected = list(names) if names is not None else default_ranker_names()
    return {
        name: build_ranker(
            name,
            reduction_ratios=reduction_ratios,
            num_concepts=num_concepts,
            seed=seed,
            sigma=sigma,
            min_rank=min_rank,
        )
        for name in selected
    }
