"""The five comparison ranking methods of Section VI-B plus CubeLSI's wrapper.

Every method implements the common :class:`~repro.baselines.base.Ranker`
interface (``fit(folksonomy)`` then ``rank(query_tags)``), so the ranking
quality and efficiency experiments can iterate over a uniform registry:

* :mod:`repro.baselines.freq` — the Freq tagger-vote heuristic,
* :mod:`repro.baselines.bow` — bag-of-words tf-idf over raw tags,
* :mod:`repro.baselines.lsi` — traditional 2-D LSI on the tag-resource matrix,
* :mod:`repro.baselines.cubesim` — tensor-slice distances without decomposition,
* :mod:`repro.baselines.folkrank` — FolkRank personalised weight propagation
  over the tripartite graph (with the underlying PageRank substrate in
  :mod:`repro.baselines.pagerank`),
* :mod:`repro.baselines.cubelsi_ranker` — CubeLSI itself behind the same
  interface.
"""

from repro.baselines.base import Ranker, RankedList, RankerTimings
from repro.baselines.freq import FreqRanker
from repro.baselines.bow import BowRanker
from repro.baselines.lsi import LsiRanker
from repro.baselines.cubesim import CubeSimRanker
from repro.baselines.folkrank import FolkRankRanker
from repro.baselines.pagerank import personalized_pagerank
from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.baselines.registry import build_ranker, default_ranker_names, build_all_rankers

__all__ = [
    "Ranker",
    "RankedList",
    "RankerTimings",
    "FreqRanker",
    "BowRanker",
    "LsiRanker",
    "CubeSimRanker",
    "FolkRankRanker",
    "personalized_pagerank",
    "CubeLSIRanker",
    "build_ranker",
    "default_ranker_names",
    "build_all_rankers",
]
