"""Personalised PageRank over arbitrary weighted graphs.

FolkRank (the paper's strongest baseline besides CubeLSI) is a personalised
PageRank variant on the tripartite user-tag-resource graph.  This module
provides the generic power-iteration substrate; the FolkRank-specific graph
construction and the "winner takes the difference" trick live in
:mod:`repro.baselines.folkrank`.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ConfigurationError, DimensionError


def row_stochastic(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Normalise the rows of a non-negative adjacency matrix to sum to one.

    Rows that sum to zero (dangling nodes) are left as zero rows; the
    power iteration handles them by redistributing their mass through the
    teleportation term.
    """
    adjacency = adjacency.tocsr().astype(float)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise DimensionError("adjacency matrix must be square")
    if adjacency.nnz and adjacency.data.min() < 0:
        raise ConfigurationError("adjacency weights must be non-negative")
    row_sums = np.asarray(adjacency.sum(axis=1)).ravel()
    scale = np.zeros_like(row_sums)
    nonzero = row_sums > 0
    scale[nonzero] = 1.0 / row_sums[nonzero]
    scaling = sp.diags(scale)
    return (scaling @ adjacency).tocsr()


def personalized_pagerank(
    adjacency: sp.spmatrix,
    preference: np.ndarray,
    damping: float = 0.7,
    max_iter: int = 100,
    tol: float = 1e-10,
) -> Tuple[np.ndarray, int]:
    """Power iteration for ``w <- d * A^T w + (1 - d) * p`` (paper Section II).

    Parameters
    ----------
    adjacency:
        Square non-negative adjacency matrix of the (undirected) graph.
    preference:
        The preference vector ``p``; it is normalised to sum to one.
    damping:
        The constant ``d`` controlling the influence of the random surfer.
    max_iter / tol:
        Power-iteration stopping parameters (L1 change of the weight vector).

    Returns
    -------
    (weights, iterations):
        The stationary weight vector and the number of iterations used.
    """
    if not 0.0 <= damping <= 1.0:
        raise ConfigurationError(f"damping must be in [0, 1], got {damping}")
    transition = row_stochastic(adjacency)
    size = transition.shape[0]
    preference = np.asarray(preference, dtype=float).ravel()
    if preference.shape[0] != size:
        raise DimensionError(
            f"preference vector has length {preference.shape[0]} but the "
            f"graph has {size} vertices"
        )
    if preference.min() < 0:
        raise ConfigurationError("preference vector must be non-negative")
    total = preference.sum()
    if total <= 0:
        preference = np.full(size, 1.0 / size)
    else:
        preference = preference / total

    weights = np.full(size, 1.0 / size)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        propagated = transition.T @ weights
        # Mass lost at dangling nodes is redistributed via the preference.
        lost = 1.0 - propagated.sum()
        updated = damping * (propagated + lost * preference) + (1.0 - damping) * preference
        change = float(np.abs(updated - weights).sum())
        weights = updated
        if change < tol:
            break
    return weights, iterations


def vector_from_mapping(
    values: Mapping[Hashable, float],
    index: Mapping[Hashable, int],
    size: int,
    default: float = 0.0,
) -> np.ndarray:
    """Build a dense vector from a sparse ``node -> value`` mapping."""
    vector = np.full(size, default, dtype=float)
    for node, value in values.items():
        position = index.get(node)
        if position is not None:
            vector[position] = value
    return vector
