"""The FolkRank baseline (Hotho et al., reproduced per Section II / VI-B).

FolkRank represents the folksonomy as an undirected weighted tripartite
graph over users, tags and resources.  The edge weights count co-occurrences
in tag assignments:

* ``(user, tag)``      — how many resources the user annotated with the tag,
* ``(user, resource)`` — how many tags the user gave to the resource,
* ``(tag, resource)``  — how many users assigned the tag to the resource.

Resources are ranked by the *differential* FolkRank weight: the personalised
PageRank with the query tags boosted in the preference vector, minus the
baseline PageRank with a uniform preference.  The differential form (from
the original FolkRank paper) removes the global popularity component and is
what makes the ranking query-specific.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import RankedList, Ranker
from repro.baselines.pagerank import personalized_pagerank
from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import ConfigurationError


class FolkRankRanker(Ranker):
    """Differential personalised PageRank over the tripartite graph."""

    name = "folkrank"

    def __init__(
        self,
        damping: float = 0.7,
        query_boost: float = 1.0,
        max_iter: int = 100,
        tol: float = 1e-10,
        differential: bool = True,
    ) -> None:
        super().__init__()
        if query_boost <= 0:
            raise ConfigurationError("query_boost must be positive")
        self._damping = damping
        self._query_boost = query_boost
        self._max_iter = max_iter
        self._tol = tol
        self._differential = differential

        self._node_index: Dict[Tuple[str, str], int] = {}
        self._adjacency: Optional[sp.csr_matrix] = None
        self._baseline_weights: Optional[np.ndarray] = None
        self._resource_positions: Dict[str, int] = {}
        self._tag_positions: Dict[str, int] = {}
        self._num_nodes = 0

    # ------------------------------------------------------------------ #
    # Offline: build the tripartite graph and the baseline rank
    # ------------------------------------------------------------------ #
    def _fit(self, folksonomy: Folksonomy) -> None:
        nodes: List[Tuple[str, str]] = (
            [("user", u) for u in folksonomy.users]
            + [("tag", t) for t in folksonomy.tags]
            + [("resource", r) for r in folksonomy.resources]
        )
        self._node_index = {node: i for i, node in enumerate(nodes)}
        self._num_nodes = len(nodes)
        self._tag_positions = {
            t: self._node_index[("tag", t)] for t in folksonomy.tags
        }
        self._resource_positions = {
            r: self._node_index[("resource", r)] for r in folksonomy.resources
        }

        pair_counts: Dict[Tuple[int, int], float] = {}

        def bump(node_a: Tuple[str, str], node_b: Tuple[str, str]) -> None:
            i, j = self._node_index[node_a], self._node_index[node_b]
            pair_counts[(i, j)] = pair_counts.get((i, j), 0.0) + 1.0
            pair_counts[(j, i)] = pair_counts.get((j, i), 0.0) + 1.0

        for assignment in folksonomy.assignments:
            user = ("user", assignment.user)
            tag = ("tag", assignment.tag)
            resource = ("resource", assignment.resource)
            bump(user, tag)
            bump(user, resource)
            bump(tag, resource)

        rows = [i for (i, _j) in pair_counts]
        cols = [j for (_i, j) in pair_counts]
        data = list(pair_counts.values())
        self._adjacency = sp.coo_matrix(
            (data, (rows, cols)), shape=(self._num_nodes, self._num_nodes)
        ).tocsr()

        if self._differential:
            uniform = np.full(self._num_nodes, 1.0)
            self._baseline_weights, _ = personalized_pagerank(
                self._adjacency,
                uniform,
                damping=self._damping,
                max_iter=self._max_iter,
                tol=self._tol,
            )
        else:
            self._baseline_weights = np.zeros(self._num_nodes)

    # ------------------------------------------------------------------ #
    # Online: one personalised PageRank per query
    # ------------------------------------------------------------------ #
    def _rank(self, query_tags: List[str], top_k: Optional[int]) -> RankedList:
        assert self._adjacency is not None and self._baseline_weights is not None
        preference = np.full(self._num_nodes, 1.0)
        matched = 0
        for tag in query_tags:
            position = self._tag_positions.get(tag)
            if position is not None:
                preference[position] += self._query_boost * self._num_nodes
                matched += 1
        if matched == 0:
            return []

        weights, _ = personalized_pagerank(
            self._adjacency,
            preference,
            damping=self._damping,
            max_iter=self._max_iter,
            tol=self._tol,
        )
        differential = weights - self._baseline_weights

        scores: Dict[str, float] = {}
        for resource, position in self._resource_positions.items():
            score = float(differential[position])
            if score > 0.0:
                scores[resource] = score
        return self._sort_ranked(scores)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        if self._adjacency is None:
            return 0
        return int(self._adjacency.nnz // 2)
