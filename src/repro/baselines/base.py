"""Common interface shared by all ranking methods.

A :class:`Ranker` is fitted once on a folksonomy (the offline component) and
then answers tag queries with a ranked list of resources (the online
component).  Fit and query wall-clock times are recorded so the efficiency
experiments (Tables V and VI) can read them off any ranker uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.tagging.folksonomy import Folksonomy
from repro.utils.errors import NotFittedError
from repro.utils.timing import Timer

if TYPE_CHECKING:  # runtime import would close the search -> core -> search cycle
    from repro.search.engine import SearchEngine

#: A ranked list: ``(resource, score)`` pairs sorted by decreasing score.
RankedList = List[Tuple[str, float]]


@dataclass
class RankerTimings:
    """Wall-clock bookkeeping of a ranker."""

    fit_seconds: float = 0.0
    query_seconds_total: float = 0.0
    queries_processed: int = 0
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_query_seconds(self) -> float:
        if self.queries_processed == 0:
            return 0.0
        return self.query_seconds_total / self.queries_processed


class Ranker(abc.ABC):
    """Abstract base class of every ranking method in the evaluation."""

    #: short identifier used in experiment tables ("cubelsi", "bow", ...)
    name: str = "ranker"

    def __init__(self) -> None:
        self._folksonomy: Optional[Folksonomy] = None
        self.timings = RankerTimings()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def fit(self, folksonomy: Folksonomy) -> "Ranker":
        """Run the offline component on ``folksonomy``; returns ``self``."""
        timer = Timer().start()
        self._fit(folksonomy)
        self.timings.fit_seconds = timer.stop()
        self._folksonomy = folksonomy
        return self

    def rank(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> RankedList:
        """Rank resources for a tag query (offline model must be fitted).

        Empty queries rank nothing: they return an empty list without
        reaching the method-specific scoring code.
        """
        if self._folksonomy is None:
            raise NotFittedError(f"{type(self).__name__}.fit() has not been called")
        timer = Timer().start()
        ranked = self._rank(list(query_tags), top_k) if query_tags else []
        elapsed = timer.stop()
        self.timings.query_seconds_total += elapsed
        self.timings.queries_processed += 1
        if top_k is not None:
            ranked = ranked[:top_k]
        return ranked

    def rank_batch(
        self,
        queries: Sequence[Sequence[str]],
        top_k: Optional[int] = None,
    ) -> List[RankedList]:
        """Rank a whole batch of queries in one timed pass.

        The default implementation loops over :meth:`_rank`; rankers with a
        vectorized backend override :meth:`_rank_batch` to score the batch
        in bulk.  Timing bookkeeping counts every query of the batch.
        """
        if self._folksonomy is None:
            raise NotFittedError(f"{type(self).__name__}.fit() has not been called")
        tag_lists = [list(tags) for tags in queries]
        timer = Timer().start()
        ranked_lists = self._rank_batch(tag_lists, top_k)
        elapsed = timer.stop()
        self.timings.query_seconds_total += elapsed
        self.timings.queries_processed += len(tag_lists)
        if top_k is not None:
            ranked_lists = [ranked[:top_k] for ranked in ranked_lists]
        return ranked_lists

    def ranked_resources(
        self, query_tags: Sequence[str], top_k: Optional[int] = None
    ) -> List[str]:
        """Only the resource ids of :meth:`rank`, in order."""
        return [resource for resource, _score in self.rank(query_tags, top_k)]

    @property
    def folksonomy(self) -> Folksonomy:
        if self._folksonomy is None:
            raise NotFittedError(f"{type(self).__name__}.fit() has not been called")
        return self._folksonomy

    @property
    def is_fitted(self) -> bool:
        return self._folksonomy is not None

    # ------------------------------------------------------------------ #
    # To implement
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _fit(self, folksonomy: Folksonomy) -> None:
        """Offline computation (index building, decompositions, ...)."""

    @abc.abstractmethod
    def _rank(self, query_tags: List[str], top_k: Optional[int]) -> RankedList:
        """Online computation: score and sort resources for a query."""

    def _rank_batch(
        self, queries: List[List[str]], top_k: Optional[int]
    ) -> List[RankedList]:
        """Batched online computation; default falls back to a query loop."""
        return [self._rank(tags, top_k) if tags else [] for tags in queries]

    # ------------------------------------------------------------------ #
    # Helpers shared by subclasses
    # ------------------------------------------------------------------ #
    @staticmethod
    def _sort_ranked(scores: Dict[str, float]) -> RankedList:
        """Deterministically sort a ``resource -> score`` map."""
        return sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))


class EngineBackedRanker(Ranker):
    """Base for rankers whose online component is a :class:`SearchEngine`.

    Subclasses build a concept model offline in :meth:`_fit` and assign the
    resulting engine to ``self._engine``; ranking (single and batched) then
    uniformly goes through the engine's backend, so every vector-space
    method measures the exact same online code path in the timing tables.
    """

    def __init__(self) -> None:
        super().__init__()
        self._engine: Optional["SearchEngine"] = None

    @property
    def engine(self) -> "SearchEngine":
        if self._engine is None:
            raise NotFittedError(f"{type(self).__name__}.fit() has not been called")
        return self._engine

    def _rank(self, query_tags: List[str], top_k: Optional[int]) -> RankedList:
        results = self.engine.search(query_tags, top_k=top_k)
        return [(result.resource, result.score) for result in results]

    def _rank_batch(
        self, queries: List[List[str]], top_k: Optional[int]
    ) -> List[RankedList]:
        batched = self.engine.rank_batch(queries, top_k=top_k)
        return [
            [(result.resource, result.score) for result in results]
            for results in batched
        ]
