"""The LSI baseline (Section VI-B).

Traditional latent semantic indexing: project the third-order tensor onto
the 2-D tag-resource matrix (dropping the tagger dimension), run a truncated
SVD, derive pairwise tag distances in the latent space, cluster tags into
concepts and rank with the same concept-space VSM CubeLSI uses.  The only
difference from CubeLSI is therefore the missing tagger dimension — exactly
the comparison the paper draws.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import EngineBackedRanker
from repro.core.concepts import ConceptModel, distill_concepts
from repro.search.engine import SearchEngine
from repro.tagging.folksonomy import Folksonomy
from repro.tensor.hosvd import truncated_svd
from repro.utils.rng import SeedLike


class LsiRanker(EngineBackedRanker):
    """2-D LSI on the user-aggregated tag-resource matrix."""

    name = "lsi"

    def __init__(
        self,
        rank: Optional[int] = None,
        reduction_ratio: float = 50.0,
        num_concepts: Optional[int] = None,
        sigma: float = 1.0,
        seed: SeedLike = 0,
        min_rank: int = 8,
    ) -> None:
        super().__init__()
        self._target_rank = rank
        self._reduction_ratio = reduction_ratio
        self._num_concepts = num_concepts
        self._sigma = sigma
        self._seed = seed
        self._min_rank = min_rank
        self._concept_model: Optional[ConceptModel] = None
        self._tag_distances: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Offline
    # ------------------------------------------------------------------ #
    def _fit(self, folksonomy: Folksonomy) -> None:
        matrix = folksonomy.to_tag_resource_matrix()
        rank = self._resolve_rank(matrix.shape)
        u, s, _vt = truncated_svd(matrix, rank, seed=self._seed)

        # In the latent space each tag i is the row u_i scaled by the
        # singular values; distances there mirror distances between the
        # rank-reduced tag-resource rows (the classical LSI similarity).
        latent = u * s[None, :]
        squared_norms = np.sum(latent * latent, axis=1)
        gram = latent @ latent.T
        squared = np.maximum(
            squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram, 0.0
        )
        distances = np.sqrt(squared)
        np.fill_diagonal(distances, 0.0)
        self._tag_distances = (distances + distances.T) / 2.0

        num_concepts = self._num_concepts
        if num_concepts is not None:
            num_concepts = min(num_concepts, folksonomy.num_tags)
        self._concept_model = distill_concepts(
            self._tag_distances,
            tags=folksonomy.tags,
            num_concepts=num_concepts,
            sigma=self._sigma,
            seed=self._seed,
        )
        self._engine = SearchEngine.build(
            folksonomy, self._concept_model, name=self.name
        )

    # ------------------------------------------------------------------ #
    # Introspection used by the Table III experiment
    # ------------------------------------------------------------------ #
    @property
    def tag_distances(self) -> np.ndarray:
        if self._tag_distances is None:
            raise RuntimeError("LsiRanker has not been fitted yet")
        return self._tag_distances

    @property
    def concept_model(self) -> ConceptModel:
        if self._concept_model is None:
            raise RuntimeError("LsiRanker has not been fitted yet")
        return self._concept_model

    def _resolve_rank(self, shape) -> int:
        max_rank = min(shape)
        if self._target_rank is not None:
            return max(1, min(self._target_rank, max_rank))
        derived = int(round(shape[0] / self._reduction_ratio))
        derived = max(derived, min(self._min_rank, max_rank))
        return max(1, min(derived, max_rank))
