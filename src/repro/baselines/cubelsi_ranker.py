"""CubeLSI wrapped in the common :class:`Ranker` interface.

The evaluation experiments iterate over a registry of rankers; this wrapper
lets CubeLSI participate without duplicating the pipeline logic in
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.baselines.base import EngineBackedRanker
from repro.core.concepts import ConceptModel
from repro.core.pipeline import CubeLSIPipeline, OfflineIndex
from repro.tagging.folksonomy import Folksonomy
from repro.utils.rng import SeedLike


class CubeLSIRanker(EngineBackedRanker):
    """The full CubeLSI pipeline behind the shared ranking interface."""

    name = "cubelsi"

    def __init__(
        self,
        reduction_ratios: Optional[Union[float, Sequence[float]]] = None,
        ranks: Optional[Sequence[int]] = None,
        num_concepts: Optional[int] = None,
        sigma: float = 1.0,
        max_iter: int = 25,
        seed: SeedLike = 0,
        min_rank: int = 8,
    ) -> None:
        super().__init__()
        self._pipeline = CubeLSIPipeline(
            reduction_ratios=reduction_ratios,
            ranks=ranks,
            num_concepts=num_concepts,
            sigma=sigma,
            max_iter=max_iter,
            seed=seed,
            min_rank=min_rank,
        )
        self._index: Optional[OfflineIndex] = None

    def _fit(self, folksonomy: Folksonomy) -> None:
        self._index = self._pipeline.fit(folksonomy)
        self._engine = self._index.engine
        self.timings.breakdown.update(self._index.timings)

    # ------------------------------------------------------------------ #
    # Introspection used by the semantic-accuracy experiments
    # ------------------------------------------------------------------ #
    @property
    def offline_index(self) -> OfflineIndex:
        if self._index is None:
            raise RuntimeError("CubeLSIRanker has not been fitted yet")
        return self._index

    @property
    def tag_distances(self) -> np.ndarray:
        return self.offline_index.cubelsi_result.distances

    @property
    def concept_model(self) -> ConceptModel:
        return self.offline_index.concept_model
