"""The CubeSim baseline (Section VI-B).

CubeSim keeps the tagger dimension but skips the Tucker decomposition: tag
distances are Frobenius norms of differences of *raw* tensor slices
``||F[:, t_i, :] - F[:, t_j, :]||_F`` (Eq. 8).  Concept distillation and
ranking then proceed exactly as in CubeLSI.  The paper uses CubeSim to make
two points: the raw distances are noisier (Table III) and computing them is
far more expensive than the Theorem-1/2 shortcut (Table V).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import EngineBackedRanker
from repro.core.concepts import ConceptModel, distill_concepts
from repro.core.distances import raw_slice_distances
from repro.search.engine import SearchEngine
from repro.tagging.folksonomy import Folksonomy
from repro.utils.rng import SeedLike


class CubeSimRanker(EngineBackedRanker):
    """Raw tensor-slice distances + concept distillation + concept VSM."""

    name = "cubesim"

    def __init__(
        self,
        num_concepts: Optional[int] = None,
        sigma: float = 1.0,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        self._num_concepts = num_concepts
        self._sigma = sigma
        self._seed = seed
        self._concept_model: Optional[ConceptModel] = None
        self._tag_distances: Optional[np.ndarray] = None

    def _fit(self, folksonomy: Folksonomy) -> None:
        tensor = folksonomy.to_tensor()
        self._tag_distances = raw_slice_distances(tensor)

        num_concepts = self._num_concepts
        if num_concepts is not None:
            num_concepts = min(num_concepts, folksonomy.num_tags)
        self._concept_model = distill_concepts(
            self._tag_distances,
            tags=folksonomy.tags,
            num_concepts=num_concepts,
            sigma=self._sigma,
            seed=self._seed,
        )
        self._engine = SearchEngine.build(
            folksonomy, self._concept_model, name=self.name
        )

    @property
    def tag_distances(self) -> np.ndarray:
        if self._tag_distances is None:
            raise RuntimeError("CubeSimRanker has not been fitted yet")
        return self._tag_distances

    @property
    def concept_model(self) -> ConceptModel:
        if self._concept_model is None:
            raise RuntimeError("CubeSimRanker has not been fitted yet")
        return self._concept_model
