"""The BOW (bag-of-words) baseline (Section VI-B).

Classical document retrieval applied verbatim: each resource is a document,
each tag is a word, tf-idf weights and cosine similarity — no tagger
information and no semantic analysis.  Implemented by feeding the *identity*
concept model (every tag is its own concept) through the same vector-space
machinery CubeLSI uses, which keeps the comparison apples-to-apples.
"""

from __future__ import annotations

from repro.baselines.base import EngineBackedRanker
from repro.core.concepts import identity_concept_model
from repro.search.engine import SearchEngine
from repro.tagging.folksonomy import Folksonomy


class BowRanker(EngineBackedRanker):
    """tf-idf + cosine over raw tags."""

    name = "bow"

    def __init__(self, smooth_idf: bool = False) -> None:
        super().__init__()
        self._smooth_idf = smooth_idf

    def _fit(self, folksonomy: Folksonomy) -> None:
        concept_model = identity_concept_model(folksonomy.tags)
        self._engine = SearchEngine.build(
            folksonomy, concept_model, smooth_idf=self._smooth_idf, name=self.name
        )
