#!/usr/bin/env python
"""Explore the tag clusters (concepts) CubeLSI distils from a corpus.

Section V of the paper argues that, besides improving search, the distilled
concepts let users explore the tag space: synonymous tags, cross-language
cognates, morphological variants and abbreviations end up in the same
cluster.  This script

1. builds a Delicious-profile corpus and runs CubeLSI,
2. prints every multi-tag concept with its member tags,
3. for a few probe tags, prints their nearest neighbours in purified tag
   distance (the Table I style "is this pair related?" view), and
4. persists the corpus to a small on-disk store so the exploration can be
   re-run without regenerating it.

Run with::

    python examples/concept_explorer.py [--store /tmp/cubelsi-store]
"""

from __future__ import annotations

import argparse
import tempfile
import warnings
from pathlib import Path

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.datasets.profiles import DELICIOUS_PROFILE, generate_profile_dataset
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.tagging.store import FolksonomyStore
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

PROBE_TAGS = ("music", "wifi", "humour", "dictionary", "england", "quotes")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store",
        type=Path,
        default=Path(tempfile.gettempdir()) / "cubelsi-store",
        help="directory used to cache the generated corpus",
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    store = FolksonomyStore(args.store)

    def build_corpus():
        dataset = generate_profile_dataset(
            DELICIOUS_PROFILE, scale=args.scale, seed=args.seed
        )
        cleaned, _ = clean_folksonomy(
            dataset.folksonomy, CleaningConfig(min_assignments=5)
        )
        return cleaned

    corpus = store.load_or_create("delicious-example", build_corpus)
    print(f"corpus: {corpus}  (cached under {args.store})")
    print()

    ranker = CubeLSIRanker(
        reduction_ratios=(25.0, 3.0, 40.0), num_concepts=30, seed=args.seed, min_rank=4
    ).fit(corpus)

    print("== distilled concepts (clusters with at least two tags) ==")
    for concept in ranker.concept_model.concepts:
        if len(concept.tags) < 2:
            continue
        print(f"  concept {concept.concept_id:2d}: {', '.join(concept.tags)}")
    print()

    print("== nearest tags by purified distance (cf. paper Table I) ==")
    result = ranker.offline_index.cubelsi_result
    for tag in PROBE_TAGS:
        if not corpus.has_tag(tag):
            continue
        neighbours = ", ".join(
            f"{other} ({distance:.2f})" for other, distance in result.nearest_tags(tag, k=4)
        )
        print(f"  {tag:12s} -> {neighbours}")


if __name__ == "__main__":
    main()
