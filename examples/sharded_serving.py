#!/usr/bin/env python
"""Sharded serving: partition the index, fan out queries, cache results.

The paper's online component is cheap cosine scoring — but one process with
one resource matrix still caps corpus size and throughput.  This example
shows the production-shaped serving stack built on top of it:

1. fit the offline pipeline once (monolithic, as always),
2. partition the compiled concept space into 4 shards behind a stable-hash
   router; fan a query batch out to all shards in parallel and heap-merge
   the per-shard top-k — rankings are verified against the monolithic
   engine as we go,
3. serve repeated queries from the LRU result cache (exact hits skip
   scoring entirely) and watch mutations route to their owning shard,
   invalidate the cache and keep per-shard staleness books,
4. checkpoint the sharded layout (per-shard ``.npz`` + manifest) and
   restore it — whole, or one shard per process.

Run with::

    python examples/sharded_serving.py
"""

from __future__ import annotations

import tempfile
import warnings

import numpy as np

from repro.core.pipeline import CubeLSIPipeline
from repro.core.snapshots import IndexSnapshotStore
from repro.datasets.profiles import LASTFM_PROFILE, generate_profile_dataset
from repro.eval.reporting import format_table
from repro.eval.sharding import sharding_sweep
from repro.search.sharding import ShardedSearchEngine
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.tagging.delta import FolksonomyDeltaBuilder
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

NUM_SHARDS = 4


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Offline: fit once (the expensive tensor analysis is untouched).
    # ------------------------------------------------------------------ #
    dataset = generate_profile_dataset(LASTFM_PROFILE, scale=0.4, seed=42)
    cleaned, _ = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=5)
    )
    pipeline = CubeLSIPipeline(
        reduction_ratios=(25.0, 3.0, 40.0), num_concepts=20, seed=0, min_rank=4
    )
    index = pipeline.fit(cleaned)
    print("== offline fit ==")
    print(cleaned)
    print(f"concepts: {index.num_concepts}, offline {index.preprocessing_seconds():.2f}s")
    print()

    # ------------------------------------------------------------------ #
    # 2. Shard the serving side and prove parity at speed.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(9)
    tags = list(cleaned.tags)
    queries = [
        [tags[i] for i in rng.choice(len(tags), size=3, replace=False)]
        for _ in range(64)
    ]
    rows = sharding_sweep(
        index.engine, queries, shard_counts=(2, NUM_SHARDS), top_k=10
    )
    print("== fan-out sweep (parity with the monolithic engine enforced) ==")
    print(format_table(rows))
    print()

    with ShardedSearchEngine.from_engine(index.engine, NUM_SHARDS) as sharded:
        index.engine = sharded  # the serving stack is now the sharded engine
        print(f"{sharded!r}, shard sizes {sharded.shard_sizes()}")

        # ------------------------------------------------------------- #
        # 3. Cache hits and shard-routed mutations.
        # ------------------------------------------------------------- #
        sharded.rank_batch(queries, top_k=10)  # cold: fills the cache
        sharded.rank_batch(queries, top_k=10)  # warm: served from the cache
        print(f"cache after a repeated batch: {sharded.cache.stats()}")

        # Deltas go through the index so the folksonomy and the engine stay
        # consistent — exactly what the snapshot below will persist.
        delta = (
            FolksonomyDeltaBuilder()
            .add_resource("track-new-1", {"listener-a": [tags[0], tags[2]]})
            .add_resource("track-new-2", {"listener-b": [tags[1]]})
            .remove_resource(index.folksonomy, index.folksonomy.resources[0])
            .build()
        )
        index.apply_delta(delta)
        print(f"cache after mutations (invalidated): {len(sharded.cache)} entries")
        print("per-shard staleness:")
        for shard_id, report in enumerate(sharded.shard_staleness()):
            print(f"  shard {shard_id}: {report.summary()}")
        print(f"aggregate: {sharded.staleness().summary()}")
        print()

        # ------------------------------------------------------------- #
        # 4. Sharded snapshots: restore whole, or one shard per process.
        # ------------------------------------------------------------- #
        with tempfile.TemporaryDirectory() as directory:
            store = IndexSnapshotStore(directory)
            checkpoint = store.save(index)
            print(f"checkpointed sharded layout -> {checkpoint.name}/")

            serving = store.load()
            query = [tags[0], tags[1]]
            print(f"restored {serving.engine!r} answers {query}:")
            for result in serving.engine.search(query, top_k=3):
                print(f"  {result.rank}. {result.resource}  score={result.score:.3f}")
            serving.engine.close()

            shard_worker = ShardedSearchEngine.load_shard(checkpoint, 0)
            print(
                f"single-shard worker serves "
                f"{shard_worker.num_indexed_resources} of "
                f"{sharded.num_indexed_resources} resources "
                "(scores match the full engine for its residents)"
            )


if __name__ == "__main__":
    main()
