#!/usr/bin/env python
"""Process-per-shard serving: escape the GIL without changing a score.

The sharded engine's *thread* fan-out keeps rankings exact but buys no
parallelism while scipy's sparse matmul holds the GIL.  This example
runs the deployment that does: one worker *process* per shard behind a
coordinating :class:`ShardProcessPool`.

1. fit the offline pipeline once and save a 4-shard, ``mmap_ready``
   artifact (raw ``.npy`` arrays every worker can memory-map),
2. start the pool and verify its merged rankings against the
   monolithic engine query-for-query,
3. run a failure drill: stall one worker and watch the read come back
   *degraded but typed and on time* (a ``ShardFailure``, never a
   hang), then watch the heartbeat revive the worker, and restart a
   worker outright to show it rejoins at exact parity,
4. put the micro-batching :class:`BatchingFrontend` in front of the
   pool — it is a drop-in engine — and read pool health out of the
   front-end's ``stats()``.

Run with::

    python examples/process_pool_serving.py
"""

from __future__ import annotations

import tempfile
import time
import warnings
from pathlib import Path

from repro.core.pipeline import CubeLSIPipeline
from repro.datasets.profiles import LASTFM_PROFILE, generate_profile_dataset
from repro.eval.sharding import rankings_match
from repro.search.shardpool import ShardPoolConfig, ShardProcessPool
from repro.serve import BatchingFrontend, FrontendConfig
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

NUM_SHARDS = 4
TOP_K = 5


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Offline: fit once, save a pool-ready sharded artifact.
    # ------------------------------------------------------------------ #
    dataset = generate_profile_dataset(LASTFM_PROFILE, scale=0.4, seed=42)
    cleaned, _ = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=5)
    )
    pipeline = CubeLSIPipeline(
        reduction_ratios=(25.0, 3.0, 40.0), num_concepts=20, seed=0, min_rank=4
    )
    index = pipeline.fit(cleaned)
    print("== offline fit ==")
    print(f"{cleaned}")

    tags = sorted(cleaned.tags)
    queries = [[tag] for tag in tags[:24]] + [
        [tags[0], tags[7]],
        [tags[3], tags[11], tags[19]],
        ["no-such-tag"],
    ]
    golden = index.engine.rank_batch(queries, top_k=TOP_K)

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "index"
        index.save(artifact, num_shards=NUM_SHARDS, mmap_ready=True)
        print(
            f"saved {NUM_SHARDS}-shard mmap-ready artifact "
            f"(epoch {index.engine.epoch}) -> shard_manifest.json + "
            "per-shard raw .npy arrays"
        )

        # -------------------------------------------------------------- #
        # 2. Online: one worker process per shard, exact merged rankings.
        # -------------------------------------------------------------- #
        config = ShardPoolConfig(request_timeout=1.5, heartbeat_timeout=1.0)
        with ShardProcessPool(artifact, config) as pool:
            loads = ", ".join(
                f"{seconds * 1e3:.1f}ms" for seconds in pool.worker_load_seconds()
            )
            print("\n== process pool up ==")
            print(
                f"{pool.num_shards} workers over {pool.num_indexed_resources} "
                f"resources, mmap={pool.uses_mmap}, cold starts: {loads}"
            )

            detailed = pool.rank_batch_detailed(queries, top_k=TOP_K)
            assert detailed.complete, detailed.failures
            assert len(set(detailed.shard_epochs.values())) == 1
            mismatches = sum(
                not rankings_match(a, b)
                for a, b in zip(golden, detailed.results)
            )
            print(
                f"{len(queries)} queries fanned out + heap-merged; "
                f"rankings vs monolithic engine: {mismatches} mismatches "
                f"(epoch {detailed.epoch} on every shard)"
            )

            # ---------------------------------------------------------- #
            # 3. Failure drill: stalls are typed, bounded and recoverable.
            # ---------------------------------------------------------- #
            print("\n== failure drill ==")
            pool.inject_stall(2, seconds=3.0)
            started = time.perf_counter()
            degraded = pool.rank_batch_detailed(queries, top_k=TOP_K)
            elapsed = time.perf_counter() - started
            kinds = {f.shard_id: f.kind for f in degraded.failures}
            print(
                f"stalled worker 2 -> read returned in {elapsed:.2f}s "
                f"(bounded by request_timeout={config.request_timeout}s) "
                f"with typed failures {kinds}, merged over the live shards"
            )

            time.sleep(3.2)  # let the stalled worker drain its nap
            revived = pool.rank_batch_detailed(queries, top_k=TOP_K)
            assert revived.complete, revived.failures
            print("heartbeat probe revived worker 2 -> reads complete again")

            pool.restart_worker(1)
            restarted = pool.rank_batch_detailed(queries, top_k=TOP_K)
            assert restarted.complete and all(
                rankings_match(a, b)
                for a, b in zip(golden, restarted.results)
            )
            print("restarted worker 1 from disk -> rejoined at exact parity")

            # ---------------------------------------------------------- #
            # 4. The batching front-end treats the pool as an engine.
            # ---------------------------------------------------------- #
            print("\n== front-end over the pool ==")
            frontend_config = FrontendConfig(max_batch_size=8, max_wait_ms=2.0)
            with BatchingFrontend(pool, frontend_config) as frontend:
                futures = [
                    frontend.submit(query, top_k=TOP_K) for query in queries
                ]
                responses = [future.result(timeout=30.0) for future in futures]
                assert all(
                    rankings_match(expected, response.results)
                    for expected, response in zip(golden, responses)
                )
                stats = frontend.stats()
                health = stats["engine_health"]
                states = [
                    worker["state"] for worker in health["workers"]
                ]
                print(
                    f"{len(responses)} futures resolved through micro-"
                    f"batches at epoch {responses[0].epoch}; pool health "
                    f"via stats(): states={states}, "
                    f"restarts={[w['restarts'] for w in health['workers']]}, "
                    f"degraded_reads={health['degraded_reads']}"
                )
                print(
                    "metrics excerpt:\n"
                    + "\n".join(
                        line
                        for line in frontend.metrics.export_text().splitlines()
                        if line.startswith("repro_serve_submitted")
                        or line.startswith("repro_serve_batches")
                    )
                )

    print("\nprocess-pool serving workflow complete.")


if __name__ == "__main__":
    main()
