#!/usr/bin/env python
"""Continuous refit: background Tucker refits with hot snapshot swaps.

``examples/incremental_serving.py`` ends where the interesting problem
begins: the staleness policy says a full refit is due — but the refit
takes seconds and serving must not stop.  This example closes that loop
with the lifecycle subsystem:

1. fit once, wrap the engine in an :class:`EngineHandle` (every read pins
   the current generation; every mutation is journaled),
2. stream mutation batches through the handle until the refresh policy's
   *refit* verdict (not just the cheap fold-in verdict) fires,
3. run the full Tucker refit in a **background process** via
   :class:`RefitCoordinator` while queries keep flowing — checkpoint,
   fit, journal catch-up, publish as generation N+1, double-buffered
   swap,
4. show what changed: generation, epoch, store layout, and the swap and
   refit timings exported through the Prometheus metrics registry.

Run with::

    python examples/continuous_refit.py
"""

from __future__ import annotations

import tempfile
import warnings

import numpy as np

from repro.core.pipeline import CubeLSIPipeline
from repro.core.snapshots import IndexSnapshotStore
from repro.datasets.profiles import LASTFM_PROFILE, generate_profile_dataset
from repro.search.incremental import RefreshPolicy
from repro.search.lifecycle import EngineHandle, RefitCoordinator
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Offline fit, then wrap the engine in a swappable handle.
    # ------------------------------------------------------------------ #
    dataset = generate_profile_dataset(LASTFM_PROFILE, scale=0.3, seed=42)
    cleaned, _ = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=5)
    )
    pipeline_kwargs = dict(
        reduction_ratios=(25.0, 3.0, 40.0), num_concepts=16, seed=0, min_rank=4
    )
    index = CubeLSIPipeline(**pipeline_kwargs).fit(cleaned)
    # A tight policy so this small demo actually reaches "refit due".
    index.engine.refresh_policy = RefreshPolicy(max_delta_fraction=0.05)
    handle = EngineHandle(index.engine, folksonomy=index.folksonomy)
    probe = [sorted(cleaned.tags)[0]]
    print("== offline fit ==")
    print(cleaned)
    print(f"handle: {handle!r}")
    print()

    with tempfile.TemporaryDirectory() as directory:
        coordinator = RefitCoordinator(
            handle,
            IndexSnapshotStore(directory),
            pipeline_kwargs=pipeline_kwargs,
            use_process=True,
        )

        # -------------------------------------------------------------- #
        # 2. Mutate through the handle until the refit verdict fires.
        # -------------------------------------------------------------- #
        rng = np.random.default_rng(9)
        tags = sorted(cleaned.tags)
        batch = 0
        while True:
            added = {}
            for new in range(4):
                chosen = rng.choice(len(tags), size=4, replace=False)
                added[f"track-{batch}-{new}"] = {
                    tags[int(t)]: 1.0 for t in chosen
                }
            handle.apply_mutations(added=added)
            report = handle.staleness()
            batch += 1
            if report.refit_due:
                break
        print("== streamed mutations (journaled fold-in) ==")
        print(
            f"{batch} batches -> epoch {handle.epoch}, "
            f"journal depth {len(handle.journal)}"
        )
        print(report.summary())
        print()

        # -------------------------------------------------------------- #
        # 3. Refit in the background; serving keeps answering meanwhile.
        # -------------------------------------------------------------- #
        running = coordinator.refit_in_background()
        answered = 0
        while running.running:
            handle.search(probe, top_k=3)
            answered += 1
        result = running.join()
        print("== background refit (serving never paused) ==")
        print(f"queries answered while the refit ran: {answered}")
        print(result.summary())
        print()

        # -------------------------------------------------------------- #
        # 4. What the swap changed.
        # -------------------------------------------------------------- #
        store = coordinator.store
        print("== after the swap ==")
        print(f"handle: {handle!r}")
        print(
            f"store generations: {store.generations()} "
            f"(current {store.current_generation()})"
        )
        print(f"post-swap staleness: {handle.staleness().summary()}")
        print()
        print("== exported lifecycle metrics (Prometheus text, excerpt) ==")
        for line in coordinator.metrics.export_text().splitlines():
            interesting = (
                "_sum" in line
                or "_count" in line
                or "refits_completed" in line
                or "generation" in line
                or "journal_entries" in line
            )
            if interesting and not line.startswith("#") and "bucket" not in line:
                print(f"  {line}")


if __name__ == "__main__":
    main()
