#!/usr/bin/env python
"""Quickstart: index a small social-tagging corpus with CubeLSI and search it.

The script walks through the whole Figure-1 pipeline of the paper on a
synthetic Last.fm-like corpus:

1. generate raw tag assignments and clean them (Section VI-A),
2. run the offline CubeLSI pipeline (tensor → Tucker → distances → concepts
   → tf-idf index),
3. answer a few keyword queries online with cosine similarity,
4. compare the results against a plain bag-of-words engine to see the effect
   of concept-level matching.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import warnings

from repro.baselines import BowRanker
from repro.core.pipeline import CubeLSIPipeline, OfflineIndex
from repro.datasets.profiles import LASTFM_PROFILE, generate_profile_dataset
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Generate and clean a corpus
    # ------------------------------------------------------------------ #
    dataset = generate_profile_dataset(LASTFM_PROFILE, scale=0.5, seed=42)
    cleaned, report = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=5)
    )
    print("== corpus ==")
    print(report.summary())
    print(cleaned)
    print()

    # ------------------------------------------------------------------ #
    # 2. Offline: run the CubeLSI pipeline
    # ------------------------------------------------------------------ #
    pipeline = CubeLSIPipeline(
        reduction_ratios=(25.0, 3.0, 40.0),
        num_concepts=25,
        seed=0,
        min_rank=4,
    )
    index = pipeline.fit(cleaned)
    print("== offline pipeline ==")
    print(f"core dimensions : {index.cubelsi_result.ranks}")
    print(f"concepts        : {index.num_concepts}")
    print(f"offline seconds : {index.preprocessing_seconds():.2f}")
    print()

    print("a few distilled concepts:")
    for concept in index.concept_model.concepts[:5]:
        print(f"  concept {concept.concept_id}: {concept.label(max_tags=5)}")
    print()

    # ------------------------------------------------------------------ #
    # 3. Online: answer keyword queries — a whole batch in one call.
    #    ``rank_batch`` scores every query with a single sparse matmul
    #    against the compiled CSR index (the cheap-online claim of
    #    Table VI); ``search`` remains the one-query convenience wrapper.
    # ------------------------------------------------------------------ #
    bow = BowRanker().fit(cleaned)
    queries = [
        query
        for query in [["jazz"], ["chillout", "ambient"], ["metal"]]
        if all(cleaned.has_tag(tag) for tag in query)
    ]
    cube_batched = index.engine.rank_batch(queries, top_k=5)
    bow_batched = bow.rank_batch(queries, top_k=5)
    for query, cube_results, bow_results in zip(queries, cube_batched, bow_batched):
        print(f"== query: {' '.join(query)} ==")
        print("  CubeLSI (concept matching):")
        for result in cube_results:
            tags = ", ".join(sorted(cleaned.tag_bag(result.resource))[:6])
            print(f"    {result.rank}. {result.resource}  score={result.score:.3f}  tags=[{tags}]")
        print("  BOW (literal tag matching):")
        for rank, (resource, score) in enumerate(bow_results, start=1):
            tags = ", ".join(sorted(cleaned.tag_bag(resource))[:6])
            print(f"    {rank}. {resource}  score={score:.3f}  tags=[{tags}]")
        print()

    # ------------------------------------------------------------------ #
    # 4. Ship the index to a serving process: save, load, query again.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as directory:
        index.save(directory)
        serving = OfflineIndex.load(directory)
        if queries:
            reloaded = serving.engine.search(queries[0], top_k=3)
            print("== reloaded index answers the first query ==")
            for result in reloaded:
                print(f"    {result.rank}. {result.resource}  score={result.score:.3f}")


if __name__ == "__main__":
    main()
