#!/usr/bin/env python
"""Compare all six ranking methods on a Delicious-like bookmarking corpus.

Reproduces, in miniature, the ranking-quality experiment behind Figure 4 of
the paper: a Delicious-profile corpus is generated and cleaned, a simulated
query workload with graded relevance is built, all six rankers (CubeLSI,
CubeSim, FolkRank, Freq, LSI, BOW) are fitted and their NDCG@N curves and
timings are printed side by side.

Run with::

    python examples/delicious_search.py [--scale 0.5] [--queries 32]
"""

from __future__ import annotations

import argparse
import warnings

from repro.baselines import build_all_rankers
from repro.datasets.profiles import DELICIOUS_PROFILE, generate_profile_dataset
from repro.datasets.queries import build_query_workload
from repro.eval.harness import RankingExperiment
from repro.eval.reporting import format_series, format_table
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

CUTOFFS = (1, 3, 5, 10, 15, 20)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="corpus scale factor")
    parser.add_argument("--queries", type=int, default=32, help="number of simulated queries")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    dataset = generate_profile_dataset(DELICIOUS_PROFILE, scale=args.scale, seed=args.seed)
    cleaned, report = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=5)
    )
    print(report.summary())

    workload = build_query_workload(
        dataset, num_queries=args.queries, seed=args.seed + 1, folksonomy=cleaned
    )
    print(f"{len(workload)} queries, e.g. {[q.tags for q in workload.queries[:3]]}")
    print()

    rankers = build_all_rankers(num_concepts=30, seed=args.seed)
    experiment = RankingExperiment(cleaned, workload, cutoffs=CUTOFFS)
    evaluation = experiment.run(rankers)

    series = {
        name: method.ndcg_series(CUTOFFS)
        for name, method in evaluation.methods.items()
    }
    print(
        format_series(
            series,
            x_values=CUTOFFS,
            x_label="NDCG@N",
            title="Ranking quality (cf. paper Figure 4a)",
            digits=3,
        )
    )
    print()
    print(
        format_table(
            evaluation.timing_table(),
            title="Offline / online timings (cf. paper Tables V and VI)",
        )
    )


if __name__ == "__main__":
    main()
