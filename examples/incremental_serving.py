#!/usr/bin/env python
"""Incremental serving: fold corpus changes in without refitting CubeLSI.

The offline tensor analysis (Tucker-ALS + clustering) is the expensive part
of the paper's pipeline; online serving is cheap.  This example shows how a
serving process keeps it that way while the corpus changes under it:

1. fit the offline pipeline once and checkpoint it to a snapshot store,
2. stream folksonomy deltas (new tagged resources, removals, retags) into
   the index via LSI-style fold-in through the *frozen* concept model,
3. watch the staleness report that says when accumulated drift makes a
   full offline refit worthwhile,
4. checkpoint the updated index and restore it — the snapshot carries the
   folksonomy, so the restored process keeps accepting deltas.

Run with::

    python examples/incremental_serving.py
"""

from __future__ import annotations

import tempfile
import warnings

import numpy as np

from repro.core.pipeline import CubeLSIPipeline
from repro.core.snapshots import IndexSnapshotStore
from repro.datasets.profiles import LASTFM_PROFILE, generate_profile_dataset
from repro.eval.incremental import replay_deltas
from repro.eval.reporting import format_table
from repro.search.incremental import RefreshPolicy
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.tagging.delta import FolksonomyDeltaBuilder
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Offline: fit once, checkpoint the serving artefacts.
    # ------------------------------------------------------------------ #
    dataset = generate_profile_dataset(LASTFM_PROFILE, scale=0.4, seed=42)
    cleaned, _ = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=5)
    )
    pipeline = CubeLSIPipeline(
        reduction_ratios=(25.0, 3.0, 40.0), num_concepts=20, seed=0, min_rank=4
    )
    index = pipeline.fit(cleaned)
    # A tight policy so this small demo actually reaches "refit due".
    index.engine.refresh_policy = RefreshPolicy(max_delta_fraction=0.02)
    print("== offline fit ==")
    print(cleaned)
    print(f"concepts: {index.num_concepts}, offline {index.preprocessing_seconds():.2f}s")
    print()

    with tempfile.TemporaryDirectory() as directory:
        store = IndexSnapshotStore(directory)
        store.save(index)
        print(f"checkpointed epoch {index.engine.epoch} -> {store.epochs()}")
        print()

        # -------------------------------------------------------------- #
        # 2. Online: stream delta batches into the serving index.
        # -------------------------------------------------------------- #
        rng = np.random.default_rng(9)
        tags = list(cleaned.tags)
        folksonomy = index.folksonomy
        deltas = []
        for batch in range(3):
            builder = FolksonomyDeltaBuilder()
            for new in range(2):  # two freshly tagged resources per batch
                chosen = rng.choice(len(tags), size=4, replace=False)
                builder.add_resource(
                    f"track-{batch}-{new}",
                    {f"listener-{batch}": [tags[i] for i in chosen]},
                )
            victim = folksonomy.resources[batch]  # and one deletion
            builder.remove_resource(folksonomy, victim)
            delta = builder.build()
            deltas.append(delta)
            folksonomy = folksonomy.apply_delta(delta)

        report = replay_deltas(index, deltas)
        print("== streamed deltas (fold-in through the frozen concept model) ==")
        print(format_table(report.timing_rows()))
        print()

        # -------------------------------------------------------------- #
        # 3. The staleness report drives the refit decision.
        # -------------------------------------------------------------- #
        staleness = index.engine.staleness()
        print("== staleness ==")
        print(staleness.summary())
        if report.refit_due_after is not None:
            print(
                f"(the policy flagged a refit after batch {report.refit_due_after}; "
                "schedule a full CubeLSIPipeline.fit offline)"
            )
        print()

        # -------------------------------------------------------------- #
        # 4. Checkpoint and restore: the snapshot keeps accepting deltas.
        # -------------------------------------------------------------- #
        store.save(index)
        serving = store.load()
        follow_up = (
            FolksonomyDeltaBuilder()
            .add_resource("track-post-restore", {"listener-x": [tags[0], tags[1]]})
            .build()
        )
        serving.apply_delta(follow_up)
        print(f"epochs on disk: {store.epochs()} (restored epoch {serving.engine.epoch})")
        results = serving.engine.search([tags[0]], top_k=3)
        print(f"restored snapshot answers '{tags[0]}':")
        for result in results:
            print(f"  {result.rank}. {result.resource}  score={result.score:.3f}")


if __name__ == "__main__":
    main()
