#!/usr/bin/env python
"""Study the reduction-ratio trade-off (paper Section IV-C and Figure 5).

The reduction ratios ``c1, c2, c3`` control the size of the Tucker core:
larger ratios mean a smaller core, less pre-processing time and less memory,
at the cost of a coarser latent space.  The paper settles on ``c = 50``.

This script sweeps the tag-mode reduction ratio on a Bibsonomy-profile
corpus and reports, for every setting:

* the core dimensions and offline pre-processing time (Figure 5),
* the storage needed for ``S`` and ``Y(2)`` versus dense ``F_hat`` (Table VII),
* the semantic accuracy of the resulting tag distances (Table III metrics),

so the efficiency/quality trade-off is visible in one table.

Run with::

    python examples/reduction_ratio_tuning.py
"""

from __future__ import annotations

import warnings

from repro.baselines.cubelsi_ranker import CubeLSIRanker
from repro.datasets.profiles import BIBSONOMY_PROFILE, generate_profile_dataset
from repro.datasets.queries import build_query_workload
from repro.eval.reporting import format_bytes, format_table
from repro.semantics.evaluation import evaluate_tag_distances
from repro.semantics.lexicon import build_lexicon
from repro.tagging.cleaning import CleaningConfig, clean_folksonomy
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

TAG_MODE_RATIOS = (2.0, 3.0, 5.0, 10.0, 20.0)


def main() -> None:
    dataset = generate_profile_dataset(BIBSONOMY_PROFILE, scale=0.5, seed=7)
    cleaned, report = clean_folksonomy(
        dataset.folksonomy, CleaningConfig(min_assignments=5)
    )
    print(report.summary())
    lexicon = build_lexicon(dataset, folksonomy=cleaned)
    workload = build_query_workload(
        dataset, num_queries=16, seed=11, folksonomy=cleaned
    )

    rows = []
    for ratio in TAG_MODE_RATIOS:
        ranker = CubeLSIRanker(
            reduction_ratios=(25.0, ratio, 40.0),
            num_concepts=25,
            seed=7,
            min_rank=2,
        ).fit(cleaned)
        result = ranker.offline_index.cubelsi_result
        accuracy = evaluate_tag_distances(
            ranker.tag_distances, cleaned.tags, lexicon, method=f"c2={ratio}"
        )
        memory = result.memory_report()
        # quick sanity check that the engine still answers queries
        answered = sum(
            1 for query in workload if ranker.rank(list(query.tags), top_k=10)
        )
        rows.append(
            {
                "c2 (tag ratio)": ratio,
                "Core dims": "x".join(str(r) for r in result.ranks),
                "Offline (s)": round(ranker.timings.fit_seconds, 3),
                "S+Y(2) size": format_bytes(memory["core_plus_tag_factor_bytes"]),
                "JCN avg": round(accuracy.jcn_avg, 2),
                "Rank avg": round(accuracy.rank_avg, 2),
                "Queries answered": f"{answered}/{len(workload)}",
            }
        )

    print()
    print(
        format_table(
            rows,
            title=(
                "Reduction-ratio trade-off on the Bibsonomy profile "
                "(cf. paper Figure 5 / Tables III and VII)"
            ),
        )
    )
    print()
    print(
        "Larger ratios shrink the core (cheaper, smaller) while the distance "
        "quality degrades gracefully — the behaviour the paper reports when "
        "settling on c = 50 for its full-size datasets."
    )


if __name__ == "__main__":
    main()
