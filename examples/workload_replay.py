#!/usr/bin/env python
"""Workload replay: simulate production traffic, prove concurrency safety.

The parity suites check the serving stack one hand-written call at a
time; this example drives it the way production would — a seeded, mixed
stream of Zipf-skewed queries, cache-hot repeats, mutation batches and
refresh ticks — and shows the subsystem's whole loop:

1. generate a deterministic workload trace over a corpus (same seed,
   same trace, forever),
2. replay it serially for the golden reference, recording per-op latency
   histograms and throughput,
3. replay it again across 4 concurrent worker threads (mutations applied
   in trace order, queries racing freely in between) and verify the
   invariants: zero errors, identical final state, 1e-9 ranking parity
   on the trace's evaluation probes, no epoch ever observed running
   backwards,
4. sweep worker counts and print the throughput/latency table — the
   report CI uploads as its workload-latency artefact.

Run with::

    python examples/workload_replay.py
"""

from __future__ import annotations

import warnings

from repro.core.concepts import identity_concept_model
from repro.datasets.generator import FolksonomyGenerator, GeneratorConfig
from repro.datasets.vocabulary import build_default_vocabulary
from repro.eval.reporting import format_table
from repro.eval.workload import workload_sweep
from repro.load import WorkloadConfig, WorkloadGenerator, check_replay_parity
from repro.search.sharding import ShardedSearchEngine
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

NUM_SHARDS = 4
NUM_WORKERS = 4


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A corpus and a deterministic mixed workload over it.
    # ------------------------------------------------------------------ #
    config = GeneratorConfig(
        num_users=120,
        num_resources=400,
        num_interest_groups=6,
        concepts_per_group=5,
        num_archetypes=8,
        mean_posts_per_user=14.0,
        max_tags_per_post=3,
        seed=21,
    )
    vocabulary = build_default_vocabulary(domains=("academic", "music"))
    dataset = FolksonomyGenerator(config, vocabulary).generate(name="workload")
    folksonomy = dataset.folksonomy
    print("== corpus ==")
    print(folksonomy)
    print()

    trace = WorkloadGenerator(
        WorkloadConfig(num_operations=400, seed=5, top_k=10)
    ).generate(folksonomy)
    counts = trace.op_counts()
    print("== trace (seeded, byte-identical on every run) ==")
    print(
        f"{len(trace)} operations: {counts.get('query', 0)} queries "
        f"({trace.config.hot_fraction:.0%} cache-hot repeats, Zipf "
        f"s={trace.config.zipf_exponent}), {trace.num_mutations} mutation "
        f"batches, {counts.get('refresh', 0)} refresh ticks; "
        f"{len(trace.eval_queries)} evaluation probes"
    )
    print()

    def build_engine():
        return ShardedSearchEngine.build(
            folksonomy,
            identity_concept_model(folksonomy.tags),
            num_shards=NUM_SHARDS,
            name="workload",
        )

    # ------------------------------------------------------------------ #
    # 2 + 3. Serial golden vs concurrent replay, invariants enforced.
    # ------------------------------------------------------------------ #
    verdict = check_replay_parity(
        build_engine, trace, num_workers=NUM_WORKERS
    )
    print("== serial golden vs 4-worker concurrent replay ==")
    print(verdict.summary())
    if not verdict.ok:
        raise SystemExit("replay invariants violated")
    print()

    # ------------------------------------------------------------------ #
    # 4. Worker-count sweep (parity re-enforced inside the sweep).
    # ------------------------------------------------------------------ #
    rows, _reports = workload_sweep(
        build_engine, trace, worker_counts=(1, 2, NUM_WORKERS)
    )
    print("== throughput sweep (workers=0 is the serial golden) ==")
    print(format_table(rows))


if __name__ == "__main__":
    main()
