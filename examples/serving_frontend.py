#!/usr/bin/env python
"""Serving front-end: micro-batched queries, admission control, metrics.

The batched scoring path answers a *batch* of queries ~20x faster per
query than one-at-a-time calls, but production traffic arrives as
concurrent single queries.  This example walks the layer that closes the
gap:

1. build a sharded engine and wrap it in a
   :class:`~repro.serve.frontend.BatchingFrontend` — concurrent
   ``submit(tags, top_k)`` calls coalesce under a micro-batch window into
   single ``snapshot_rank_batch`` reads, identical in-flight queries are
   scored once and fanned out to every waiter;
2. drive it from concurrent client threads and read the telemetry:
   batch-size distribution, coalescing counters, per-stage latency;
3. saturate a deliberately tiny admission queue and watch overflow get
   shed with typed ``Overloaded`` errors instead of queueing unboundedly;
4. export everything in the Prometheus text format;
5. sweep batch-window configurations (the tuning table for a deployment);
6. re-prove the workload-replay invariants (zero errors, 1e-9 parity,
   epoch monotonicity) with every query routed through the front-end.

Run with::

    python examples/serving_frontend.py
"""

from __future__ import annotations

import threading
import warnings

from repro.core.concepts import identity_concept_model
from repro.datasets.generator import FolksonomyGenerator, GeneratorConfig
from repro.datasets.vocabulary import build_default_vocabulary
from repro.eval.reporting import format_table
from repro.eval.serve import frontend_sweep
from repro.load import WorkloadConfig, WorkloadGenerator, check_replay_parity
from repro.search.sharding import ShardedSearchEngine
from repro.serve import BatchingFrontend, FrontendConfig, Overloaded
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

NUM_SHARDS = 2
NUM_CLIENTS = 4


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A corpus, a sharded engine, a batching front-end around it.
    # ------------------------------------------------------------------ #
    config = GeneratorConfig(
        num_users=100,
        num_resources=300,
        num_interest_groups=6,
        concepts_per_group=4,
        num_archetypes=8,
        mean_posts_per_user=12.0,
        max_tags_per_post=3,
        seed=33,
    )
    vocabulary = build_default_vocabulary(domains=("academic", "music"))
    dataset = FolksonomyGenerator(config, vocabulary).generate(name="serve")
    folksonomy = dataset.folksonomy
    print("== corpus ==")
    print(folksonomy)
    print()

    def build_engine():
        return ShardedSearchEngine.build(
            folksonomy,
            identity_concept_model(folksonomy.tags),
            num_shards=NUM_SHARDS,
            name="serve",
        )

    trace = WorkloadGenerator(
        WorkloadConfig(num_operations=300, seed=7, top_k=10)
    ).generate(folksonomy)
    queries = [list(query) for query in trace.eval_queries] * 6

    # ------------------------------------------------------------------ #
    # 2. Concurrent clients through the micro-batch window.
    # ------------------------------------------------------------------ #
    engine = build_engine()
    frontend = BatchingFrontend(
        engine, FrontendConfig(max_batch_size=8, max_wait_ms=2.0)
    )

    def client(client_id: int) -> None:
        for position in range(client_id, len(queries), NUM_CLIENTS):
            frontend.query(queries[position], top_k=10)

    threads = [
        threading.Thread(target=client, args=(client_id,))
        for client_id in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = frontend.stats()
    sizes = frontend.metrics.size_distribution("batch_distinct_queries")
    print("== micro-batching (4 concurrent clients) ==")
    print(
        f"{stats['counters']['submitted']} submissions coalesced into "
        f"{stats['counters']['batches']} engine calls "
        f"(mean batch {sizes.mean:.1f} distinct queries, max {sizes.max}); "
        f"{stats['counters']['coalesced']} duplicate in-flight submissions "
        "were deduplicated"
    )
    print(f"cache (owned by the {stats['cache_owner']}): {stats['cache']}")
    print(
        "queue wait  " + frontend.metrics.latency("stage.queue").summary()
    )
    print(
        "engine call " + frontend.metrics.latency("stage.engine").summary()
    )
    print(
        "end to end  " + frontend.metrics.latency("stage.total").summary()
    )
    print()

    # ------------------------------------------------------------------ #
    # 3. Admission control: a saturated queue sheds, it does not balloon.
    # ------------------------------------------------------------------ #
    shed_frontend = BatchingFrontend(
        engine,
        # A wide-open window plus a tiny in-flight bound: submissions
        # accumulate against max_wait and the overflow is shed.
        FrontendConfig(max_batch_size=64, max_wait_ms=150.0, max_pending=16),
        name="overload-demo",
    )
    futures = []
    shed = 0
    for attempt in range(64):
        try:
            futures.append(
                shed_frontend.submit([f"burst-{attempt}"], top_k=5)
            )
        except Overloaded:
            shed += 1
    for future in futures:
        future.result()
    print("== admission control (burst of 64 into a 16-deep queue) ==")
    print(
        f"admitted {len(futures)}, shed {shed} with typed Overloaded "
        f"errors; controller says: {shed_frontend.admission!r}"
    )
    shed_frontend.close()
    print()

    # ------------------------------------------------------------------ #
    # 4. Prometheus-style metrics export.
    # ------------------------------------------------------------------ #
    export = frontend.metrics.export_text().splitlines()
    print("== metrics export (first 14 of", len(export), "lines) ==")
    for line in export[:14]:
        print(line)
    print("...")
    frontend.close()
    print()

    # ------------------------------------------------------------------ #
    # 5. Batch-window tuning sweep (parity with direct rank_batch
    #    enforced inside).
    # ------------------------------------------------------------------ #
    rows, _registries = frontend_sweep(
        engine,
        queries,
        windows=((1, 0.0), (4, 1.0), (8, 2.0)),
        num_clients=NUM_CLIENTS,
        top_k=10,
    )
    print("== batch-window sweep (every row 1e-9-verified) ==")
    print(format_table(rows))
    engine.close()
    print()

    # ------------------------------------------------------------------ #
    # 6. Replay invariants through the batching path.
    # ------------------------------------------------------------------ #
    verdict = check_replay_parity(
        build_engine,
        trace,
        num_workers=4,
        frontend_config=FrontendConfig(max_batch_size=8, max_wait_ms=2.0),
    )
    print("== workload replay with queries routed through the front-end ==")
    print(verdict.summary())
    if not verdict.ok:
        raise SystemExit("replay invariants violated through the front-end")


if __name__ == "__main__":
    main()
