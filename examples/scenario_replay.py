#!/usr/bin/env python
"""Scenario replay: production-shaped incidents, each under its invariant.

``examples/workload_replay.py`` proves the serving stack against a
*steady* mixed stream; this example drives it through the named incident
profiles from :mod:`repro.load.scenarios` — the situations an operator
actually gets paged for — and verifies each against its own typed
invariant on top of the replay parity bar:

* ``flash_crowd`` — mid-trace, queries collapse onto two hot keys; the
  micro-batching front-end must amortize them (dedup + exact-hit cache)
  with a bounded shed rate and zero wrong answers,
* ``diurnal`` — sinusoidal arrival pacing; the paced replay's wall clock
  must honour the curve,
* ``multi_tenant`` — 60/30/10 Zipf-skewed tenants; per-tenant latency
  books must partition the aggregate exactly (no double counting) and
  per-tenant admission books must cover every tenant,
* ``rebuild_storm`` — a write-heavy burst; every mutation batch must
  land exactly once (final epoch == mutation count),
* ``chaos`` — a seeded fault plan kills and stalls shard-pool workers
  mid-replay; every degraded read must be a typed error (never a hang,
  never a silent truncation presented as complete) and the revived pool
  must reconverge to 1e-9 probe parity against a golden engine.

Run with::

    python examples/scenario_replay.py
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from repro.core.concepts import identity_concept_model
from repro.datasets.generator import FolksonomyGenerator, GeneratorConfig
from repro.datasets.vocabulary import build_default_vocabulary
from repro.eval.reporting import format_table
from repro.eval.workload import scenario_sweep
from repro.load import SCENARIO_NAMES, build_scenario
from repro.search.engine import SearchEngine
from repro.search.sharding import ShardedSearchEngine
from repro.utils.errors import ConvergenceWarning

warnings.filterwarnings("ignore", category=ConvergenceWarning)

NUM_SHARDS = 4
NUM_WORKERS = 4


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A corpus, and the five named scenario profiles over it.
    # ------------------------------------------------------------------ #
    config = GeneratorConfig(
        num_users=120,
        num_resources=400,
        num_interest_groups=6,
        concepts_per_group=5,
        num_archetypes=8,
        mean_posts_per_user=14.0,
        max_tags_per_post=3,
        seed=21,
    )
    vocabulary = build_default_vocabulary(domains=("academic", "music"))
    dataset = FolksonomyGenerator(config, vocabulary).generate(name="scenario")
    folksonomy = dataset.folksonomy
    print("== corpus ==")
    print(folksonomy)
    print()

    print("== scenario profiles (seeded, byte-identical on every run) ==")
    for name in SCENARIO_NAMES:
        scenario = build_scenario(name, folksonomy, seed=5)
        detail = scenario.description or (
            f"{len(scenario.trace)} ops, "
            f"{scenario.trace.num_mutations} mutation batches"
        )
        print(f"  {name:>14}: {detail}")
    print()

    def build_engine():
        return ShardedSearchEngine.build(
            folksonomy,
            identity_concept_model(folksonomy.tags),
            num_shards=NUM_SHARDS,
            name="scenario",
        )

    # ------------------------------------------------------------------ #
    # 2. The chaos profile replays against a real process pool, so it
    #    needs a published sharded save to fault workers of.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        save_dir = Path(tmp) / "index"
        engine = SearchEngine.build(
            folksonomy, identity_concept_model(folksonomy.tags), name="scenario"
        )
        sharded = ShardedSearchEngine.from_engine(
            engine, num_shards=NUM_SHARDS, cache_entries=None
        )
        try:
            sharded.save(save_dir, mmap_ready=True)
        finally:
            sharded.close()

        # ------------------------------------------------------------- #
        # 3. Replay every profile under its invariant; any violation
        #    raises instead of reporting.
        # ------------------------------------------------------------- #
        rows, verdicts = scenario_sweep(
            build_engine,
            folksonomy,
            seed=5,
            num_workers=NUM_WORKERS,
            save_dir=save_dir,
        )

    print(
        f"== scenario sweep ({NUM_SHARDS}-shard engine, {NUM_WORKERS} "
        "workers; every row passed its invariant) =="
    )
    print(format_table(rows))
    print()
    for verdict in verdicts:
        print(verdict.summary())


if __name__ == "__main__":
    main()
