"""Concurrency suite: workload replay, invariants and thread-safety.

The acceptance bar (ISSUE 4): a concurrent replay — >= 4 worker threads,
a mixed 90/10 query/mutation trace, a 4-shard engine — must finish with
zero errors and, after quiescing, rank the trace's evaluation probes
identically (1e-9) to the serial golden replay.  Around that bar this
file covers the trace generator's determinism and validity, the replay
runner's bookkeeping, the epoch-observation audit, the read/write lock,
an 8-thread :class:`QueryCache` hammer, a direct query-vs-mutation race
regression, and randomized mutation/refresh interleavings that must end
1e-9-equal to a from-scratch rebuild.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.core.concepts import identity_concept_model
from repro.eval.sharding import rankings_match
from repro.eval.workload import workload_sweep
from repro.load import (
    MUTATE,
    QUERY,
    LatencyHistogram,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadRunner,
    check_replay_parity,
)
from repro.search.cache import QueryCache
from repro.search.concurrency import ReadWriteLock
from repro.search.engine import SearchEngine
from repro.search.incremental import EpochObservationLog
from repro.search.matrix_space import MatrixConceptSpace
from repro.search.sharding import ShardedSearchEngine
from repro.search.vsm import ConceptVectorSpace
from repro.utils.errors import ConfigurationError

SHARD_COUNTS = (1, 2, 4)

#: Worker threads for the concurrent-replay acceptance suite.  The CI
#: version matrix and local runs use the default 4; the nightly stress
#: job raises it (WORKLOAD_WORKERS=8) to shake out schedules a lighter
#: thread count never produces.
NUM_WORKERS = max(1, int(os.environ.get("WORKLOAD_WORKERS", "4")))


def make_trace(folksonomy, **overrides):
    defaults = dict(num_operations=160, seed=11)
    defaults.update(overrides)
    return WorkloadGenerator(WorkloadConfig(**defaults)).generate(folksonomy)


def build_mono(folksonomy):
    return SearchEngine.build(
        folksonomy, identity_concept_model(folksonomy.tags), name="wl"
    )


def build_sharded(folksonomy, num_shards):
    return ShardedSearchEngine.build(
        folksonomy,
        identity_concept_model(folksonomy.tags),
        num_shards=num_shards,
        name="wl",
    )


def rebuild_from_bags(concept_model, bags, smooth_idf=False):
    """A from-scratch engine over raw tag bags (the parity oracle)."""
    resource_bags = {
        resource: concept_model.concept_bag(bag, allocate=True)
        for resource, bag in bags.items()
    }
    space = ConceptVectorSpace(smooth_idf=smooth_idf).fit(resource_bags)
    return SearchEngine(
        concept_model=concept_model,
        vector_space=space,
        matrix_space=MatrixConceptSpace.compile(space),
        name="rebuild",
    )


class TestWorkloadGenerator:
    def test_same_seed_same_trace(self, small_cleaned):
        first = make_trace(small_cleaned)
        second = make_trace(small_cleaned)
        assert first.operations == second.operations
        assert first.eval_queries == second.eval_queries
        assert make_trace(small_cleaned, seed=12).operations != first.operations

    def test_mix_roughly_matches_config(self, small_cleaned):
        trace = make_trace(small_cleaned, num_operations=400, seed=3)
        counts = trace.op_counts()
        assert len(trace) == 400
        assert counts[QUERY] >= 320  # ~90%
        assert counts[MUTATE] >= 10
        assert trace.num_mutations == counts[MUTATE]
        mutation_seqs = [
            op.mutation_seq for op in trace.operations if op.kind == MUTATE
        ]
        assert mutation_seqs == list(range(len(mutation_seqs)))

    def test_queries_are_zipf_skewed_with_hot_repeats(self, small_cleaned):
        trace = make_trace(small_cleaned, num_operations=600, seed=5)
        queries = [
            op.query_tags for op in trace.operations if op.kind == QUERY
        ]
        tag_counts: dict = {}
        for query in queries:
            for tag in query:
                tag_counts[tag] = tag_counts.get(tag, 0) + 1
        frequencies = sorted(tag_counts.values(), reverse=True)
        # Zipf head: the most popular tag dwarfs the median tag.
        assert frequencies[0] >= 5 * frequencies[len(frequencies) // 2]
        # Hot repeats: identical queries recur far beyond chance.
        assert len(set(queries)) < len(queries) * 0.85

    def test_mutations_are_valid_in_order(self, small_cleaned):
        trace = make_trace(
            small_cleaned, num_operations=300, query_fraction=0.5, seed=9
        )
        live = set(small_cleaned.resources)
        for op in trace.operations:
            if op.kind != MUTATE:
                continue
            touched = set(op.added) | set(op.updated) | set(op.removed)
            assert len(touched) == (
                len(op.added) + len(op.updated) + len(op.removed)
            )
            for resource in op.added:
                assert resource not in live
            for resource in list(op.updated) + list(op.removed):
                assert resource in live
            live |= set(op.added)
            live -= set(op.removed)
            assert len(live) >= trace.config.min_live_resources

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_operations=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(query_fraction=1.1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(query_fraction=0.95, refresh_fraction=0.1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(zipf_exponent=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(min_query_tags=3, max_query_tags=2)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(add_weight=-1.0)


class TestLatencyHistogram:
    def test_records_and_quantiles(self):
        histogram = LatencyHistogram()
        for value in (1e-5, 1e-4, 1e-3, 1e-3, 1e-2):
            histogram.record(value)
        assert histogram.count == 5
        assert histogram.min_seconds == 1e-5
        assert histogram.max_seconds == 1e-2
        assert histogram.mean_seconds == pytest.approx(0.01211 / 5)
        assert 1e-5 <= histogram.quantile(0.5) <= 4e-3
        assert histogram.quantile(1.0) == 1e-2
        assert "p99" in histogram.summary()

    def test_merge_and_edge_cases(self):
        first, second = LatencyHistogram(), LatencyHistogram()
        first.record(1e-4)
        second.record(1e-2)
        first.merge(second)
        assert first.count == 2
        assert first.max_seconds == 1e-2
        empty = LatencyHistogram()
        assert empty.quantile(0.5) == 0.0
        assert empty.summary() == "no samples"
        with pytest.raises(ConfigurationError):
            empty.record(-1.0)
        with pytest.raises(ConfigurationError):
            empty.quantile(1.5)


class TestSerialReplay:
    def test_serial_replay_bookkeeping(self, small_cleaned):
        trace = make_trace(small_cleaned)
        engine = build_mono(small_cleaned)
        report = WorkloadRunner(engine, trace).run_serial()
        assert report.errors == []
        assert report.mode == "serial"
        assert report.total_operations == len(trace)
        assert report.final_epoch == trace.num_mutations
        assert report.final_resources == engine.num_indexed_resources
        assert report.latencies[QUERY].count == trace.op_counts()[QUERY]
        assert report.latencies[MUTATE].count == trace.num_mutations
        assert len(report.epoch_log) == trace.op_counts()[QUERY]
        assert report.epoch_log.regressions() == []
        assert report.ops_per_second > 0
        assert "ops/s" in report.summary()

    def test_serial_replays_are_identical(self, small_cleaned):
        trace = make_trace(small_cleaned)
        engines = [build_mono(small_cleaned) for _ in range(2)]
        rankings = []
        for engine in engines:
            WorkloadRunner(engine, trace).run_serial()
            engine.refresh()
            rankings.append(
                engine.rank_batch(
                    [list(q) for q in trace.eval_queries], top_k=10
                )
            )
        assert rankings[0] == rankings[1]


class TestConcurrentReplayAcceptance:
    """The ISSUE 4 acceptance bar, enforced."""

    def test_four_workers_four_shards_90_10_parity(self, small_cleaned):
        trace = make_trace(
            small_cleaned,
            num_operations=300,
            query_fraction=0.9,
            seed=23,
        )
        assert trace.op_counts()[QUERY] >= 240  # genuinely ~90/10
        assert trace.num_mutations >= 15
        report = check_replay_parity(
            lambda: build_sharded(small_cleaned, 4),
            trace,
            num_workers=NUM_WORKERS,
        )
        assert report.ok, report.summary()
        assert report.concurrent.errors == []
        assert report.serial.errors == []
        assert report.concurrent.final_epoch == trace.num_mutations
        assert report.concurrent.epoch_log.regressions() == []
        assert report.mismatched_probes == []

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_sharded_worker_sweep(self, small_cleaned, num_shards):
        trace = make_trace(small_cleaned, num_operations=150, seed=31)
        report = check_replay_parity(
            lambda: build_sharded(small_cleaned, num_shards),
            trace,
            num_workers=NUM_WORKERS,
        )
        assert report.ok, report.summary()

    def test_monolithic_engine_concurrent_parity(self, small_cleaned):
        trace = make_trace(
            small_cleaned, num_operations=200, query_fraction=0.8, seed=37
        )
        report = check_replay_parity(
            lambda: build_mono(small_cleaned), trace, num_workers=NUM_WORKERS
        )
        assert report.ok, report.summary()

    def test_workload_sweep_harness(self, small_cleaned):
        trace = make_trace(small_cleaned, num_operations=120, seed=41)
        rows, reports = workload_sweep(
            lambda: build_sharded(small_cleaned, 2),
            trace,
            worker_counts=(2,),
        )
        assert [row["Workers"] for row in rows] == [0, 2]
        assert all(row["Errors"] == 0 for row in rows)
        assert reports[0].mode == "serial"
        assert reports[1].mode == "concurrent"
        with pytest.raises(ConfigurationError):
            workload_sweep(
                lambda: build_sharded(small_cleaned, 2), trace, worker_counts=()
            )
        with pytest.raises(ConfigurationError):
            workload_sweep(
                lambda: build_sharded(small_cleaned, 2),
                trace,
                worker_counts=(0,),
            )


class TestQueryMutationRace:
    """Direct regression for the torn-refresh race the RW lock closes."""

    def test_readers_race_writer_without_errors(self, small_cleaned):
        engine = build_sharded(small_cleaned, 4)
        tags = list(small_cleaned.tags)
        batches = [
            dict(added={f"race-{i}": {tags[i % len(tags)]: 2.0}})
            for i in range(12)
        ]
        errors: list = []
        done = threading.Event()

        def reader():
            rng = np.random.default_rng(threading.get_ident() % 2**32)
            try:
                while not done.is_set():
                    query = [tags[int(rng.integers(len(tags)))]]
                    epoch, _ = engine.snapshot_rank_batch([query], top_k=5)
                    assert 0 <= epoch <= len(batches)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        def writer():
            try:
                for batch in batches:
                    engine.apply_mutations(**batch)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))
            finally:
                done.set()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # the raced engine converged to the same state a serial one reaches
        serial = build_sharded(small_cleaned, 4)
        for batch in batches:
            serial.apply_mutations(**batch)
        queries = [[tag] for tag in tags[:8]]
        got = engine.rank_batch(queries, top_k=10)
        want = serial.rank_batch(queries, top_k=10)
        for got_results, want_results in zip(got, want):
            assert rankings_match(got_results, want_results, truncated=True)
        engine.close()
        serial.close()


class TestQueryCacheConcurrency:
    """Satellite: hammer the cache from 8 threads; accounting must hold."""

    def test_eight_thread_hammer(self):
        cache = QueryCache(max_entries=16)
        num_threads, ops_per_thread = 8, 400
        lookups_per_thread = [0] * num_threads
        errors: list = []
        barrier = threading.Barrier(num_threads)

        def hammer(thread_id: int):
            rng = np.random.default_rng(thread_id)
            barrier.wait()
            try:
                for step in range(ops_per_thread):
                    key = int(rng.integers(40))
                    roll = rng.random()
                    if roll < 0.45:
                        cache.put(key, (thread_id, step))
                    elif roll < 0.9:
                        lookups_per_thread[thread_id] += 1
                        hit = cache.get(key)
                        if hit is not None:
                            assert len(hit) == 2
                    elif roll < 0.97:
                        stats = cache.stats()
                        assert stats["hits"] + stats["misses"] >= 0
                        assert stats["entries"] <= stats["max_entries"]
                    else:
                        cache.clear()
                    assert len(cache) <= 16
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == sum(lookups_per_thread)
        assert 0.0 <= stats["hit_rate"] <= 1.0
        assert len(cache) <= 16


class TestMutationRefreshInterleavings:
    """Satellite: random op sequences end 1e-9-equal to a rebuild."""

    def final_bags(self, folksonomy, trace):
        bags = {
            resource: dict(folksonomy.tag_bag(resource))
            for resource in folksonomy.resources
        }
        for op in trace.operations:
            if op.kind != MUTATE:
                continue
            for resource in op.removed:
                del bags[resource]
            for resource, bag in op.added.items():
                bags[resource] = dict(bag)
            for resource, bag in op.updated.items():
                bags[resource] = dict(bag)
        return bags

    @pytest.mark.parametrize("seed", [2, 19, 83])
    @pytest.mark.parametrize("num_shards", [None, 1, 2, 4])
    def test_interleaved_ops_match_scratch_rebuild(
        self, small_cleaned, seed, num_shards
    ):
        trace = make_trace(
            small_cleaned,
            num_operations=120,
            query_fraction=0.45,
            refresh_fraction=0.15,
            seed=seed,
        )
        assert trace.num_mutations > 0
        engine = (
            build_mono(small_cleaned)
            if num_shards is None
            else build_sharded(small_cleaned, num_shards)
        )
        report = WorkloadRunner(engine, trace).run_serial()
        assert report.errors == []
        rebuilt = rebuild_from_bags(
            engine.concept_model, self.final_bags(small_cleaned, trace)
        )
        assert engine.num_indexed_resources == rebuilt.num_indexed_resources
        queries = [list(query) for query in trace.eval_queries]
        got = engine.rank_batch(queries, top_k=10)
        want = rebuilt.rank_batch(queries, top_k=10)
        for got_results, want_results in zip(got, want):
            assert rankings_match(
                got_results, want_results, tol=1e-9, truncated=True
            ), (got_results[:3], want_results[:3])
        if num_shards is not None:
            engine.close()


class TestEpochInstruments:
    def test_epoch_log_detects_regressions(self):
        log = EpochObservationLog()
        assert log.max_epoch == -1
        log.record("a", 0)
        log.record("a", 2)
        log.record("b", 5)
        log.record("b", 5)
        assert log.regressions() == []
        log.record("a", 1)  # a saw 2, then 1: torn read
        assert log.regressions() == [("a", 2, 1)]
        assert log.max_epoch == 5
        assert len(log) == 5
        assert log.observations()[0] == ("a", 0)

    def test_snapshot_rank_batch_is_epoch_consistent(self, small_cleaned):
        engine = build_mono(small_cleaned)
        tag = small_cleaned.tags[0]
        epoch, results = engine.snapshot_rank_batch([[tag]], top_k=5)
        assert epoch == 0 and results[0]
        engine.add_resources({"snap-res": {tag: 3.0}})
        epoch, _ = engine.snapshot_rank_batch([[tag]], top_k=5)
        assert epoch == 1
        epoch, results = engine.snapshot_rank_batch([], top_k=5)
        assert epoch == 1 and results == []


class TestReadWriteLock:
    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        timeline: list = []
        ready = threading.Event()

        def writer():
            with lock.write():
                ready.set()
                timeline.append("write-start")
                # give the reader a chance to race in if exclusion is broken
                threading.Event().wait(0.05)
                timeline.append("write-end")

        def reader():
            ready.wait()
            with lock.read():
                timeline.append("read")

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert timeline == ["write-start", "write-end", "read"]

    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # deadlocks (and times out) unless shared

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not inside.broken

    def test_unbalanced_release_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()
        assert "readers=0" in repr(lock)
